"""Ablation A5: Monte-Carlo sampling throughput and engine crossover.

The sampler is the only engine whose cost is independent of the query
and linear in (instance size x samples); this bench measures per-sample
throughput across instance sizes and compares one point query across the
exact engines and the sampler on a mid-size tree.
"""

import pytest

from repro.queries.engine import QueryEngine
from repro.semantics.sampling import WorldSampler
from repro.workloads.generator import WorkloadSpec, generate_workload

SIZES = [(3, 2), (5, 2), (4, 4)]  # (depth, branching)


def _instance(depth, branching):
    return generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling="SL", seed=23)
    ).instance


@pytest.mark.parametrize("depth,branching", SIZES)
def test_sampling_throughput(benchmark, depth, branching):
    pi = _instance(depth, branching)
    sampler = WorldSampler(pi, seed=0)
    benchmark(sampler.sample)
    benchmark.extra_info["objects"] = len(pi)


def _query_case():
    pi = _instance(4, 2)
    graph = pi.weak.graph()
    target = sorted(pi.weak.leaves())[0]
    labels, current = [], target
    while current != pi.root:
        (parent,) = graph.parents(current)
        labels.append(graph.label(parent, current))
        current = parent
    labels.reverse()
    return pi, ".".join([pi.root, *labels]), target


@pytest.mark.parametrize("strategy", ["local", "bayes", "sample"])
def test_point_query_engines(benchmark, strategy):
    pi, path, target = _query_case()
    engine = QueryEngine(pi, strategy=strategy, samples=500, seed=1)
    probability = benchmark(engine.point, path, target)
    assert 0.0 <= probability <= 1.0
