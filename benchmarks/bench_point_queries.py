"""Ablation A3: probabilistic point / chain / existential query cost.

Section 6.2's queries touch only the target's path ancestors, so their
cost should scale with the query depth (and the OPF entry counts along
the chain), not with the total instance size.
"""

import pytest

from repro.queries.chain import chain_probability
from repro.queries.point import existential_query, point_query
from repro.semistructured.paths import PathExpression
from repro.workloads.generator import WorkloadSpec, generate_workload

DEPTHS = [3, 5, 7]


def _chain_case(depth):
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=2, labeling="SL", seed=31)
    )
    pi = workload.instance
    graph = pi.weak.graph()
    labels, chain = [], [pi.root]
    current = pi.root
    for _ in range(depth):
        child = sorted(graph.children(current))[0]
        labels.append(graph.label(current, child))
        chain.append(child)
        current = child
    return pi, PathExpression(pi.root, tuple(labels)), chain


@pytest.mark.parametrize("depth", DEPTHS)
def test_point_query(benchmark, depth):
    pi, path, chain = _chain_case(depth)
    probability = benchmark(point_query, pi, path, chain[-1])
    benchmark.extra_info["objects"] = len(pi)
    assert 0.0 <= probability <= 1.0


@pytest.mark.parametrize("depth", DEPTHS)
def test_chain_probability(benchmark, depth):
    pi, _, chain = _chain_case(depth)
    probability = benchmark(chain_probability, pi, chain)
    assert 0.0 <= probability <= 1.0


@pytest.mark.parametrize("depth", DEPTHS)
def test_existential_query(benchmark, depth):
    pi, path, _ = _chain_case(depth)
    probability = benchmark(existential_query, pi, path)
    benchmark.extra_info["objects"] = len(pi)
    assert 0.0 <= probability <= 1.0
