"""Figure 7(c): total query time of selection.

Selection ``p = o`` conditions only depth-many OPFs (the p-update takes
well under a millisecond) but must write the *entire* instance back to
disk, so — as the paper reports — the write dominates and the total time
is linear in the number of OPF entries regardless of SL/FR labeling.
"""

from repro.bench.timing import timed_selection


def test_fig7c_selection_total(benchmark, figure7_case, tmp_path):
    workload, _, sel_path, sel_target = figure7_case
    out = tmp_path / "selection.json"

    def run():
        return timed_selection(workload.instance, sel_path, sel_target, out)

    result, timing = benchmark(run)
    benchmark.extra_info["objects"] = workload.num_objects
    benchmark.extra_info["entries"] = workload.total_entries
    benchmark.extra_info["labeling"] = workload.spec.labeling
    benchmark.extra_info["branching"] = workload.spec.branching
    benchmark.extra_info["write_share"] = (
        timing.write / timing.total if timing.total else 0.0
    )
    assert result is not None
