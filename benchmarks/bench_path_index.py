"""Path-index benchmarks: indexed vs graph-walk navigation.

The measured unit is one path match — the locate step every query kind
shares.  ``walk`` is :func:`repro.semistructured.paths.match_path` on
the instance graph (per-node ``lch`` calls); ``matcher`` is the cold
vectorized evaluator on the columnar snapshot; ``indexed`` is the
production path with the per-snapshot match memo warm, which is how the
engine evaluates repeated statements against an unchanged catalog.
Snapshot construction is benchmarked separately since the
:class:`repro.index.cache.IndexCache` amortizes it across queries.
"""

import random
from functools import lru_cache

import pytest

from repro.index.columnar import ColumnarInstance, match_path_indexed
from repro.semistructured.paths import match_path
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

GRID = [("SL", 2, 5), ("SL", 2, 8), ("SL", 4, 5), ("SL", 4, 7)]


@lru_cache(maxsize=None)
def cached_workload(labeling, branching, depth):
    return generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=13)
    )


@lru_cache(maxsize=None)
def cached_snapshot(labeling, branching, depth):
    return ColumnarInstance.from_instance(
        cached_workload(labeling, branching, depth).instance
    )


def _grid_id(case):
    labeling, branching, depth = case
    return f"{labeling}-b{branching}-d{depth}"


@pytest.fixture(params=GRID, ids=_grid_id)
def index_case(request):
    labeling, branching, depth = request.param
    workload = cached_workload(labeling, branching, depth)
    snapshot = cached_snapshot(labeling, branching, depth)
    path = random_projection_path(workload, random.Random(14))
    return workload, snapshot, path


def test_match_walk(benchmark, index_case):
    workload, _snapshot, path = index_case
    graph = workload.instance.weak.graph()
    result = benchmark(match_path, graph, path)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result.path is path


def test_match_matcher_cold(benchmark, index_case):
    workload, snapshot, path = index_case
    reference = match_path(workload.instance.weak.graph(), path)
    result = benchmark(match_path_indexed, snapshot, path, memo=False)
    benchmark.extra_info["objects"] = workload.num_objects
    assert (result.levels, result.edges, result.level_edges) == (
        reference.levels, reference.edges, reference.level_edges
    )


def test_match_indexed_warm(benchmark, index_case):
    workload, snapshot, path = index_case
    match_path_indexed(snapshot, path)  # warm the memo + lazy adjacency
    result = benchmark(match_path_indexed, snapshot, path)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result.matched == match_path(
        workload.instance.weak.graph(), path
    ).matched


def test_snapshot_build(benchmark, index_case):
    workload, _snapshot, _path = index_case
    result = benchmark(ColumnarInstance.from_instance, workload.instance)
    benchmark.extra_info["objects"] = workload.num_objects
    assert len(result) == workload.num_objects
