"""Ablation A8: serialization formats for the selection write path.

The paper's Figure 7(c) is dominated by writing the result instance to
disk, making the codec a first-order performance knob.  This bench
compares the JSON codec (lossless, interoperable) against the compact
line-oriented codec on write, read, and the end-to-end selection query.
"""

import random

import pytest

from repro.bench.timing import timed_selection
from repro.io import compact_codec, json_codec
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_selection_target,
)

CASES = [(3, 4), (3, 6)]  # (depth, branching)


@pytest.fixture(scope="module")
def workloads():
    return {
        case: generate_workload(
            WorkloadSpec(depth=case[0], branching=case[1], labeling="SL", seed=71)
        )
        for case in CASES
    }


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"d{c[0]}-b{c[1]}")
@pytest.mark.parametrize("codec", ["json", "compact"])
def test_write(benchmark, workloads, case, codec, tmp_path):
    module = json_codec if codec == "json" else compact_codec
    target = tmp_path / f"out.{codec}"
    size = benchmark(module.write_instance, workloads[case].instance, target)
    benchmark.extra_info["bytes"] = size
    benchmark.extra_info["entries"] = workloads[case].total_entries


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"d{c[0]}-b{c[1]}")
@pytest.mark.parametrize("codec", ["json", "compact"])
def test_read(benchmark, workloads, case, codec, tmp_path):
    module = json_codec if codec == "json" else compact_codec
    target = tmp_path / f"out.{codec}"
    module.write_instance(workloads[case].instance, target)
    restored = benchmark(module.read_instance, target)
    assert len(restored) == workloads[case].num_objects


@pytest.mark.parametrize("codec", ["json", "compact"])
def test_selection_end_to_end(benchmark, workloads, codec, tmp_path):
    workload = workloads[CASES[-1]]
    path, target = random_selection_target(workload, random.Random(0))
    out = tmp_path / f"sel.{codec}"

    def run():
        return timed_selection(workload.instance, path, target, out, codec=codec)

    _, timing = benchmark(run)
    benchmark.extra_info["write_share"] = (
        timing.write / timing.total if timing.total else 0.0
    )
