"""Ablation A7: learning throughput.

Maximum-likelihood estimation is a single counting pass over the corpus;
this bench measures it against corpus size and against instance size
(the per-world cost is linear in the world's objects).
"""

import pytest

from repro.learn import learn_instance
from repro.semantics.sampling import WorldSampler
from repro.workloads.generator import WorkloadSpec, generate_workload

CORPUS_SIZES = [100, 500, 2000]


@pytest.fixture(scope="module")
def corpora():
    pi = generate_workload(
        WorkloadSpec(depth=3, branching=2, labeling="SL", seed=61)
    ).instance
    sampler = WorldSampler(pi, seed=0)
    biggest = sampler.sample_many(max(CORPUS_SIZES))
    return {size: biggest[:size] for size in CORPUS_SIZES}


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_learning_by_corpus_size(benchmark, corpora, size):
    learned = benchmark(learn_instance, corpora[size])
    benchmark.extra_info["corpus"] = size
    learned.validate()


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_learning_by_instance_size(benchmark, depth):
    pi = generate_workload(
        WorkloadSpec(depth=depth, branching=2, labeling="SL", seed=62)
    ).instance
    corpus = WorldSampler(pi, seed=1).sample_many(200)
    learned = benchmark(learn_instance, corpus)
    benchmark.extra_info["objects"] = len(pi)
    learned.validate()
