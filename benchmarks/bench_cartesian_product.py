"""Ablation A4: Cartesian product cost is root-local.

The paper skipped benchmarking the product "because it only involves the
update of the roots, whose running time is very short and independent of
the size of the instances".  In this library the *probabilistic* work —
multiplying the two root OPFs — is indeed size-independent (benchmarked
separately below); building the merged result instance additionally pays
a linear copy of both operands, which the total-time series makes
visible.
"""

import pytest

from repro.algebra.extensions import rename_objects
from repro.algebra.product import _product_root_opf, cartesian_product
from repro.workloads.generator import WorkloadSpec, generate_workload

DEPTHS = [2, 4, 6]


def _operands(depth):
    left = generate_workload(
        WorkloadSpec(depth=depth, branching=2, labeling="SL", seed=41)
    ).instance
    right = generate_workload(
        WorkloadSpec(depth=depth, branching=2, labeling="FR", seed=42)
    ).instance
    right = rename_objects(right, {oid: f"x{oid}" for oid in right.objects})
    return left, right


@pytest.mark.parametrize("depth", DEPTHS)
def test_cartesian_product_total(benchmark, depth):
    left, right = _operands(depth)
    product = benchmark(cartesian_product, left, right, "ROOT")
    benchmark.extra_info["objects"] = len(product)
    # Root OPF support: |support(l)| x |support(r)| = 4 x 4 regardless of
    # depth (branching 2 -> 2^2 entries per root).
    assert product.opf("ROOT").entry_count() <= 16


@pytest.mark.parametrize("depth", DEPTHS)
def test_root_opf_merge_only(benchmark, depth):
    # The paper's claim isolated: the probability update itself does not
    # depend on the operand sizes.
    left, right = _operands(depth)
    opf = benchmark(_product_root_opf, left, right)
    benchmark.extra_info["objects"] = len(left) + len(right)
    assert opf.entry_count() <= 16
