"""Engine benchmarks: optimizer and versioned-cache effect.

The measured unit is the canonical pipeline plan — ancestor projection,
selection on the projected path, point query — executed through
:class:`repro.engine.Engine` in its four modes: the naive eager path
(optimizer off, caching off), rewrites only, cold cache, and warm cache.
The warm series is the headline: every sub-plan is served from the
versioned result cache, so repeated identical statements cost microseconds
regardless of instance size.
"""

import random
from functools import lru_cache

import pytest

from repro.bench.engine import pipeline_plan
from repro.engine import Engine
from repro.storage.database import Database
from repro.workloads.generator import WorkloadSpec, generate_workload

GRID = [("SL", 2, 3), ("SL", 2, 5), ("SL", 2, 7), ("SL", 4, 4)]


@lru_cache(maxsize=None)
def cached_workload(labeling, branching, depth):
    return generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=97)
    )


def _grid_id(case):
    labeling, branching, depth = case
    return f"{labeling}-b{branching}-d{depth}"


@pytest.fixture(params=GRID, ids=_grid_id)
def engine_case(request):
    labeling, branching, depth = request.param
    workload = cached_workload(labeling, branching, depth)
    plan = pipeline_plan(workload, random.Random(5))
    return workload, plan


def _database(workload) -> Database:
    database = Database()
    database.register("base", workload.instance)
    return database


def test_pipeline_naive(benchmark, engine_case):
    workload, plan = engine_case
    engine = Engine(_database(workload), optimizer=False, caching=False)
    result = benchmark(engine.execute_plan, plan)
    benchmark.extra_info["objects"] = workload.num_objects
    assert 0.0 <= result.value <= 1.0


def test_pipeline_optimized(benchmark, engine_case):
    workload, plan = engine_case
    engine = Engine(_database(workload), optimizer=True, caching=False)
    result = benchmark(engine.execute_plan, plan)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result.applied_rules


def test_pipeline_cold_cache(benchmark, engine_case):
    workload, plan = engine_case
    engine = Engine(_database(workload), optimizer=True, caching=True)

    def cold():
        engine.result_cache.clear()
        engine.plan_cache.clear()
        return engine.execute_plan(plan)

    result = benchmark(cold)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result.stats.cache == "miss"


def test_pipeline_warm_cache(benchmark, engine_case):
    workload, plan = engine_case
    engine = Engine(_database(workload), optimizer=True, caching=True)
    engine.execute_plan(plan)  # populate outside the clock
    result = benchmark(engine.execute_plan, plan)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result.stats.cache == "hit"
    assert engine.result_cache.stats.hits > 0


def test_warm_beats_naive(engine_case):
    """The acceptance check: a warm repeat is measurably faster."""
    import time

    workload, plan = engine_case
    naive = Engine(_database(workload), optimizer=False, caching=False)
    cached = Engine(_database(workload), optimizer=True, caching=True)
    cached.execute_plan(plan)

    start = time.perf_counter()
    for _ in range(10):
        naive.execute_plan(plan)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        cached.execute_plan(plan)
    warm_s = time.perf_counter() - start

    assert warm_s < naive_s
