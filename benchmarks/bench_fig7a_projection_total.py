"""Figure 7(a): total query time of ancestor projection.

Reproduces the paper's first panel: for balanced-tree instances across
branching factors and SL/FR labelings, the *total* query time — copy +
locate + structure update + local-interpretation update + disk write —
of a random accepted ancestor-projection query whose length equals the
instance depth.

Expected shape (paper): total time is dominated by the p-update, grows
linearly with the number of objects, grows by less than 16x when the
branching factor increases by 2, and SL is slower than FR.
"""

from repro.bench.timing import timed_ancestor_projection


def test_fig7a_projection_total(benchmark, figure7_case, tmp_path):
    workload, path, _, _ = figure7_case
    out = tmp_path / "projection.json"

    def run():
        return timed_ancestor_projection(workload.instance, path, out)

    result, timing = benchmark(run)
    benchmark.extra_info["objects"] = workload.num_objects
    benchmark.extra_info["entries"] = workload.total_entries
    benchmark.extra_info["labeling"] = workload.spec.labeling
    benchmark.extra_info["branching"] = workload.spec.branching
    benchmark.extra_info["update_share"] = (
        timing.update / timing.total if timing.total else 0.0
    )
    assert result is not None
