"""Ablation A1: the Section 6 local algorithms vs naive enumeration.

The paper motivates its algorithms by noting that they are "significantly
more efficient than naively computing the probability by marginalizing
over all of the compatible instances".  This ablation quantifies that on
instances small enough for enumeration to finish: the local algorithm's
advantage grows with the number of compatible worlds (exponential in the
instance size), while the local algorithm scales with the number of
objects and OPF entries only.
"""

import random

import pytest

from repro.algebra.projection_prob import (
    ancestor_projection_global,
    ancestor_projection_local,
)
from repro.queries.engine import QueryEngine
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

CASES = [
    pytest.param(2, 2, id="depth2-b2"),
    pytest.param(3, 2, id="depth3-b2"),
    pytest.param(2, 3, id="depth2-b3"),
]


def _workload(depth, branching):
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling="SL", seed=5)
    )
    path = random_projection_path(workload, random.Random(0))
    return workload, path


@pytest.mark.parametrize("depth,branching", CASES)
def test_projection_local(benchmark, depth, branching):
    workload, path = _workload(depth, branching)
    result = benchmark(ancestor_projection_local, workload.instance, path)
    benchmark.extra_info["objects"] = workload.num_objects
    assert result is not None


@pytest.mark.parametrize("depth,branching", CASES)
def test_projection_global_enumeration(benchmark, depth, branching):
    workload, path = _workload(depth, branching)
    result = benchmark(ancestor_projection_global, workload.instance, path)
    benchmark.extra_info["objects"] = workload.num_objects
    benchmark.extra_info["worlds"] = len(result)


@pytest.mark.parametrize("strategy", ["local", "enumerate", "bayes"])
def test_existential_query_engines(benchmark, strategy):
    workload, path = _workload(3, 2)
    engine = QueryEngine(workload.instance, strategy=strategy)
    probability = benchmark(engine.exists, path)
    assert 0.0 <= probability <= 1.0
