"""Ablation A6: pattern-tree query cost (the ProTDB-style primitive).

The exact pattern DP is polynomial in the instance and exponential only
in the pattern *width*; this bench sweeps both dimensions and compares
against the Monte-Carlo estimator on the largest case.
"""

import pytest

from repro.protdb.patterns import (
    PatternNode,
    estimate_pattern_probability,
    pattern_probability,
)
from repro.workloads.generator import WorkloadSpec, generate_workload


def _instance(depth, branching):
    return generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling="SL", seed=29)
    ).instance


def _linear_pattern(pi, depth):
    graph = pi.weak.graph()
    current = pi.root
    labels = []
    for _ in range(depth):
        child = sorted(graph.children(current))[0]
        labels.append(graph.label(current, child))
        current = child
    node = PatternNode.child(labels[-1])
    for label in reversed(labels[:-1]):
        node = PatternNode.child(label, node)
    return PatternNode.root(node)


def _wide_pattern(pi, width):
    graph = pi.weak.graph()
    child = sorted(graph.children(pi.root))[0]
    label = graph.label(pi.root, child)
    return PatternNode.root(*[PatternNode.child(label) for _ in range(width)])


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_linear_pattern_by_depth(benchmark, depth):
    pi = _instance(depth, 2)
    pattern = _linear_pattern(pi, depth)
    probability = benchmark(pattern_probability, pi, pattern)
    benchmark.extra_info["objects"] = len(pi)
    assert 0.0 <= probability <= 1.0


@pytest.mark.parametrize("width", [1, 2, 3])
def test_pattern_by_width(benchmark, width):
    pi = _instance(3, 3)
    pattern = _wide_pattern(pi, width)
    probability = benchmark(pattern_probability, pi, pattern)
    assert 0.0 <= probability <= 1.0


def test_pattern_sampling_estimator(benchmark):
    pi = _instance(4, 2)
    pattern = _linear_pattern(pi, 4)

    def run():
        return estimate_pattern_probability(pi, pattern, samples=200, seed=0)

    estimate = benchmark(run)
    assert 0.0 <= estimate.probability <= 1.0
