"""Figure 7(b): time to update the local interpretation (p) alone.

Isolates the marginalize/normalize sweep of Section 6.1 — the component
the paper shows dominating ancestor projection.  The expected shape:
linear in the number of objects (each p(o) is updated once), and when the
branching factor increases by 2 (quadrupling the 2^b OPF entries) the
time grows by a factor below 16, because the per-object propagation is
quadratic in the size of p(o).
"""

from repro.algebra.projection_prob import epsilon_pass
from repro.semistructured.paths import match_path


def test_fig7b_update_interpretation(benchmark, figure7_case):
    workload, path, _, _ = figure7_case
    pi = workload.instance
    match = match_path(pi.weak.graph(), path)

    sweep = benchmark(epsilon_pass, pi, path, match)
    benchmark.extra_info["objects"] = workload.num_objects
    benchmark.extra_info["entries"] = workload.total_entries
    benchmark.extra_info["labeling"] = workload.spec.labeling
    benchmark.extra_info["branching"] = workload.spec.branching
    benchmark.extra_info["updated_opfs"] = len(sweep.opfs)
    assert 0.0 <= sweep.root_epsilon <= 1.0
