"""Ablation A2: tabular vs compact (independent) OPF representations.

Section 3.2 suggests exploiting independence for compact representations.
This ablation builds the same distribution both ways — a full 2^b table
per non-leaf vs per-child inclusion probabilities — and compares the cost
of the operations that iterate OPF supports (the epsilon pass) and the
operations that only need marginals (point queries), along with storage.
"""

import pytest

from repro.algebra.projection_prob import epsilon_pass
from repro.core.compact import IndependentOPF
from repro.core.instance import ProbabilisticInstance
from repro.queries.point import point_query
from repro.semistructured.paths import PathExpression
from repro.workloads.generator import WorkloadSpec, generate_workload

BRANCHING = 6
DEPTH = 3


def _tabular_instance():
    return generate_workload(
        WorkloadSpec(depth=DEPTH, branching=BRANCHING, labeling="SL", seed=17)
    )


def _independent_instance(workload):
    """The independent-OPF instance with the same inclusion marginals."""
    pi = workload.instance
    compact = ProbabilisticInstance(pi.weak.copy())
    for oid, opf in pi.interpretation.opf_items():
        children = sorted(pi.weak.potential_children(oid))
        compact.set_opf(
            oid, IndependentOPF({c: opf.marginal_inclusion(c) for c in children})
        )
    for oid, vpf in pi.interpretation.vpf_items():
        compact.interpretation.set_vpf(oid, vpf)
    return compact


def _deep_path(pi) -> tuple[PathExpression, str]:
    graph = pi.weak.graph()
    current = pi.root
    labels = []
    for _ in range(DEPTH):
        child = sorted(graph.children(current))[0]
        labels.append(graph.label(current, child))
        current = child
    return PathExpression(pi.root, tuple(labels)), current


@pytest.fixture(scope="module")
def instances():
    workload = _tabular_instance()
    return workload.instance, _independent_instance(workload)


def test_point_query_tabular(benchmark, instances):
    tabular, _ = instances
    path, target = _deep_path(tabular)
    benchmark(point_query, tabular, path, target)
    benchmark.extra_info["entries"] = tabular.total_interpretation_entries()


def test_point_query_independent(benchmark, instances):
    _, compact = instances
    path, target = _deep_path(compact)
    benchmark(point_query, compact, path, target)
    benchmark.extra_info["entries"] = compact.total_interpretation_entries()


def test_epsilon_pass_tabular(benchmark, instances):
    tabular, _ = instances
    path, _ = _deep_path(tabular)
    benchmark(epsilon_pass, tabular, path)
    benchmark.extra_info["entries"] = tabular.total_interpretation_entries()


def test_epsilon_pass_independent(benchmark, instances):
    # Independent OPFs take the analytic O(children) update (survival
    # probabilities multiply; no support enumeration): both ~2^b/b less
    # storage AND an order-of-magnitude faster update at b=6.
    _, compact = instances
    path, _ = _deep_path(compact)
    benchmark(epsilon_pass, compact, path)
    benchmark.extra_info["entries"] = compact.total_interpretation_entries()


def test_storage_ratio(instances):
    tabular, compact = instances
    ratio = (
        tabular.total_interpretation_entries()
        / compact.total_interpretation_entries()
    )
    # 2^b tabular entries vs b inclusion entries per non-leaf.
    assert ratio > 2.0
