"""Shared workload fixtures for the benchmark suite.

Workload generation is expensive relative to the measured operations, so
generated instances are cached per session and the benchmarks only time
the operation under test.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest

from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)

#: The (labeling, branching, depth) grid used by the Figure 7 benchmarks.
#: The shape follows the paper's sweep; sizes are trimmed for pure Python
#: (see DESIGN.md "Substitutions").
FIGURE7_GRID = [
    ("SL", 2, 3), ("SL", 2, 5), ("SL", 2, 7),
    ("SL", 4, 3), ("SL", 4, 4),
    ("SL", 8, 3),
    ("FR", 2, 3), ("FR", 2, 5), ("FR", 2, 7),
    ("FR", 4, 3), ("FR", 4, 4),
    ("FR", 8, 3),
]


def grid_id(case: tuple[str, int, int]) -> str:
    labeling, branching, depth = case
    objects = WorkloadSpec(depth=depth, branching=branching).num_objects
    return f"{labeling}-b{branching}-d{depth}-n{objects}"


@lru_cache(maxsize=None)
def cached_workload(labeling: str, branching: int, depth: int) -> GeneratedWorkload:
    """Generate (once) the instance for a grid cell."""
    return generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling, seed=97)
    )


@pytest.fixture(params=FIGURE7_GRID, ids=grid_id)
def figure7_case(request):
    """One grid cell: the workload plus a pre-drawn accepted query."""
    labeling, branching, depth = request.param
    workload = cached_workload(labeling, branching, depth)
    rng = random.Random(1234)
    path = random_projection_path(workload, rng)
    sel_path, sel_target = random_selection_target(workload, rng)
    return workload, path, sel_path, sel_target
