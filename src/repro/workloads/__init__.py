"""The Section 7.1 synthetic workload generators."""

from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)

__all__ = [
    "GeneratedWorkload",
    "WorkloadSpec",
    "generate_workload",
    "random_projection_path",
    "random_selection_target",
]
