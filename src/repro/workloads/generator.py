"""Synthetic workload generation (Section 7.1).

The paper's experimental instances are balanced trees where every
non-leaf has the same number of children, no cardinality constraints are
imposed (so a non-leaf with branching factor ``b`` carries ``2^b`` OPF
entries), and edges are labeled in one of two ways:

* **SL** ("same label"): all children of a parent share one label, drawn
  from the label pool of their depth.
* **FR** ("fully random"): every child independently draws a label from
  the pool of its depth.

The generator records the labels actually used at each depth so the query
generator can draw candidate path expressions the way the paper does
(``r.x1...xd`` with ``x_i`` from depth ``i``'s label set), accepting only
expressions with a non-empty structural match.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import chain, combinations

from repro.core.compact import IndependentOPF
from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.errors import ModelError
from repro.semistructured.graph import Label, Oid
from repro.semistructured.paths import PathExpression, match_path
from repro.semistructured.types import LeafType


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic instance.

    Attributes:
        depth: tree depth (root at depth 0, leaves at ``depth``).
        branching: children per non-leaf node.
        labeling: ``"SL"`` or ``"FR"``.
        seed: RNG seed (instances are fully reproducible).
        labels_per_depth: size of each depth's label pool.
        value_domain: the leaf value domain (one shared leaf type).
        opf_kind: ``"tabular"`` (the paper's 2^b explicit tables) or
            ``"independent"`` (compact per-child inclusion probabilities,
            for the representation ablation).
    """

    depth: int
    branching: int
    labeling: str = "SL"
    seed: int = 0
    labels_per_depth: int = 2
    value_domain: tuple = ("a", "b")
    opf_kind: str = "tabular"

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ModelError("depth must be >= 1")
        if self.branching < 1:
            raise ModelError("branching must be >= 1")
        if self.labeling not in ("SL", "FR"):
            raise ModelError(f"labeling must be 'SL' or 'FR', got {self.labeling!r}")
        if self.opf_kind not in ("tabular", "independent"):
            raise ModelError(
                f"opf_kind must be 'tabular' or 'independent', got {self.opf_kind!r}"
            )

    @property
    def num_objects(self) -> int:
        """``(b^(d+1) - 1) / (b - 1)`` for branching ``b`` > 1."""
        if self.branching == 1:
            return self.depth + 1
        return (self.branching ** (self.depth + 1) - 1) // (self.branching - 1)


@dataclass
class GeneratedWorkload:
    """A generated instance plus the metadata query generation needs."""

    spec: WorkloadSpec
    instance: ProbabilisticInstance
    labels_by_depth: list[frozenset[Label]] = field(default_factory=list)

    @property
    def num_objects(self) -> int:
        """The instance's object count."""
        return len(self.instance)

    @property
    def total_entries(self) -> int:
        """Total OPF/VPF entries (the paper's cost parameter)."""
        return self.instance.total_interpretation_entries()


def _all_subsets(pool: list[Oid]) -> list[frozenset[Oid]]:
    return [
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(pool, size) for size in range(len(pool) + 1)
        )
    ]


def _random_distribution(rng: random.Random, size: int) -> list[float]:
    weights = [rng.random() + 1e-9 for _ in range(size)]
    total = sum(weights)
    return [w / total for w in weights]


def generate_workload(spec: WorkloadSpec) -> GeneratedWorkload:
    """Generate one balanced-tree probabilistic instance per the spec."""
    rng = random.Random(spec.seed)
    pools = [
        [f"l{d}_{i}" for i in range(spec.labels_per_depth)] for d in range(spec.depth)
    ]
    leaf_type = LeafType("value-type", spec.value_domain)

    weak = WeakInstance("o0")
    interp = LocalInterpretation()
    labels_by_depth: list[set[Label]] = [set() for _ in range(spec.depth)]

    counter = 1
    frontier: list[Oid] = ["o0"]
    for depth in range(spec.depth):
        next_frontier: list[Oid] = []
        for parent in frontier:
            children = [f"o{counter + i}" for i in range(spec.branching)]
            counter += spec.branching
            if spec.labeling == "SL":
                label = rng.choice(pools[depth])
                weak.set_lch(parent, label, children)
                labels_by_depth[depth].add(label)
            else:
                by_label: dict[Label, list[Oid]] = {}
                for child in children:
                    label = rng.choice(pools[depth])
                    by_label.setdefault(label, []).append(child)
                for label, group in by_label.items():
                    weak.set_lch(parent, label, group)
                    labels_by_depth[depth].add(label)
            if spec.opf_kind == "independent":
                interp.set_opf(
                    parent,
                    IndependentOPF(
                        {child: rng.uniform(0.1, 0.95) for child in children}
                    ),
                )
            else:
                subsets = _all_subsets(children)
                probabilities = _random_distribution(rng, len(subsets))
                interp.set_opf(
                    parent, TabularOPF(dict(zip(subsets, probabilities)))
                )
            next_frontier.extend(children)
        frontier = next_frontier

    for leaf in frontier:
        weak.set_type(leaf, leaf_type)
        probabilities = _random_distribution(rng, len(spec.value_domain))
        interp.set_vpf(
            leaf, TabularVPF(dict(zip(spec.value_domain, probabilities)))
        )

    instance = ProbabilisticInstance(weak, interp)
    return GeneratedWorkload(
        spec, instance, [frozenset(labels) for labels in labels_by_depth]
    )


def random_projection_path(
    workload: GeneratedWorkload, rng: random.Random, max_tries: int = 200
) -> PathExpression:
    """A random accepted path expression of length = instance depth.

    Mirrors the paper: draw each label from the labels actually used at
    that depth and accept only expressions whose structural match is
    non-empty ("queries that returned results not only consisting of a
    root").  Falls back to reading the labels off an actual root-to-leaf
    walk when random draws keep missing (rare, but possible under SL).
    """
    graph = workload.instance.weak.graph()
    root = workload.instance.root
    for _ in range(max_tries):
        labels = tuple(
            rng.choice(sorted(pool)) for pool in workload.labels_by_depth
        )
        path = PathExpression(root, labels)
        if not match_path(graph, path).is_empty:
            return path
    # Guaranteed-nonempty fallback: follow an actual branch.
    labels = []
    current = root
    for _ in range(workload.spec.depth):
        children = sorted(graph.children(current))
        child = rng.choice(children)
        labels.append(graph.label(current, child))
        current = child
    return PathExpression(root, tuple(labels))


def random_selection_target(
    workload: GeneratedWorkload, rng: random.Random, max_tries: int = 200
) -> tuple[PathExpression, Oid]:
    """A random accepted selection query ``p = o``.

    Draws a path as :func:`random_projection_path` does, then picks ``o``
    uniformly from the objects satisfying it (the paper's ``SelObj``).
    """
    path = random_projection_path(workload, rng, max_tries)
    graph = workload.instance.weak.graph()
    matched = sorted(match_path(graph, path).matched)
    return path, rng.choice(matched)
