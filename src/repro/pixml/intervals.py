"""Probability intervals for the PIXML extension.

The companion paper ("Probabilistic Interval XML", ICDT 2003) replaces
point probabilities with intervals.  :class:`ProbInterval` is a closed
subinterval of ``[0, 1]`` with the arithmetic interval queries need:
product (for chains of independent events), complement, convex
combination, intersection and containment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DistributionError


@dataclass(frozen=True, order=True)
class ProbInterval:
    """A closed probability interval ``[lo, hi] ⊆ [0, 1]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.lo <= self.hi <= 1.0:
            raise DistributionError(
                f"invalid probability interval [{self.lo}, {self.hi}]"
            )

    # ------------------------------------------------------------------
    @classmethod
    def point(cls, probability: float) -> "ProbInterval":
        """The degenerate interval ``[p, p]``."""
        return cls(probability, probability)

    @classmethod
    def vacuous(cls) -> "ProbInterval":
        """The uninformative interval ``[0, 1]``."""
        return cls(0.0, 1.0)

    # ------------------------------------------------------------------
    def __contains__(self, probability: float) -> bool:
        return self.lo <= probability <= self.hi

    def is_point(self, tolerance: float = 1e-12) -> bool:
        """Whether the interval is (numerically) a single point."""
        return self.hi - self.lo <= tolerance

    def width(self) -> float:
        """``hi - lo``."""
        return self.hi - self.lo

    # ------------------------------------------------------------------
    def product(self, other: "ProbInterval") -> "ProbInterval":
        """The interval of products of independent probabilities."""
        return ProbInterval(self.lo * other.lo, self.hi * other.hi)

    def complement(self) -> "ProbInterval":
        """The interval of ``1 - p``."""
        return ProbInterval(1.0 - self.hi, 1.0 - self.lo)

    def add(self, other: "ProbInterval") -> "ProbInterval":
        """Sum of probabilities of disjoint events, clamped to 1."""
        return ProbInterval(min(1.0, self.lo + other.lo), min(1.0, self.hi + other.hi))

    def intersect(self, other: "ProbInterval") -> "ProbInterval":
        """The common subinterval; raises when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            raise DistributionError(
                f"disjoint probability intervals {self} and {other}"
            )
        return ProbInterval(lo, hi)

    def contains_interval(self, other: "ProbInterval") -> bool:
        """Whether ``other`` lies entirely within ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"
