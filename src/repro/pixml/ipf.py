"""Interval probability functions and interval probabilistic instances.

An :class:`IntervalOPF` maps each potential child set to a probability
interval.  It is *consistent* when some point OPF fits inside it:
``sum lo <= 1 <= sum hi``.  :func:`IntervalOPF.tighten` performs the
standard bound-propagation step: given that the entries of a distribution
sum to one,

    lo'(c) = max(lo(c), 1 - sum_{c' != c} hi(c'))
    hi'(c) = min(hi(c), 1 - sum_{c' != c} lo(c'))

An :class:`IntervalProbabilisticInstance` pairs a weak instance with
interval OPFs; it generalizes :class:`repro.core.ProbabilisticInstance`
(every point instance embeds via point intervals) and supports interval
chain/point queries in :mod:`repro.pixml.queries`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.distributions import ObjectProbabilityFunction, TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import DistributionError, ModelError
from repro.pixml.intervals import ProbInterval
from repro.semistructured.graph import Oid


class IntervalOPF:
    """A distribution over potential child sets with interval weights."""

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[Iterable[Oid] | ChildSet, ProbInterval]) -> None:
        self._table: dict[ChildSet, ProbInterval] = {}
        for child_set, interval in table.items():
            key = child_set if isinstance(child_set, frozenset) else frozenset(child_set)
            if key in self._table:
                raise DistributionError(f"duplicate entry for {sorted(key)!r}")
            self._table[key] = interval

    @classmethod
    def from_point(cls, opf: ObjectProbabilityFunction) -> "IntervalOPF":
        """Embed an ordinary OPF as degenerate intervals."""
        return cls({c: ProbInterval.point(p) for c, p in opf.support()})

    def interval(self, child_set: ChildSet) -> ProbInterval:
        """The interval of ``child_set`` (``[0, 0]`` outside the support)."""
        return self._table.get(frozenset(child_set), ProbInterval.point(0.0))

    def support(self) -> Iterator[tuple[ChildSet, ProbInterval]]:
        """Iterate the stored entries."""
        return iter(self._table.items())

    def entry_count(self) -> int:
        """The number of stored entries."""
        return len(self._table)

    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """Whether some legal point OPF fits inside the intervals."""
        lo_sum = sum(interval.lo for interval in self._table.values())
        hi_sum = sum(interval.hi for interval in self._table.values())
        return lo_sum <= 1.0 + 1e-12 and hi_sum >= 1.0 - 1e-12

    def validate(self) -> None:
        """Raise :class:`DistributionError` when inconsistent."""
        if not self.is_consistent():
            lo_sum = sum(interval.lo for interval in self._table.values())
            hi_sum = sum(interval.hi for interval in self._table.values())
            raise DistributionError(
                f"inconsistent interval OPF: sum lo = {lo_sum}, sum hi = {hi_sum}"
            )

    def tighten(self) -> "IntervalOPF":
        """Propagate the sum-to-one constraint into each entry's bounds."""
        self.validate()
        lo_sum = sum(interval.lo for interval in self._table.values())
        hi_sum = sum(interval.hi for interval in self._table.values())
        tightened: dict[ChildSet, ProbInterval] = {}
        for child_set, interval in self._table.items():
            other_hi = hi_sum - interval.hi
            other_lo = lo_sum - interval.lo
            lo = max(interval.lo, 1.0 - other_hi)
            hi = min(interval.hi, 1.0 - other_lo)
            if lo > hi:
                raise DistributionError(
                    f"entry {sorted(child_set)!r} admits no probability"
                )
            tightened[child_set] = ProbInterval(max(0.0, lo), min(1.0, hi))
        return IntervalOPF(tightened)

    def contains(self, opf: ObjectProbabilityFunction) -> bool:
        """Whether a point OPF lies within all intervals."""
        support = dict(opf.support())
        for child_set, interval in self._table.items():
            if support.pop(child_set, 0.0) not in interval:
                return False
        return all(p == 0.0 for p in support.values())

    def marginal_inclusion(self, oid: Oid) -> ProbInterval:
        """The interval of ``P(oid in c)``.

        Lower bound: every entry containing ``oid`` at its ``lo`` — but
        since entries must jointly sum to one, the exact bounds come from
        the linear program; we return the standard conservative bounds
        ``[sum lo(containing), min(1, sum hi(containing))]``.
        """
        lo = sum(i.lo for c, i in self._table.items() if oid in c)
        hi = sum(i.hi for c, i in self._table.items() if oid in c)
        return ProbInterval(min(1.0, lo), min(1.0, hi))

    def __repr__(self) -> str:
        return f"IntervalOPF({len(self._table)} entries)"


class IntervalProbabilisticInstance:
    """A weak instance with interval OPFs on its non-leaf objects."""

    def __init__(self, weak: WeakInstance) -> None:
        self.weak = weak
        self._iopfs: dict[Oid, IntervalOPF] = {}

    @classmethod
    def from_point_instance(
        cls, pi: ProbabilisticInstance
    ) -> "IntervalProbabilisticInstance":
        """Embed an ordinary probabilistic instance (point intervals)."""
        instance = cls(pi.weak.copy())
        for oid, opf in pi.interpretation.opf_items():
            instance.set_iopf(oid, IntervalOPF.from_point(opf))
        return instance

    @property
    def root(self) -> Oid:
        """The root object id."""
        return self.weak.root

    def set_iopf(self, oid: Oid, iopf: IntervalOPF) -> None:
        """Assign the interval OPF of a non-leaf object."""
        if self.weak.is_leaf(oid):
            raise ModelError(f"object {oid!r} is a leaf")
        self._iopfs[oid] = iopf

    def iopf(self, oid: Oid) -> IntervalOPF | None:
        """The interval OPF of ``oid`` (``None`` when unassigned)."""
        return self._iopfs.get(oid)

    def validate(self) -> None:
        """Weak-instance structure plus per-object interval consistency."""
        self.weak.validate()
        for oid in self.weak.non_leaves():
            iopf = self._iopfs.get(oid)
            if iopf is None:
                raise ModelError(f"non-leaf object {oid!r} has no interval OPF")
            iopf.validate()
            for child_set, _ in iopf.support():
                if not self.weak.is_potential_child_set(oid, child_set):
                    raise ModelError(
                        f"interval OPF of {oid!r} mentions {sorted(child_set)!r} "
                        "outside PC(o)"
                    )

    def contains_point_instance(self, pi: ProbabilisticInstance) -> bool:
        """Whether an ordinary instance's OPFs all fit inside the intervals."""
        for oid in self.weak.non_leaves():
            iopf = self._iopfs.get(oid)
            opf = pi.opf(oid)
            if iopf is None or opf is None or not iopf.contains(opf):
                return False
        return True

    def tighten(self) -> "IntervalProbabilisticInstance":
        """Tighten every interval OPF in place-free fashion."""
        out = IntervalProbabilisticInstance(self.weak.copy())
        for oid, iopf in self._iopfs.items():
            out.set_iopf(oid, iopf.tighten())
        return out

    def midpoint_instance(self) -> ProbabilisticInstance:
        """A point instance at the (normalized) interval midpoints.

        Useful as a representative selection; midpoints are renormalized
        to sum to one per object.
        """
        pi = ProbabilisticInstance(self.weak.copy())
        for oid, iopf in self._iopfs.items():
            midpoints = {
                c: (interval.lo + interval.hi) / 2.0 for c, interval in iopf.support()
            }
            mass = sum(midpoints.values())
            if mass <= 0.0:
                raise DistributionError(f"object {oid!r} has zero midpoint mass")
            pi.set_opf(oid, TabularOPF({c: p / mass for c, p in midpoints.items()}))
        return pi

    def __repr__(self) -> str:
        return f"IntervalProbabilisticInstance(root={self.root!r}, |V|={len(self.weak)})"
