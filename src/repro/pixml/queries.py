"""Interval queries on interval probabilistic instances.

The interval analogues of Section 6.2's queries: a chain exists with a
probability *interval* obtained by multiplying the per-link marginal
inclusion intervals (exact for tree-structured instances, where the link
events are independent); a point query bounds ``P(o in p)`` the same
way; and an existential query propagates intervals through the Section
6.1 epsilon recursion — every operation involved (products, one-minus,
complements) is monotone in the inputs, so interval endpoints propagate
soundly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.pixml.intervals import ProbInterval
from repro.pixml.ipf import IntervalProbabilisticInstance
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression, match_path


def interval_chain_probability(
    instance: IntervalProbabilisticInstance, chain: Sequence[Oid]
) -> ProbInterval:
    """The probability interval of the chain ``r.o1...on``."""
    if not chain:
        raise QueryError("a chain needs at least the root object")
    if chain[0] != instance.root:
        raise QueryError(
            f"chain must start at the root {instance.root!r}, got {chain[0]!r}"
        )
    result = ProbInterval.point(1.0)
    for parent, child in zip(chain, chain[1:]):
        iopf = instance.iopf(parent)
        if iopf is None:
            return ProbInterval.point(0.0)
        result = result.product(iopf.marginal_inclusion(child))
    return result


def interval_point_query(
    instance: IntervalProbabilisticInstance,
    path: PathExpression | str,
    oid: Oid,
) -> ProbInterval:
    """The interval of ``P(o in p)`` on a tree-structured instance."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    graph = instance.weak.graph()
    if not graph.is_tree(instance.root):
        raise QueryError("interval point queries require a tree-structured instance")
    if oid not in graph:
        return ProbInterval.point(0.0)
    chain = [oid]
    current = oid
    for label in reversed(path.labels):
        parents = graph.parents(current)
        if not parents:
            return ProbInterval.point(0.0)
        (parent,) = parents
        if graph.label(parent, current) != label:
            return ProbInterval.point(0.0)
        chain.append(parent)
        current = parent
    if current != instance.root:
        return ProbInterval.point(0.0)
    chain.reverse()
    return interval_chain_probability(instance, chain)


def interval_existential_query(
    instance: IntervalProbabilisticInstance, path: PathExpression | str
) -> ProbInterval:
    """The interval of ``P(exists o: o in p)`` on a tree.

    Runs the epsilon recursion of Section 6.1 with interval arithmetic:
    a child set ``c`` survives through ``prod_{j in c ∩ kept} eps_j``
    terms and the root's survival interval is the answer.  Per object we
    compute ``eps_o`` by summing, over the interval OPF's entries, the
    entry interval times the probability that at least one kept child in
    it survives (bounded with the independent-branch formula, exact on
    trees for point inputs).
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    graph = instance.weak.graph()
    if not graph.is_tree(instance.root):
        raise QueryError("interval existential queries require a tree")
    match = match_path(graph, path)
    if match.is_empty:
        return ProbInterval.point(0.0)
    depth = len(match.levels) - 1
    if depth == 0:
        return ProbInterval.point(1.0)

    epsilon: dict[Oid, ProbInterval] = {
        oid: ProbInterval.point(1.0) for oid in match.levels[depth]
    }
    for level in range(depth - 1, -1, -1):
        children_of: dict[Oid, list[Oid]] = {}
        for src, dst in match.level_edges[level]:
            if dst in epsilon:
                children_of.setdefault(src, []).append(dst)
        for oid in match.levels[level]:
            kept = children_of.get(oid, [])
            iopf = instance.iopf(oid)
            if iopf is None:
                raise QueryError(f"non-leaf object {oid!r} has no interval OPF")
            survive = ProbInterval.point(0.0)
            for child_set, entry in iopf.support():
                relevant = [epsilon[c] for c in kept if c in child_set]
                if not relevant:
                    continue
                none_survive = ProbInterval.point(1.0)
                for eps in relevant:
                    none_survive = none_survive.product(eps.complement())
                survive = survive.add(entry.product(none_survive.complement()))
            epsilon[oid] = ProbInterval(min(survive.lo, 1.0), min(survive.hi, 1.0))
    return epsilon.get(instance.root, ProbInterval.point(0.0))
