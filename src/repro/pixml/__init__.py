"""The PIXML interval-probability extension (companion-paper direction)."""

from repro.pixml.intervals import ProbInterval
from repro.pixml.ipf import IntervalOPF, IntervalProbabilisticInstance
from repro.pixml.queries import (
    interval_chain_probability,
    interval_existential_query,
    interval_point_query,
)

__all__ = [
    "IntervalOPF",
    "IntervalProbabilisticInstance",
    "ProbInterval",
    "interval_chain_probability",
    "interval_existential_query",
    "interval_point_query",
]
