"""The paper's running bibliographic example, as reusable fixtures.

* :func:`figure1_instance` — the ordinary semistructured instance of
  Figure 1 / Example 3.1.
* :func:`figure2_instance` — the probabilistic instance of Figure 2 /
  Example 3.3 (the one Example 4.1 computes ``P(S1) = 0.00448`` on).
* :func:`example52_instance` — the simplified four-world instance behind
  Figure 6 / Example 5.2 (selection ``R.book = B1``).

These are used by the tests, the examples and the documentation; keeping
them here guarantees every consumer reproduces exactly the paper's data.
"""

from __future__ import annotations

from repro.core.builder import InstanceBuilder
from repro.core.instance import ProbabilisticInstance
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType

TITLE_TYPE = LeafType("title-type", ["VQDB", "Lore"])
INSTITUTION_TYPE = LeafType("institution-type", ["Stanford", "UMD"])


def figure1_instance() -> SemistructuredInstance:
    """The semistructured instance of Figure 1 (bibliographic domain).

    ``R`` has three book children; books carry title/author children;
    authors carry institution children.  Ancestor projection of
    ``R.book.author`` on this instance yields Figure 4.
    """
    return SemistructuredInstance.from_edges(
        root="R",
        edges=[
            ("R", "B1", "book"),
            ("R", "B2", "book"),
            ("R", "B3", "book"),
            ("B1", "T1", "title"),
            ("B1", "A1", "author"),
            ("B2", "A1", "author"),
            ("B2", "A2", "author"),
            ("B3", "T2", "title"),
            ("B3", "A3", "author"),
            ("A1", "I1", "institution"),
            ("A2", "I1", "institution"),
            ("A3", "I2", "institution"),
        ],
        leaves=[
            ("T1", TITLE_TYPE, "VQDB"),
            ("T2", TITLE_TYPE, "Lore"),
            ("I1", INSTITUTION_TYPE, "Stanford"),
            ("I2", INSTITUTION_TYPE, "UMD"),
        ],
    )


def figure2_instance() -> ProbabilisticInstance:
    """The probabilistic instance of Figure 2, exactly as printed.

    All ``lch``, ``card`` and OPF tables follow the figure; the leaf
    objects get point-mass VPFs on the Figure 1 values (the paper does not
    print VPF tables for this example, and Example 4.1's arithmetic treats
    the leaf values as certain).
    """
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2", "B3"], card=(2, 3))
    builder.children("B1", "title", ["T1"], card=(0, 1))
    builder.children("B1", "author", ["A1", "A2"], card=(1, 2))
    builder.children("B2", "author", ["A1", "A2", "A3"], card=(2, 2))
    builder.children("B3", "title", ["T2"], card=(1, 1))
    builder.children("B3", "author", ["A3"], card=(1, 1))
    builder.children("A1", "institution", ["I1"], card=(0, 1))
    builder.children("A2", "institution", ["I1", "I2"], card=(1, 1))
    builder.children("A3", "institution", ["I2"], card=(1, 1))

    builder.opf("R", {
        ("B1", "B2"): 0.2,
        ("B1", "B3"): 0.2,
        ("B2", "B3"): 0.2,
        ("B1", "B2", "B3"): 0.4,
    })
    builder.opf("B1", {
        ("A1",): 0.3,
        ("A1", "T1"): 0.35,
        ("A2",): 0.1,
        ("A2", "T1"): 0.15,
        ("A1", "A2"): 0.05,
        ("A1", "A2", "T1"): 0.05,
    })
    builder.opf("B2", {
        ("A1", "A2"): 0.4,
        ("A1", "A3"): 0.4,
        ("A2", "A3"): 0.2,
    })
    builder.opf("B3", {("A3", "T2"): 1.0})
    builder.opf("A1", {(): 0.2, ("I1",): 0.8})
    builder.opf("A2", {("I1",): 0.5, ("I2",): 0.5})
    builder.opf("A3", {("I2",): 1.0})

    builder.leaf("T1", "title-type", ["VQDB", "Lore"], {"VQDB": 1.0})
    builder.leaf("T2", "title-type", vpf={"Lore": 1.0})
    builder.leaf("I1", "institution-type", ["Stanford", "UMD"], {"Stanford": 1.0})
    builder.leaf("I2", "institution-type", vpf={"UMD": 1.0})
    return builder.build()


def example41_s1() -> SemistructuredInstance:
    """The compatible instance ``S1`` of Example 4.1 / Figure 3.

    ``S1`` contains books B1 (with A1 and T1) and B2 (with A1 and A2);
    authors A1 and A2 both have institution I1.  Its probability under the
    Figure 2 instance is ``P(B1,B2|R) * P(A1,T1|B1) * P(A1,A2|B2) *
    P(I1|A1) * P(I1|A2) = 0.2 * 0.35 * 0.4 * 0.8 * 0.5 = 0.0112``.

    Note: the paper prints ``0.00448`` for this product, but the five
    factors it lists multiply to ``0.0112`` (0.00448 would need an extra
    factor of 0.4).  We treat the printed total as an arithmetic typo and
    assert the value implied by the factors.
    """
    return SemistructuredInstance.from_edges(
        root="R",
        edges=[
            ("R", "B1", "book"),
            ("R", "B2", "book"),
            ("B1", "T1", "title"),
            ("B1", "A1", "author"),
            ("B2", "A1", "author"),
            ("B2", "A2", "author"),
            ("A1", "I1", "institution"),
            ("A2", "I1", "institution"),
        ],
        leaves=[
            ("T1", TITLE_TYPE, "VQDB"),
            ("I1", INSTITUTION_TYPE, "Stanford"),
        ],
    )


def example52_instance() -> ProbabilisticInstance:
    """The simplified instance behind Figure 6 / Example 5.2.

    Four compatible worlds: {B1} (0.4), {B2} (0.2), {B1, B2} with B2
    having/not having further structure... The paper only prints the four
    world probabilities (0.4, 0.2, 0.2, 0.2) and that exactly S1, S3 and S4
    contain ``B1``.  We realize this with a root whose OPF is:

        {B1}: 0.4   {B2}: 0.2   {B1, B2}: 0.2   {B1, B3}: 0.2

    so that selection ``R.book = B1`` keeps mass 0.8 and the normalized
    probability of the first world is 0.4 / 0.8 = 0.5 (the paper's printed
    ``0.4`` is an arithmetic typo).
    """
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2", "B3"], card=(1, 2))
    builder.opf("R", {
        ("B1",): 0.4,
        ("B2",): 0.2,
        ("B1", "B2"): 0.2,
        ("B1", "B3"): 0.2,
    })
    builder.leaf("B1", "book-type", ["b1"], {"b1": 1.0})
    builder.leaf("B2", "book-type", vpf={"b1": 1.0})
    builder.leaf("B3", "book-type", vpf={"b1": 1.0})
    return builder.build()
