"""A boolean event algebra over compatible worlds.

Section 6's queries each compute the probability of one *atomic* event
(an object satisfies a path; some object satisfies a path; a chain
exists).  Real questions compose: "a book by Hung exists AND no book by
Getoor does", "B1 is present OR B2 is".  This module provides event
objects closed under ``&``, ``|`` and ``~``, with three evaluation
routes:

* :func:`probability` — exact, by world enumeration (small instances);
* :func:`estimate` — unbiased Monte-Carlo with standard errors (any
  acyclic instance, any size);
* :func:`conditional_probability` — exact ``P(event | given)``.

Atoms: :class:`ObjectExists`, :class:`Reaches` (the point query's
event), :class:`PathNonEmpty` (the existential's), :class:`HasValue` and
:class:`ChainExists`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.paths import PathExpression, evaluate_path
from repro.semistructured.types import Value


class Event(ABC):
    """A predicate over semistructured worlds, closed under &, |, ~."""

    @abstractmethod
    def holds(self, world: SemistructuredInstance) -> bool:
        """Whether the event holds in ``world``."""

    def __and__(self, other: "Event") -> "Event":
        return And(self, other)

    def __or__(self, other: "Event") -> "Event":
        return Or(self, other)

    def __invert__(self) -> "Event":
        return Not(self)


@dataclass(frozen=True)
class ObjectExists(Event):
    """``o`` occurs in the world."""

    oid: Oid

    def holds(self, world: SemistructuredInstance) -> bool:
        return self.oid in world

    def __str__(self) -> str:
        return f"exists({self.oid})"


@dataclass(frozen=True)
class Reaches(Event):
    """``o in p`` — the point query's event."""

    path: PathExpression
    oid: Oid

    def holds(self, world: SemistructuredInstance) -> bool:
        return self.oid in evaluate_path(world.graph, self.path)

    def __str__(self) -> str:
        return f"{self.oid} in {self.path}"


@dataclass(frozen=True)
class PathNonEmpty(Event):
    """``exists o: o in p`` — the existential query's event."""

    path: PathExpression

    def holds(self, world: SemistructuredInstance) -> bool:
        return bool(evaluate_path(world.graph, self.path))

    def __str__(self) -> str:
        return f"nonempty({self.path})"


@dataclass(frozen=True)
class HasValue(Event):
    """``o`` occurs with value ``v``."""

    oid: Oid
    value: Value

    def holds(self, world: SemistructuredInstance) -> bool:
        return self.oid in world and world.val(self.oid) == self.value

    def __str__(self) -> str:
        return f"val({self.oid}) = {self.value!r}"


@dataclass(frozen=True)
class ChainExists(Event):
    """The explicit object chain exists."""

    chain: tuple[Oid, ...]

    def holds(self, world: SemistructuredInstance) -> bool:
        for parent, child in zip(self.chain, self.chain[1:]):
            if parent not in world or child not in world.children(parent):
                return False
        return bool(self.chain) and self.chain[0] in world

    def __str__(self) -> str:
        return ".".join(self.chain)


@dataclass(frozen=True)
class And(Event):
    left: Event
    right: Event

    def holds(self, world: SemistructuredInstance) -> bool:
        return self.left.holds(world) and self.right.holds(world)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Event):
    left: Event
    right: Event

    def holds(self, world: SemistructuredInstance) -> bool:
        return self.left.holds(world) or self.right.holds(world)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Event):
    inner: Event

    def holds(self, world: SemistructuredInstance) -> bool:
        return not self.inner.holds(world)

    def __str__(self) -> str:
        return f"not {self.inner}"


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def probability(pi: ProbabilisticInstance, event: Event) -> float:
    """Exact ``P(event)`` by world enumeration."""
    return GlobalInterpretation.from_local(pi).event_probability(event.holds)


def conditional_probability(
    pi: ProbabilisticInstance, event: Event, given: Event
) -> float:
    """Exact ``P(event | given)``; raises when ``P(given) = 0``."""
    interpretation = GlobalInterpretation.from_local(pi)
    denominator = interpretation.event_probability(given.holds)
    if denominator <= 0.0:
        raise QueryError(f"conditioning event has probability zero: {given}")
    joint = interpretation.event_probability(
        lambda world: event.holds(world) and given.holds(world)
    )
    return joint / denominator


def estimate(
    pi: ProbabilisticInstance,
    event: Event,
    samples: int = 1000,
    seed: int | None = None,
):
    """Monte-Carlo ``P(event)`` (returns an ``Estimate``)."""
    from repro.semantics.sampling import estimate_probability

    return estimate_probability(pi, event.holds, samples, seed)


def estimate_conditional(
    pi: ProbabilisticInstance,
    event: Event,
    given: Event,
    samples: int = 1000,
    seed: int | None = None,
):
    """Monte-Carlo ``P(event | given)`` by rejection sampling.

    Draws worlds until ``samples`` of them satisfy ``given`` (with a
    10x-oversampling cap to avoid spinning on rare evidence) and reports
    the conditional frequency.  Raises :class:`QueryError` when no
    accepted sample is found within the cap — the evidence is then too
    rare for rejection sampling; condition exactly instead.
    """
    import math

    from repro.semantics.sampling import Estimate, WorldSampler

    if samples <= 0:
        raise QueryError("need a positive sample count")
    sampler = WorldSampler(pi, seed)
    accepted = 0
    hits = 0
    for _ in range(samples * 10):
        world = sampler.sample()
        if not given.holds(world):
            continue
        accepted += 1
        if event.holds(world):
            hits += 1
        if accepted >= samples:
            break
    if accepted == 0:
        raise QueryError(
            f"no sample satisfied the evidence {given} within {samples * 10} draws"
        )
    probability_value = hits / accepted
    stderr = math.sqrt(probability_value * (1.0 - probability_value) / accepted)
    return Estimate(probability_value, stderr, accepted)
