"""Catalog consistency checker (``python -m repro.storage fsck``).

Verifies everything the durability machinery promises: every instance
file matches its checksum sidecar, no sidecar is orphaned, no stale
tmp file survived a crash, the write-ahead journal parses to a clean
prefix with no unresolved operations, and the generation counter is
not behind the journal's committed high-water mark.  With ``--repair``
each finding is fixed the same way replay-on-open would fix it —
roll forward what provably completed, quarantine what cannot be
explained, delete only derived artifacts (sidecars, tmp files), never
instance data.

Finding codes:

=======  ==============================================================
FS101    data file does not match its sidecar → quarantine (repair)
FS102    data file has no sidecar → re-sign if decodable, else quarantine
FS103    sidecar with no data file (orphan) → remove
FS104    data file undecodable (even with a matching sidecar) → quarantine
FS110    stale ``*.tmp`` from an interrupted atomic write → remove
FS120    torn journal tail (half-written / corrupt records) → truncate
FS121    journal operation begun but never committed/aborted → replay
FS122    generation counter behind the journal's committed max → advance
=======  ==============================================================

With ``--shards`` the target is a *sharded* catalog root: the manifest
(``shards.json``), the rebalance journal, and every ``shard-i/``
sub-catalog are audited in one invocation (per-shard findings carry a
``shard-i/`` path prefix).  Sharded-mode finding codes:

=======  ==============================================================
FS130    shard manifest missing/unreadable/invalid → manual (unrepaired)
FS131    torn rebalance-journal tail → truncate
FS132    unfinished shard migration → resume it to completion
FS133    name present in more than one shard directory → resolved by
         resuming the pending migration; otherwise manual
FS134    shard directory named by the manifest is missing → create it
=======  ==============================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.json_codec import (
    checksum_sidecar,
    content_checksum,
    loads,
    replace_atomically,
)
from repro.storage.journal import (
    INSTANCE_SUFFIX,
    JOURNAL_NAME,
    Journal,
    quarantine_move,
    recover_directory,
)
from repro.storage.locking import (
    CATALOG_LOCK_NAME,
    GENERATION_NAME,
    read_generation,
    shared_lock,
)


@dataclass(frozen=True)
class Finding:
    """One fsck finding, with what (if anything) was done about it."""

    code: str           # "FS1xx" per the table above
    path: str           # file the finding is about (relative to the catalog)
    message: str
    repaired: bool = False
    action: str = ""    # what --repair did (or would do)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "message": self.message,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """The result of one fsck pass."""

    directory: str
    findings: list[Finding] = field(default_factory=list)
    checked_instances: int = 0
    repair: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def unrepaired(self) -> list[Finding]:
        return [f for f in self.findings if not f.repaired]

    def as_dict(self) -> dict:
        return {
            "directory": self.directory,
            "checked_instances": self.checked_instances,
            "repair": self.repair,
            "clean": self.clean,
            "findings": [f.as_dict() for f in self.findings],
            "unrepaired": len(self.unrepaired),
        }


#: Catalog-infrastructure files an fsck pass must not flag.
_INFRA = (CATALOG_LOCK_NAME, GENERATION_NAME, JOURNAL_NAME)


def fsck_directory(directory: str | Path, repair: bool = False) -> FsckReport:
    """Check (and with ``repair=True`` fix) one catalog directory.

    Takes the catalog's cross-process lock for the whole pass, so a
    concurrent writer can never race the repairs.
    """
    directory = Path(directory)
    report = FsckReport(directory=str(directory), repair=repair)
    if not directory.is_dir():
        report.findings.append(
            Finding("FS100", str(directory), "not a directory")
        )
        return report
    with shared_lock(directory / CATALOG_LOCK_NAME):
        _check_journal(directory, report)
        _check_tmp_files(directory, report)
        _check_instances(directory, report)
        _check_generation(directory, report)
    return report


def _relative(directory: Path, path: Path) -> str:
    try:
        return str(path.relative_to(directory))
    except ValueError:
        return str(path)


def _check_journal(directory: Path, report: FsckReport) -> None:
    journal = Journal(directory)
    records, torn = journal.read()
    if torn:
        finding = Finding(
            "FS120", JOURNAL_NAME,
            "journal has a torn/corrupt tail",
            repaired=report.repair,
            action="truncate to the last intact record",
        )
        if report.repair:
            journal.truncate_to(records)
        report.findings.append(finding)
    pending = journal.pending(records)
    if pending:
        for record in pending:
            report.findings.append(Finding(
                "FS121", JOURNAL_NAME,
                f"{record.op} of {record.name!r} (seq {record.seq}) "
                "begun but never committed or aborted",
                repaired=report.repair,
                action="replay (roll forward or abort from on-disk state)",
            ))
        if report.repair:
            recover_directory(directory, journal)


def _check_tmp_files(directory: Path, report: FsckReport) -> None:
    for tmp in sorted(directory.glob("*.tmp")):
        if tmp.name in _INFRA:
            continue
        finding = Finding(
            "FS110", _relative(directory, tmp),
            "stale tmp file from an interrupted atomic write",
            repaired=report.repair,
            action="remove",
        )
        if report.repair:
            tmp.unlink(missing_ok=True)
        report.findings.append(finding)


def _instance_files(directory: Path) -> list[Path]:
    return sorted(
        path for path in directory.glob(f"*{INSTANCE_SUFFIX}")
        if path.is_file()
    )


def _check_instances(directory: Path, report: FsckReport) -> None:
    data_files = _instance_files(directory)
    report.checked_instances = len(data_files)
    for path in data_files:
        _check_one_instance(directory, path, report)
    # Orphan sidecars: a .sha256 whose data file is gone (torn drop,
    # or a save that never published).
    for sidecar in sorted(directory.glob(f"*{INSTANCE_SUFFIX}.sha256")):
        data = sidecar.with_name(sidecar.name[: -len(".sha256")])
        if data.exists():
            continue
        finding = Finding(
            "FS103", _relative(directory, sidecar),
            "checksum sidecar with no data file (orphan)",
            repaired=report.repair,
            action="remove",
        )
        if report.repair:
            sidecar.unlink(missing_ok=True)
        report.findings.append(finding)


def _check_one_instance(
    directory: Path, path: Path, report: FsckReport
) -> None:
    rel = _relative(directory, path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        report.findings.append(Finding(
            "FS104", rel, f"unreadable data file: {exc}",
            repaired=False, action="quarantine",
        ))
        return
    actual = content_checksum(text)
    sidecar = checksum_sidecar(path)
    try:
        recorded: str | None = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        recorded = None
    decodable = True
    try:
        loads(text)
    except Exception:
        decodable = False
    if recorded is None:
        if decodable:
            finding = Finding(
                "FS102", rel, "data file has no checksum sidecar",
                repaired=report.repair,
                action="recompute sidecar from the (decodable) data file",
            )
            if report.repair:
                replace_atomically(actual + "\n", sidecar)
        else:
            finding = Finding(
                "FS102", rel,
                "data file has no sidecar and does not decode",
                repaired=report.repair, action="quarantine",
            )
            if report.repair:
                _quarantine(directory, path)
        report.findings.append(finding)
        return
    if recorded != actual:
        finding = Finding(
            "FS101", rel,
            "data file does not match its checksum sidecar",
            repaired=report.repair, action="quarantine",
        )
        if report.repair:
            _quarantine(directory, path)
        report.findings.append(finding)
        return
    if not decodable:
        finding = Finding(
            "FS104", rel,
            "data file matches its sidecar but does not decode",
            repaired=report.repair, action="quarantine",
        )
        if report.repair:
            _quarantine(directory, path)
        report.findings.append(finding)


def _quarantine(directory: Path, path: Path) -> None:
    generation = read_generation(directory / GENERATION_NAME)
    quarantine_move(directory, path, generation)


def _check_generation(directory: Path, report: FsckReport) -> None:
    journal = Journal(directory)
    committed = journal.committed_generation()
    current = read_generation(directory / GENERATION_NAME)
    if current >= committed:
        return
    finding = Finding(
        "FS122", GENERATION_NAME,
        f"generation counter at {current}, behind the journal's "
        f"committed {committed}",
        repaired=report.repair,
        action=f"advance to {committed}",
    )
    if report.repair:
        replace_atomically(
            f"{committed}\n", directory / GENERATION_NAME
        )
    report.findings.append(finding)


# ----------------------------------------------------------------------
# Sharded roots (fsck --shards)
# ----------------------------------------------------------------------
def fsck_sharded_root(root: str | Path, repair: bool = False) -> FsckReport:
    """Audit a sharded catalog root in one pass.

    Checks the shard manifest, the rebalance journal (torn tail,
    unfinished migration), every ``shard-i/`` sub-catalog (the full
    :func:`fsck_directory` battery, findings prefixed with the shard
    path), and cross-shard invariants (no name held by two shards).
    With ``repair=True`` an unfinished migration is resumed to
    completion — the same recovery ``ShardedServer.start()`` performs.
    """
    # Imported lazily: repro.server.rebalance builds on repro.storage.
    from repro.errors import RebalanceError
    from repro.server.rebalance import (
        RebalanceJournal,
        read_manifest,
        resume_rebalance,
    )

    root = Path(root)
    report = FsckReport(directory=str(root), repair=repair)
    if not root.is_dir():
        report.findings.append(Finding("FS100", str(root), "not a directory"))
        return report
    with shared_lock(root / CATALOG_LOCK_NAME):
        try:
            manifest = read_manifest(root)
        except RebalanceError as exc:
            report.findings.append(Finding(
                "FS130", "shards.json", str(exc),
                repaired=False, action="restore the manifest by hand",
            ))
            return report
        if manifest is None:
            report.findings.append(Finding(
                "FS130", "shards.json",
                "sharded root has no shard manifest",
                repaired=False,
                action="reopen with ShardedServer to record the layout",
            ))
            return report

        journal = RebalanceJournal(root)
        records, torn = journal.read()
        if torn:
            finding = Finding(
                "FS131", journal.path.name,
                "rebalance journal has a torn/corrupt tail",
                repaired=report.repair,
                action="truncate to the last intact record",
            )
            if report.repair:
                journal.truncate_to(records)
            report.findings.append(finding)
        pending = RebalanceJournal.pending_plan(records)
        if pending is not None:
            repaired = False
            action = "resume the migration to completion"
            message = (
                f"unfinished shard migration to epoch "
                f"{pending.get('to_epoch')}"
            )
            if report.repair:
                try:
                    resume_rebalance(root)
                    repaired = True
                except RebalanceError as exc:
                    message = f"{message}; resume failed: {exc}"
                    action = "restore rebalance.plan.json by hand"
            report.findings.append(Finding(
                "FS132", journal.path.name, message,
                repaired=repaired, action=action,
            ))
            if repaired:
                refreshed = read_manifest(root)
                if refreshed is not None:
                    manifest = refreshed

        placements: dict[str, list[int]] = {}
        for index in range(manifest.shards):
            shard_dir = root / f"shard-{index}"
            prefix = f"shard-{index}/"
            if not shard_dir.is_dir():
                finding = Finding(
                    "FS134", f"shard-{index}",
                    "shard directory named by the manifest is missing",
                    repaired=report.repair, action="create it (empty)",
                )
                if report.repair:
                    shard_dir.mkdir(parents=True, exist_ok=True)
                report.findings.append(finding)
                if not shard_dir.is_dir():
                    continue
            sub = fsck_directory(shard_dir, repair=repair)
            report.checked_instances += sub.checked_instances
            report.findings.extend(
                Finding(
                    code=f.code, path=prefix + f.path, message=f.message,
                    repaired=f.repaired, action=f.action,
                )
                for f in sub.findings
            )
            for path in _instance_files(shard_dir):
                name = path.name[: -len(INSTANCE_SUFFIX)]
                placements.setdefault(name, []).append(index)

        for name in sorted(placements):
            shards = placements[name]
            if len(shards) > 1:
                where = ", ".join(f"shard-{s}" for s in shards)
                report.findings.append(Finding(
                    "FS133", f"{name}{INSTANCE_SUFFIX}",
                    f"instance held by {len(shards)} shards ({where})",
                    repaired=False,
                    action="resume the pending migration (--repair)",
                ))
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def format_report(report: FsckReport) -> str:
    lines = [
        f"fsck {report.directory}: {report.checked_instances} instance "
        f"file(s) checked"
    ]
    for finding in report.findings:
        status = (
            "repaired" if finding.repaired
            else ("would " + finding.action if finding.action else "found")
        )
        lines.append(
            f"  {finding.code} {finding.path}: {finding.message} [{status}]"
        )
    if report.clean:
        lines.append("  clean: no findings")
    else:
        lines.append(
            f"  {len(report.findings)} finding(s), "
            f"{len(report.unrepaired)} unrepaired"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage",
        description="catalog maintenance tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fsck = sub.add_parser(
        "fsck", help="verify (and optionally repair) a catalog directory"
    )
    fsck.add_argument("directory", help="catalog directory to check")
    fsck.add_argument(
        "--repair", action="store_true",
        help="fix findings (roll forward / quarantine / clean up)",
    )
    fsck.add_argument(
        "--shards", action="store_true",
        help="treat the directory as a sharded root: audit the manifest, "
             "the rebalance journal, and every shard-i/ sub-catalog",
    )
    fsck.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    check = fsck_sharded_root if args.shards else fsck_directory
    report = check(args.directory, repair=args.repair)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(format_report(report))
    if report.repair:
        return 0 if not report.unrepaired else 1
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "Finding",
    "FsckReport",
    "fsck_directory",
    "fsck_sharded_root",
    "format_report",
    "main",
]
