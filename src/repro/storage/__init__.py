"""Instance catalog and persistence."""

from repro.storage.database import Database, DatabaseError
from repro.storage.fsck import Finding, FsckReport, fsck_directory
from repro.storage.journal import Journal, RecoveryReport, recover_directory

__all__ = [
    "Database",
    "DatabaseError",
    "Finding",
    "FsckReport",
    "Journal",
    "RecoveryReport",
    "fsck_directory",
    "recover_directory",
]
