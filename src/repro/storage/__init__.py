"""Instance catalog and persistence."""

from repro.storage.database import Database, DatabaseError

__all__ = ["Database", "DatabaseError"]
