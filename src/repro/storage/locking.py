"""Cross-process advisory file locking for the catalog directory.

PR 4 made individual instance writes atomic (tmp + fsync +
``os.replace``), which protects against crashes — but not against two
*processes* interleaving multi-file catalog operations (``save`` then
sidecar, ``drop`` then version bump, quarantine moves) on the same
directory.  :class:`FileLock` closes that hole with a classic
``fcntl.flock`` advisory lock:

* **exclusive, cross-process** — the kernel guarantees one holder per
  open file description; a second process (or a second ``Database`` in
  the same process) blocks until release or times out with a typed
  :class:`~repro.errors.LockTimeout`;
* **crash-safe** — ``flock`` locks die with their process, so a crashed
  holder can never wedge the catalog; the lock file carries holder
  metadata (pid, host, time) purely for *stale detection*: finding
  leftover metadata on acquisition means the previous holder crashed
  without releasing, which is counted (``lock.stale_reclaimed``) and
  traced rather than silently ignored;
* **reentrant** — one :class:`FileLock` instance may be acquired
  repeatedly by the thread that holds it (``save_all`` nests ``save``);
  other threads of the same process serialize on an internal lock, so
  the in-process and cross-process pictures agree.

On platforms without :mod:`fcntl` the lock degrades to in-process-only
mutual exclusion (still correct for threads; documented, never silent —
:attr:`FileLock.cross_process` says which mode is active).

A *generation file* rides along: :func:`read_generation` /
:func:`bump_generation` maintain a monotonically increasing counter
that mutators bump while holding the lock, so independent ``Database``
instances on one directory can cheaply detect that the catalog changed
under them.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections.abc import Callable
from pathlib import Path

from repro.errors import LockError, LockTimeout
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer
from repro.resilience.faults import fault_point

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Name of the advisory lock file inside a catalog directory.
CATALOG_LOCK_NAME = "catalog.lock"

#: Name of the generation counter file inside a catalog directory.
GENERATION_NAME = "catalog.generation"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host (best effort)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class FileLock:
    """An exclusive, reentrant, cross-process advisory lock.

    Args:
        path: the lock file (created on first acquisition; its presence
            alone means nothing — only the ``flock`` matters).
        timeout_s: default acquisition timeout.
        poll_s: retry interval while the lock is contended.
        clock: monotonic-seconds source (injectable for tests).
        sleep: the wait function polling uses (injectable for tests).
    """

    def __init__(
        self,
        path: str | Path,
        timeout_s: float = 10.0,
        poll_s: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._clock = clock
        self._sleep = sleep
        self._thread_lock = threading.RLock()
        self._fd: int | None = None
        self._count = 0
        #: How many acquisitions found a crashed holder's metadata.
        self.stale_reclaims = 0

    @property
    def cross_process(self) -> bool:
        """Whether the OS-level advisory lock is available here."""
        return fcntl is not None

    @property
    def held(self) -> bool:
        """Whether the calling process currently holds the lock."""
        with self._thread_lock:
            return self._count > 0

    # ------------------------------------------------------------------
    def _holder_info(self) -> dict[str, object]:
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": time.time(),
        }

    def _read_holder(self) -> dict[str, object] | None:
        try:
            text = self.path.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            data = json.loads(text)
        except ValueError:
            return None
        return data if isinstance(data, dict) else None

    def _describe_holder(self) -> str | None:
        holder = self._read_holder()
        if holder is None:
            return None
        pid = holder.get("pid")
        alive = _pid_alive(pid) if isinstance(pid, int) else False
        return (
            f"pid {pid} on {holder.get('host', '?')}"
            f" ({'alive' if alive else 'not running'})"
        )

    def _flock_acquire(self, timeout_s: float) -> None:
        """Take the OS lock, polling up to ``timeout_s`` seconds."""
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = self._clock() + timeout_s
        contended = False
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if self._clock() >= deadline:
                        holder = self._describe_holder()
                        raise LockTimeout(
                            f"could not acquire {self.path} within "
                            f"{timeout_s:g}s"
                            + (f" (held by {holder})" if holder else ""),
                            path=str(self.path),
                            holder=holder,
                        ) from None
                    if not contended:
                        contended = True
                        current_registry().counter(
                            "lock.contended_waits"
                        ).inc()
                    self._sleep(self.poll_s)
            # Locked.  Leftover metadata means the previous holder
            # crashed without releasing (a clean release truncates).
            stale = self._read_holder()
            if stale is not None and stale.get("pid") != os.getpid():
                self.stale_reclaims += 1
                current_registry().counter("lock.stale_reclaimed").inc()
                current_tracer().event(
                    "lock.stale_reclaimed",
                    path=str(self.path),
                    stale_pid=stale.get("pid"),
                )
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, json.dumps(self._holder_info()).encode("utf-8"))
        except BaseException:
            try:
                os.close(fd)
            except OSError:
                pass
            raise
        self._fd = fd

    # ------------------------------------------------------------------
    def acquire(self, timeout_s: float | None = None) -> "FileLock":
        """Take the lock (reentrant for the holding thread).

        Raises :class:`LockTimeout` when the lock stays contended past
        the timeout — with a description of the current holder when the
        lock file's metadata allows one.
        """
        timeout = self.timeout_s if timeout_s is None else timeout_s
        fault_point("lock.db.file")
        if not self._thread_lock.acquire(timeout=timeout):
            raise LockTimeout(
                f"could not acquire {self.path} within {timeout:g}s "
                f"(held by another thread of this process)",
                path=str(self.path),
            )
        if self._count > 0:
            self._count += 1
            return self
        if fcntl is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._flock_acquire(timeout)
            except BaseException:
                self._thread_lock.release()
                raise
        self._count = 1
        current_registry().counter("lock.acquires").inc()
        return self

    def release(self) -> None:
        """Release one acquisition (the OS lock drops at the outermost)."""
        with self._thread_lock:
            if self._count == 0:
                raise LockError(f"release of unheld lock {self.path}")
            self._count -= 1
            if self._count == 0 and self._fd is not None:
                fd, self._fd = self._fd, None
                try:
                    os.ftruncate(fd, 0)
                    fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)
        self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = f"held x{self._count}" if self._count else "free"
        return f"FileLock({str(self.path)!r}, {state})"


# ----------------------------------------------------------------------
# Per-path lock sharing
# ----------------------------------------------------------------------
_SHARED_LOCKS: dict[Path, FileLock] = {}
_SHARED_LOCKS_GUARD = threading.Lock()


def shared_lock(path: str | Path, timeout_s: float = 10.0) -> FileLock:
    """The process-wide :class:`FileLock` for ``path`` (one per path).

    ``flock`` locks taken through *independent* open file descriptions
    conflict even within one process: two :class:`FileLock` instances
    on the same path would contend at the OS level, so two ``Database``
    objects (or a shard worker pool and its router) sharing a catalog
    directory in one process would serialize through the kernel with
    full timeout semantics instead of the reentrant fast path.  This
    factory returns one canonical lock per resolved path, so every
    in-process user of a catalog directory shares the same reentrant
    lock, and the cross-process ``flock`` below it stays one holder per
    process — which is exactly the advisory-lock contract.

    ``timeout_s`` only applies when the lock is first created; later
    callers share the existing instance (and can still pass explicit
    timeouts to :meth:`FileLock.acquire`).
    """
    resolved = Path(path).resolve()
    with _SHARED_LOCKS_GUARD:
        lock = _SHARED_LOCKS.get(resolved)
        if lock is None:
            lock = FileLock(resolved, timeout_s=timeout_s)
            _SHARED_LOCKS[resolved] = lock
        return lock


# ----------------------------------------------------------------------
# Generation counter
# ----------------------------------------------------------------------
def read_generation(path: str | Path) -> int:
    """The catalog generation recorded at ``path`` (0 when absent)."""
    try:
        text = Path(path).read_text(encoding="utf-8").strip()
    except OSError:
        return 0
    try:
        return int(text)
    except ValueError:
        return 0


def bump_generation(path: str | Path) -> int:
    """Increment the generation file atomically; returns the new value.

    Must be called while holding the catalog's :class:`FileLock` — the
    read-modify-write is only race-free under the lock.  The write
    itself is tmp + fsync + ``os.replace``, so readers never see a torn
    counter even across a crash.
    """
    fault_point("db.generation.bump")
    target = Path(path)
    generation = read_generation(target) + 1
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{generation}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return generation
