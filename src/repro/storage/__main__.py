"""Entry point for ``python -m repro.storage`` (fsck and friends)."""

import sys

from repro.storage.fsck import main

if __name__ == "__main__":
    sys.exit(main())
