"""Write-ahead journal for multi-file catalog operations.

PR 4 made each *individual* file write atomic (tmp + fsync +
``os.replace``) and checksummed, but a catalog mutation is a *sequence*
of files: a save publishes the data file, then the checksum sidecar,
then bumps the generation counter; a drop unlinks two files and bumps;
a quarantine moves two files and bumps.  A crash between any two steps
used to leave the directory in an undocumented intermediate state that
only ad-hoc code paths (the read-time checksum verification) tolerated.

This module gives the catalog real crash semantics.  Every mutating
operation is journaled under the catalog's cross-process lock:

1. a **begin** record (op kind, instance name, and — for saves — the
   SHA-256 of the payload about to be published) is appended and fsynced
   *before* the first destructive step;
2. the multi-file operation runs;
3. a **commit** record (carrying the post-operation generation) marks it
   complete.  Failures that surface as clean exceptions append an
   **abort** record instead.

On open, :func:`recover_directory` replays the journal: any begin
without a commit/abort is a torn operation, resolved by *rolling
forward* when the on-disk evidence shows the operation published its
payload (data file matches the journaled checksum → the sidecar is
recomputed; a drop's or quarantine's remaining files are removed/moved)
and by *aborting* when it did not (the atomic per-file writes guarantee
the pre-operation state is still intact).  Files in a state the journal
cannot explain are quarantined, never deleted.  The generation counter
is rolled forward to the journal's high-water mark, so it stays
monotone across crashes.

**Record format.**  One JSON object per line, each carrying a ``crc``
field — the SHA-256 of the record's canonical JSON without ``crc``.  A
torn append (half a line at the tail) or a corrupted record fails the
parse or the checksum; everything from the first bad record on is
discarded and the journal truncated back to the good prefix, which is
exactly the prefix-consistency the catalog needs: a journal record is
only trusted once it was durably and completely written.

**Quarantine naming.**  Quarantined files are suffixed with the catalog
generation at the time of the move plus a dedup counter
(``name.pxml.json.g7``, ``name.pxml.json.g7-2``), so quarantining a
second corrupt file under the same instance name can never destroy the
earlier evidence.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import JournalError
from repro.io.json_codec import (
    checksum_sidecar,
    content_checksum,
    replace_atomically,
)
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer
from repro.resilience.faults import fault_point
from repro.storage.locking import (
    GENERATION_NAME,
    bump_generation,
    read_generation,
)

#: Name of the journal file inside a catalog directory.
JOURNAL_NAME = "catalog.journal"

#: Instance-file suffix (mirrors ``repro.storage.database._SUFFIX``;
#: kept here too so the journal and fsck need no database import).
INSTANCE_SUFFIX = ".pxml.json"

#: Subdirectory quarantined files are moved into.
QUARANTINE_DIR = "quarantine"

#: Journaled operation kinds.
OPS = ("save", "drop", "quarantine")

#: Once the journal holds this many fully-resolved records it is
#: compacted down to a single checkpoint record.
COMPACT_THRESHOLD = 512


def record_crc(fields: dict) -> str:
    """The integrity checksum of a record (canonical JSON, no ``crc``)."""
    canonical = json.dumps(
        {k: v for k, v in sorted(fields.items()) if k != "crc"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_record_crc = record_crc  # backward-compatible private alias


def _checked_line(fields: dict) -> str:
    fields = dict(fields)
    fields["crc"] = record_crc(fields)
    return json.dumps(fields, sort_keys=True, separators=(",", ":")) + "\n"


def append_checked(path: Path, fields: dict) -> None:
    """Append one crc-stamped JSONL record and fsync it durable.

    The generic building block behind every journal in the tree (the
    catalog journal here, the rebalance journal in
    :mod:`repro.server.rebalance`): one ``write`` call of
    ``line + "\\n"``, flushed and fsynced, so a torn append is always
    detectable as a file not ending in a newline.
    """
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(_checked_line(fields))
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise JournalError(f"cannot append to journal {path}: {exc}") from exc


def read_checked(path: Path) -> tuple[list[dict], bool]:
    """``(records, torn_tail)`` — the trusted prefix of a checked JSONL.

    Reads raw record dicts (crc verified and stripped of nothing —
    callers parse their own schema).  Parsing stops at the first torn
    or corrupt line: a file not ending in ``\\n`` is a torn append even
    when the partial line parses, a flipped byte fails exactly the
    record it sits in (decode-with-replacement), and a crc mismatch
    discards that record and everything after it.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return [], False
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    torn = False
    if raw and not raw.endswith(b"\n"):
        raw = raw[: raw.rfind(b"\n") + 1]
        torn = True
    text = raw.decode("utf-8", errors="replace")
    records: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            fields = json.loads(line)
        except ValueError:
            torn = True
            break
        if not isinstance(fields, dict):
            torn = True
            break
        crc = fields.get("crc")
        if not isinstance(crc, str) or crc != record_crc(fields):
            torn = True
            break
        records.append(fields)
    return records, torn


def rewrite_checked(path: Path, records: list[dict]) -> None:
    """Atomically rewrite a checked JSONL as exactly ``records``
    (crc-stamped) — how a torn tail is truncated away."""
    replace_atomically(
        "".join(_checked_line(fields) for fields in records), path
    )


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal line."""

    seq: int
    state: str                      # "begin" | "commit" | "abort" | "checkpoint"
    op: str = ""                    # "save" | "drop" | "quarantine"
    name: str = ""
    checksum: str | None = None     # save begins: payload SHA-256
    generation: int | None = None   # commits / checkpoints
    recovered: bool = False         # written by replay, not by the op itself

    def as_fields(self) -> dict:
        fields: dict = {"seq": self.seq, "state": self.state}
        if self.op:
            fields["op"] = self.op
        if self.name:
            fields["name"] = self.name
        if self.checksum is not None:
            fields["checksum"] = self.checksum
        if self.generation is not None:
            fields["generation"] = self.generation
        if self.recovered:
            fields["recovered"] = True
        return fields


def _parse_record(fields: dict) -> JournalRecord | None:
    seq = fields.get("seq")
    state = fields.get("state")
    if not isinstance(seq, int) or state not in (
        "begin", "commit", "abort", "checkpoint"
    ):
        return None
    checksum = fields.get("checksum")
    generation = fields.get("generation")
    return JournalRecord(
        seq=seq,
        state=str(state),
        op=str(fields.get("op", "")),
        name=str(fields.get("name", "")),
        checksum=checksum if isinstance(checksum, str) else None,
        generation=generation if isinstance(generation, int) else None,
        recovered=bool(fields.get("recovered", False)),
    )


class Journal:
    """The append-only operation journal of one catalog directory.

    All mutating methods must be called while holding the catalog's
    cross-process ``catalog.lock`` — the journal itself takes no lock
    (its callers, :class:`~repro.storage.database.Database` and the
    fsck/recovery pass, already serialize on it).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self) -> tuple[list[JournalRecord], bool]:
        """``(records, torn_tail)`` — the trusted prefix of the journal.

        Parsing stops at the first torn or corrupt line; everything
        before it is returned, and ``torn_tail`` reports whether
        anything was discarded.
        """
        raw_records, torn = read_checked(self.path)
        records: list[JournalRecord] = []
        for fields in raw_records:
            record = _parse_record(fields)
            if record is None:
                torn = True
                break
            records.append(record)
        return records, torn

    def pending(
        self, records: list[JournalRecord] | None = None
    ) -> list[JournalRecord]:
        """Begin records with no commit/abort — torn operations."""
        if records is None:
            records, _ = self.read()
        resolved = {
            r.seq for r in records if r.state in ("commit", "abort")
        }
        return [
            r for r in records
            if r.state == "begin" and r.seq not in resolved
        ]

    def committed_generation(
        self, records: list[JournalRecord] | None = None
    ) -> int:
        """The journal's generation high-water mark (0 when none)."""
        if records is None:
            records, _ = self.read()
        return max(
            (r.generation for r in records if r.generation is not None),
            default=0,
        )

    def _next_seq(self, records: list[JournalRecord] | None = None) -> int:
        if records is None:
            records, _ = self.read()
        return max((r.seq for r in records), default=0) + 1

    # ------------------------------------------------------------------
    # Writing (callers hold the catalog lock)
    # ------------------------------------------------------------------
    def _append(self, record: JournalRecord) -> None:
        append_checked(self.path, record.as_fields())
        current_registry().counter("db.journal_records").inc()

    def begin(self, op: str, name: str, checksum: str | None = None) -> int:
        """Journal the intent of a mutating operation; returns its seq."""
        if op not in OPS:
            raise JournalError(f"unknown journal op {op!r}")
        fault_point("journal.begin")
        seq = self._next_seq()
        self._append(
            JournalRecord(seq=seq, state="begin", op=op, name=name,
                          checksum=checksum)
        )
        fault_point("journal.begin.synced")
        return seq

    def commit(
        self, seq: int, op: str, name: str, generation: int,
        recovered: bool = False,
    ) -> None:
        """Mark operation ``seq`` complete at ``generation``."""
        fault_point("journal.commit")
        self._append(
            JournalRecord(seq=seq, state="commit", op=op, name=name,
                          generation=generation, recovered=recovered)
        )
        self.maybe_compact()

    def abort(
        self, seq: int, op: str, name: str, recovered: bool = False
    ) -> None:
        """Mark operation ``seq`` cleanly failed (pre-state intact)."""
        self._append(
            JournalRecord(seq=seq, state="abort", op=op, name=name,
                          recovered=recovered)
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def maybe_compact(self, threshold: int = COMPACT_THRESHOLD) -> bool:
        """Collapse a fully-resolved journal down to one checkpoint.

        Only fires when every begin is resolved (a pending record must
        stay visible to replay) and the record count passed the
        threshold.  The rewrite is atomic, and the checkpoint carries
        the next sequence number so seqs stay monotone forever.
        """
        records, torn = self.read()
        if torn or len(records) < threshold or self.pending(records):
            return False
        self._write_checkpoint(records)
        return True

    def _write_checkpoint(self, records: list[JournalRecord]) -> None:
        checkpoint = JournalRecord(
            seq=self._next_seq(records),
            state="checkpoint",
            generation=self.committed_generation(records),
        )
        rewrite_checked(self.path, [checkpoint.as_fields()])
        current_registry().counter("db.journal_compactions").inc()

    def truncate_to(self, records: list[JournalRecord]) -> None:
        """Atomically rewrite the journal as exactly ``records``
        (recovery uses this to drop a torn tail)."""
        rewrite_checked(self.path, [r.as_fields() for r in records])


# ----------------------------------------------------------------------
# Quarantine naming (collision-proof)
# ----------------------------------------------------------------------
def quarantine_destination(
    quarantine_dir: Path, filename: str, generation: int
) -> Path:
    """A fresh quarantine path for ``filename`` at ``generation``.

    Suffixes the full file name with ``.g<generation>`` and a dedup
    counter, so repeated quarantines of the same instance name keep
    every piece of evidence (``a.pxml.json.g7``, ``a.pxml.json.g7-2``).
    The matching sidecar should be moved to
    ``checksum_sidecar(destination)``.
    """
    candidate = quarantine_dir / f"{filename}.g{generation}"
    counter = 1
    while candidate.exists() or checksum_sidecar(candidate).exists():
        counter += 1
        candidate = quarantine_dir / f"{filename}.g{generation}-{counter}"
    return candidate


def quarantined_names(directory: Path) -> list[str]:
    """Instance names with files in the quarantine directory.

    Understands both the generation-suffixed layout
    (``a.pxml.json.g7``) and the legacy bare layout (``a.pxml.json``).
    """
    quarantine = Path(directory) / QUARANTINE_DIR
    names = set()
    for path in quarantine.glob(f"*{INSTANCE_SUFFIX}*"):
        if path.name.endswith(".sha256") or path.name.endswith(".tmp"):
            continue
        names.add(path.name.split(INSTANCE_SUFFIX)[0])
    return sorted(names)


def quarantine_move(
    directory: Path, path: Path, generation: int
) -> Path:
    """Move ``path`` (and its sidecar) into quarantine; returns the
    destination.  Callers hold the catalog lock."""
    quarantine = Path(directory) / QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    destination = quarantine_destination(quarantine, path.name, generation)
    fault_point("db.quarantine.move")
    os.replace(path, destination)
    sidecar = checksum_sidecar(path)
    fault_point("db.quarantine.sidecar")
    if sidecar.exists():
        os.replace(sidecar, checksum_sidecar(destination))
    return destination


# ----------------------------------------------------------------------
# Recovery (replay on open)
# ----------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """What :func:`recover_directory` did."""

    rolled_forward: int = 0     # torn ops completed from on-disk evidence
    aborted: int = 0            # torn ops whose pre-state was intact
    quarantined: int = 0        # files in a state the journal can't explain
    tmp_removed: int = 0        # stale *.tmp left by interrupted writes
    truncated_tail: bool = False
    generation_restored: bool = False
    actions: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(
            self.rolled_forward or self.aborted or self.quarantined
            or self.tmp_removed or self.truncated_tail
            or self.generation_restored
        )


def recover_directory(
    directory: str | Path, journal: Journal | None = None
) -> RecoveryReport:
    """Replay the journal of a catalog directory to a consistent state.

    Must be called while holding the catalog's cross-process lock (the
    :class:`~repro.storage.database.Database` constructor and the fsck
    CLI both do).  Every step is idempotent: a crash during recovery
    re-runs to the same fixpoint on the next open.
    """
    directory = Path(directory)
    journal = journal if journal is not None else Journal(directory)
    report = RecoveryReport()
    records, torn = journal.read()
    if torn:
        journal.truncate_to(records)
        report.truncated_tail = True
        report.actions.append("truncated torn journal tail")
    generation_path = directory / GENERATION_NAME
    # Stale tmp files are crash artifacts of the atomic-write protocol
    # (fully written, never published).  Under the catalog lock no
    # legitimate write is in flight, so they are safe to sweep.
    for tmp in sorted(directory.glob("*.tmp")):
        tmp.unlink(missing_ok=True)
        report.tmp_removed += 1
        report.actions.append(f"removed stale tmp file {tmp.name}")
    for record in journal.pending(records):
        if record.op == "save":
            _recover_save(directory, journal, record, report)
        elif record.op == "drop":
            _recover_drop(directory, journal, record, report)
        elif record.op == "quarantine":
            _recover_quarantine(directory, journal, record, report)
        else:  # unknown op from a future version: leave it pending
            report.actions.append(
                f"left unknown op {record.op!r} (seq {record.seq}) pending"
            )
    # Generation monotonicity: the counter must never fall behind an
    # operation the journal committed (crash between the operation's
    # last file step and its generation bump).
    committed = journal.committed_generation()
    if read_generation(generation_path) < committed:
        replace_atomically(f"{committed}\n", generation_path)
        report.generation_restored = True
        report.actions.append(f"restored generation to {committed}")
    journal.maybe_compact()
    if report.changed:
        registry = current_registry()
        registry.counter("db.recoveries").inc()
        registry.counter("db.recovered_rolled_forward").inc(
            report.rolled_forward
        )
        registry.counter("db.recovered_aborted").inc(report.aborted)
        registry.counter("db.recovered_quarantined").inc(report.quarantined)
        current_tracer().event(
            "db.recovered",
            directory=str(directory),
            rolled_forward=report.rolled_forward,
            aborted=report.aborted,
            quarantined=report.quarantined,
        )
    return report


def _instance_path(directory: Path, name: str) -> Path:
    return directory / f"{name}{INSTANCE_SUFFIX}"


def _recover_save(
    directory: Path, journal: Journal, record: JournalRecord,
    report: RecoveryReport,
) -> None:
    """Resolve a torn save: roll the sidecar forward when the journaled
    payload was published, abort when the pre-state is intact,
    quarantine anything the journal cannot explain."""
    path = _instance_path(directory, record.name)
    sidecar = checksum_sidecar(path)
    if not path.exists():
        # The new payload never landed; a leftover sidecar (the save
        # was creating a fresh instance) is an orphan.
        sidecar.unlink(missing_ok=True)
        journal.abort(record.seq, "save", record.name, recovered=True)
        report.aborted += 1
        report.actions.append(f"aborted torn save of {record.name!r}")
        return
    try:
        actual = content_checksum(path.read_text(encoding="utf-8"))
    except OSError:
        # Unreadable data file: leave the record pending for a later
        # recovery attempt rather than guessing.
        report.actions.append(
            f"left save of {record.name!r} pending (unreadable file)"
        )
        return
    recorded: str | None = None
    try:
        recorded = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        recorded = None
    if record.checksum is not None and actual == record.checksum:
        # The new payload was published; finish the sequence.
        if recorded != actual:
            replace_atomically(actual + "\n", sidecar)
        generation = bump_generation(directory / GENERATION_NAME)
        journal.commit(
            record.seq, "save", record.name, generation, recovered=True
        )
        report.rolled_forward += 1
        report.actions.append(f"rolled forward torn save of {record.name!r}")
        return
    if recorded == actual:
        # Pre-operation state, still internally consistent: the save
        # never published.  Nothing to undo (atomic file writes).
        journal.abort(record.seq, "save", record.name, recovered=True)
        report.aborted += 1
        report.actions.append(f"aborted torn save of {record.name!r}")
        return
    # The file matches neither the journaled payload nor its own
    # sidecar — a state the journal cannot explain.  Preserve it.
    generation = read_generation(directory / GENERATION_NAME)
    quarantine_move(directory, path, generation)
    generation = bump_generation(directory / GENERATION_NAME)
    journal.abort(record.seq, "save", record.name, recovered=True)
    report.quarantined += 1
    report.actions.append(
        f"quarantined unexplainable state of {record.name!r}"
    )


def _recover_drop(
    directory: Path, journal: Journal, record: JournalRecord,
    report: RecoveryReport,
) -> None:
    """Resolve a torn drop by completing it (roll forward)."""
    path = _instance_path(directory, record.name)
    sidecar = checksum_sidecar(path)
    path.unlink(missing_ok=True)
    sidecar.unlink(missing_ok=True)
    generation = bump_generation(directory / GENERATION_NAME)
    journal.commit(record.seq, "drop", record.name, generation, recovered=True)
    report.rolled_forward += 1
    report.actions.append(f"rolled forward torn drop of {record.name!r}")


def _recover_quarantine(
    directory: Path, journal: Journal, record: JournalRecord,
    report: RecoveryReport,
) -> None:
    """Resolve a torn quarantine by completing the move."""
    path = _instance_path(directory, record.name)
    sidecar = checksum_sidecar(path)
    generation = read_generation(directory / GENERATION_NAME)
    if path.exists():
        quarantine_move(directory, path, generation)
    elif sidecar.exists():
        # Data already moved, sidecar left behind: move it next to the
        # most recent quarantined copy if one exists, else drop it.
        quarantine = directory / QUARANTINE_DIR
        quarantine.mkdir(parents=True, exist_ok=True)
        destination = quarantine_destination(
            quarantine, path.name, generation
        )
        os.replace(sidecar, checksum_sidecar(destination))
    generation = bump_generation(directory / GENERATION_NAME)
    journal.commit(
        record.seq, "quarantine", record.name, generation, recovered=True
    )
    report.rolled_forward += 1
    report.quarantined += 1
    report.actions.append(
        f"rolled forward torn quarantine of {record.name!r}"
    )


__all__ = [
    "COMPACT_THRESHOLD",
    "INSTANCE_SUFFIX",
    "JOURNAL_NAME",
    "Journal",
    "JournalRecord",
    "QUARANTINE_DIR",
    "RecoveryReport",
    "append_checked",
    "quarantine_destination",
    "quarantine_move",
    "quarantined_names",
    "read_checked",
    "record_crc",
    "recover_directory",
    "rewrite_checked",
]
