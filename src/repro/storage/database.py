"""A simple named-instance database with directory-backed persistence.

The paper's system stores probabilistic instances and runs algebra
operations that produce new instances; this module provides the catalog
around that: named instances in memory, persisted one-file-per-instance
under a directory (the JSON codec's format), with the usual open/save
/drop/list operations.  The PXQL interpreter executes against one of
these databases.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

from repro.core.instance import ProbabilisticInstance
from repro.errors import PXMLError
from repro.io.json_codec import read_instance, write_instance


class DatabaseError(PXMLError):
    """Raised for catalog problems: unknown names, clashes, bad dirs."""


_SUFFIX = ".pxml.json"


class Database:
    """A catalog of named probabilistic instances.

    Args:
        directory: optional backing directory.  When given, instances
            already stored there are listed lazily (loaded on first use)
            and :meth:`save` / :meth:`save_all` write back to it.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._instances: dict[str, ProbabilisticInstance] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def register(
        self, name: str, instance: ProbabilisticInstance, replace: bool = False
    ) -> None:
        """Add an instance under ``name``; refuses clashes unless ``replace``."""
        if not replace and name in self._instances:
            raise DatabaseError(f"instance {name!r} already exists")
        self._instances[name] = instance

    def get(self, name: str) -> ProbabilisticInstance:
        """Look up an instance, loading from the backing directory if needed."""
        if name in self._instances:
            return self._instances[name]
        if self._directory is not None:
            path = self._directory / f"{name}{_SUFFIX}"
            if path.exists():
                instance = read_instance(path)
                self._instances[name] = instance
                return instance
        raise DatabaseError(f"unknown instance: {name!r}")

    def drop(self, name: str) -> None:
        """Remove an instance from the catalog (and its file, if backed)."""
        found = self._instances.pop(name, None) is not None
        if self._directory is not None:
            path = self._directory / f"{name}{_SUFFIX}"
            if path.exists():
                path.unlink()
                found = True
        if not found:
            raise DatabaseError(f"unknown instance: {name!r}")

    def names(self) -> list[str]:
        """All instance names (in-memory plus on-disk)."""
        names = set(self._instances)
        if self._directory is not None:
            for path in self._directory.glob(f"*{_SUFFIX}"):
                names.add(path.name[: -len(_SUFFIX)])
        return sorted(names)

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __len__(self) -> int:
        return len(self.names())

    def items(self) -> Iterator[tuple[str, ProbabilisticInstance]]:
        """Iterate ``(name, instance)``, loading lazily."""
        for name in self.names():
            yield name, self.get(name)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, name: str) -> Path:
        """Persist one instance; requires a backing directory."""
        if self._directory is None:
            raise DatabaseError("database has no backing directory")
        path = self._directory / f"{name}{_SUFFIX}"
        write_instance(self.get(name), path)
        return path

    def save_all(self) -> list[Path]:
        """Persist every in-memory instance."""
        return [self.save(name) for name in sorted(self._instances)]

    def load_file(self, name: str, path: str | Path) -> ProbabilisticInstance:
        """Load an instance from an arbitrary file and register it."""
        instance = read_instance(path)
        self.register(name, instance, replace=True)
        return instance

    def __repr__(self) -> str:
        backing = str(self._directory) if self._directory else "in-memory"
        return f"Database({backing}, {len(self)} instances)"
