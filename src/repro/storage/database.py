"""A simple named-instance database with directory-backed persistence.

The paper's system stores probabilistic instances and runs algebra
operations that produce new instances; this module provides the catalog
around that: named instances in memory, persisted one-file-per-instance
under a directory (the JSON codec's format), with the usual open/save
/drop/list operations.  The PXQL interpreter executes against one of
these databases.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.core.instance import ProbabilisticInstance
from repro.errors import CodecError, FaultError, JournalError, LockError, PXMLError
from repro.io.json_codec import (
    checksum_sidecar,
    content_checksum,
    dumps,
    read_instance,
    write_payload,
)
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy, retry_call
from repro.storage.journal import (
    Journal,
    RecoveryReport,
    quarantine_move,
    quarantined_names,
    recover_directory,
)
from repro.storage.locking import (
    CATALOG_LOCK_NAME,
    GENERATION_NAME,
    FileLock,
    bump_generation,
    read_generation,
    shared_lock,
)


class DatabaseError(PXMLError):
    """Raised for catalog problems: unknown names, clashes, bad dirs,
    vanished files, and (depending on policy) corrupt instance files."""


_SUFFIX = ".pxml.json"

#: Subdirectory corrupt instance files are moved into under the
#: ``on_corrupt="quarantine"`` policy.
QUARANTINE_DIR = "quarantine"

#: Default retry behavior around catalog disk I/O.
DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay_s=0.005, max_delay_s=0.1)

_FORBIDDEN_NAME_PARTS = ("/", "\\", "..")


def _validate_name(name: str) -> str:
    """Reject catalog names that could escape the backing directory.

    Names become file names (``<name>.pxml.json``) under the backing
    directory, so path separators and ``..`` segments are refused before
    any :class:`~pathlib.Path` is built from them.
    """
    if not name or name in (".", ".."):
        raise DatabaseError(f"invalid instance name: {name!r}")
    for part in _FORBIDDEN_NAME_PARTS:
        if part in name:
            raise DatabaseError(
                f"invalid instance name {name!r}: must not contain {part!r}"
            )
    return name


_VALIDATE_MODES = (None, "lint")
_CORRUPT_MODES = ("raise", "quarantine")


class Database:
    """A catalog of named probabilistic instances.

    Args:
        directory: optional backing directory.  When given, instances
            already stored there are listed lazily (loaded on first use)
            and :meth:`save` / :meth:`save_all` write back to it.
        validate: admission policy for instances entering the catalog
            (:meth:`register`, :meth:`load_file`, lazy directory loads,
            :meth:`reload`).  ``None`` (default) admits anything;
            ``"lint"`` runs the static model pass
            (:func:`repro.check.model.lint_instance`) and refuses
            instances with error-severity findings.
        on_corrupt: what to do when an instance file fails to decode or
            fails its checksum.  ``"raise"`` (default) raises
            :class:`DatabaseError` and leaves the file in place;
            ``"quarantine"`` moves the file (and its sidecar) into the
            ``quarantine/`` subdirectory — so one bad file can never
            poison the rest of the catalog — then raises
            :class:`DatabaseError` for that name only.  Either way the
            error is typed; raw decode exceptions never escape.
        retry: retry-with-backoff policy around catalog disk I/O
            (transient ``OSError`` s); defaults to :data:`DEFAULT_RETRY`.
        retry_sleep: the sleep function backoff uses (injectable for
            tests).

    Every name carries a monotonically increasing *version*: registering
    (or re-registering, lazily loading, touching) an instance assigns the
    next value of a database-wide counter.  The engine's caches key on
    these versions, so any mutation of the catalog invalidates dependent
    cached results implicitly.

    **Concurrency.**  A :class:`Database` is thread-safe: the in-memory
    catalog (instances, versions, counter) lives under one internal
    lock, held only for dict operations — never across disk I/O.  When
    backed by a directory it is also *cross-process* safe: every
    mutating disk operation (``save``, ``drop``, quarantine moves) runs
    under an ``fcntl`` advisory lock file (``catalog.lock``, see
    :class:`repro.storage.locking.FileLock`) and bumps the atomic
    ``catalog.generation`` counter, so two databases on one directory
    can never interleave a save with a drop, and each can detect that
    the other changed the catalog (:meth:`generation`).  Reads take no
    file lock — PR 4's atomic writes plus checksums make a concurrent
    read see either the old or the new instance, never a torn one.
    Lock ordering is *file lock before memory lock*; the memory lock is
    never held while acquiring the file lock, so the pair cannot
    deadlock.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        validate: str | None = None,
        on_corrupt: str = "raise",
        retry: RetryPolicy | None = None,
        retry_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if validate not in _VALIDATE_MODES:
            raise DatabaseError(
                f"unknown validate mode {validate!r}; "
                f"choose one of {_VALIDATE_MODES}"
            )
        if on_corrupt not in _CORRUPT_MODES:
            raise DatabaseError(
                f"unknown on_corrupt mode {on_corrupt!r}; "
                f"choose one of {_CORRUPT_MODES}"
            )
        self._instances: dict[str, ProbabilisticInstance] = {}
        self._versions: dict[str, int] = {}
        self._version_counter = 0
        self._validate = validate
        self._on_corrupt = on_corrupt
        self._retry = retry if retry is not None else DEFAULT_RETRY
        self._retry_sleep = retry_sleep
        self._lock = threading.RLock()
        self._dirty: set[str] = set()
        self._directory = Path(directory) if directory is not None else None
        self._file_lock: FileLock | None = None
        self._generation_path: Path | None = None
        self._journal: Journal | None = None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            # One lock object per directory process-wide: independent
            # flock descriptors on the same path contend even within a
            # process, so two Databases sharing a directory must share
            # the reentrant lock instead of serializing via the kernel.
            self._file_lock = shared_lock(self._directory / CATALOG_LOCK_NAME)
            self._generation_path = self._directory / GENERATION_NAME
            self._journal = Journal(self._directory)
            self.recover()

    @property
    def directory(self) -> Path | None:
        """The backing directory, or ``None`` for an in-memory catalog."""
        return self._directory

    @property
    def journal(self) -> Journal | None:
        """The catalog's write-ahead journal (``None`` when unbacked)."""
        return self._journal

    def recover(self) -> RecoveryReport:
        """Replay the write-ahead journal to a consistent on-disk state.

        Runs automatically when a directory-backed database opens; safe
        (and idempotent) to call again at any time — e.g. after another
        process crashed mid-operation on the shared directory.  Torn
        saves whose payload fully landed are rolled forward (sidecar
        recomputed from the journaled checksum), torn drops and
        quarantines are completed, cleanly-unfinished operations are
        aborted (the atomic per-file writes guarantee the old state is
        intact), and the generation counter is advanced to the
        journal's committed high-water mark so it stays monotone across
        crashes.  Returns the report of what was done (an all-zero
        report on a clean catalog).
        """
        if self._directory is None or self._journal is None:
            return RecoveryReport()
        assert self._file_lock is not None
        try:
            with self._file_lock:
                return recover_directory(self._directory, self._journal)
        except (OSError, JournalError) as exc:
            raise DatabaseError(
                f"cannot recover catalog {self._directory}: {exc}"
            ) from exc

    def _admit(self, name: str, instance: ProbabilisticInstance) -> None:
        """Apply the admission policy before an instance enters the catalog."""
        if self._validate != "lint":
            return
        from repro.check.model import has_errors, lint_instance

        issues = lint_instance(instance)
        if has_errors(issues):
            problems = "\n".join(
                str(issue) for issue in issues if issue.severity == "error"
            )
            raise DatabaseError(
                f"instance {name!r} rejected by lint validation:\n{problems}"
            )

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def _next_version(self, name: str) -> int:
        """Assign the next catalog version (callers hold ``self._lock``)."""
        self._version_counter += 1
        self._versions[name] = self._version_counter
        current_tracer().event(
            "db.version", name=name, version=self._version_counter
        )
        current_registry().counter("db.version_bumps").inc()
        return self._version_counter

    def _bump_generation(self) -> int:
        """Advance the on-disk generation (callers hold the file lock);
        returns the new value (0 when unbacked)."""
        if self._generation_path is not None:
            return bump_generation(self._generation_path)
        return 0

    def generation(self) -> int:
        """The catalog's on-disk generation counter (0 when unbacked).

        Bumped under the cross-process lock by every mutating disk
        operation — save, drop, quarantine — by *any* database instance
        on this directory, so a changed value means the catalog moved
        underneath you.
        """
        if self._generation_path is None:
            return 0
        return read_generation(self._generation_path)

    def _read(self, path: Path, name: str) -> ProbabilisticInstance:
        """Load one instance file inside a ``db.load`` span.

        Transient ``OSError`` s are retried with backoff; a racing
        deletion (``FileNotFoundError`` after the existence check — the
        TOCTOU window) and exhausted retries surface as
        :class:`DatabaseError` naming the instance, never as a raw OS
        exception.  Corrupt files follow the ``on_corrupt`` policy.
        """
        with current_tracer().span("db.load", name=name, path=str(path)):
            try:
                instance = retry_call(
                    lambda: read_instance(path),
                    self._retry,
                    retry_on=(OSError,),
                    give_up_on=(FileNotFoundError,),
                    sleep=self._retry_sleep,
                    site=f"db.load:{name}",
                )
            except CodecError as exc:
                raise self._corrupt_error(name, path, exc) from exc
            except FileNotFoundError as exc:
                raise DatabaseError(
                    f"unknown instance: {name!r} (file {path} vanished)"
                ) from exc
            except OSError as exc:
                raise DatabaseError(
                    f"cannot load instance {name!r} from {path}: {exc}"
                ) from exc
        current_registry().counter("db.loads").inc()
        return instance

    def _corrupt_error(
        self, name: str, path: Path, exc: CodecError
    ) -> DatabaseError:
        """Apply the ``on_corrupt`` policy; returns the error to raise."""
        current_tracer().event("db.corrupt", name=name, path=str(path))
        if self._on_corrupt != "quarantine" or self._directory is None:
            return DatabaseError(f"instance {name!r} is corrupt: {exc}")
        try:
            assert self._file_lock is not None
            with self._file_lock:
                seq = None
                if self._journal is not None:
                    seq = self._journal.begin("quarantine", name)
                try:
                    destination = quarantine_move(
                        self._directory, path, self.generation()
                    )
                except (OSError, LockError, FaultError):
                    if seq is not None and self._journal is not None:
                        self._journal.abort(seq, "quarantine", name)
                    raise
                generation = self._bump_generation()
                if seq is not None and self._journal is not None:
                    self._journal.commit(seq, "quarantine", name, generation)
        except (OSError, LockError, FaultError, JournalError) as move_error:
            return DatabaseError(
                f"instance {name!r} is corrupt and could not be "
                f"quarantined ({move_error}): {exc}"
            )
        with self._lock:
            self._instances.pop(name, None)
            self._versions.pop(name, None)
            self._dirty.discard(name)
        current_registry().counter("db.corrupt_quarantined").inc()
        return DatabaseError(
            f"instance {name!r} was corrupt and has been quarantined "
            f"to {destination}: {exc}"
        )

    def quarantined(self) -> list[str]:
        """Names of instances with files in the quarantine directory.

        Quarantined files carry a generation + dedup suffix
        (``name.pxml.json.g7``, ``name.pxml.json.g7-2``) so repeated
        quarantines of one name never overwrite earlier evidence; this
        lists the distinct instance *names*.
        """
        if self._directory is None:
            return []
        return quarantined_names(self._directory)

    def version(self, name: str) -> int:
        """The current version of ``name`` (assigning one if on disk only).

        Raises :class:`DatabaseError` for names the catalog does not
        know at all.
        """
        _validate_name(name)
        with self._lock:
            if name in self._versions:
                return self._versions[name]
            if name in self._instances:
                return self._next_version(name)
        if self._on_disk(name):
            with self._lock:
                if name in self._versions:
                    return self._versions[name]
                return self._next_version(name)
        raise DatabaseError(f"unknown instance: {name!r}")

    def cache_token(self, name: str) -> tuple[int, int]:
        """``(version, generation)`` — the invalidation key for ``name``.

        The pair every versioned derived structure (dataguides, columnar
        index snapshots, engine caches) should key on: ``version``
        changes on in-process re-registration, ``generation`` when any
        process mutates the shared catalog directory.
        """
        return (self.version(name), self.generation())

    def sidecar_checksum(self, name: str) -> str | None:
        """The on-disk content checksum recorded for ``name``.

        Reads the ``<name>.pxml.json.sha256`` sidecar; ``None`` when the
        catalog is unbacked or the sidecar is missing/unreadable.  This
        is the *cross-process stable* identity of an instance's bytes:
        in-process version counters restart at zero in every process,
        but the sidecar digest is the same for every process looking at
        the same file, which is what the persistent result cache keys
        on.
        """
        if self._directory is None:
            return None
        _validate_name(name)
        sidecar = checksum_sidecar(self._directory / f"{name}{_SUFFIX}")
        try:
            text = sidecar.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        return text or None

    def clean_on_disk(self, name: str) -> bool:
        """Whether ``name``'s in-memory copy is known to match its file.

        True only when the catalog is directory-backed, the name has no
        unsaved in-memory mutations (register/touch without a save), and
        both the data file and its checksum sidecar exist.  The
        persistent result cache only engages for plans whose every input
        satisfies this — otherwise an in-memory-divergent instance could
        be answered from another process's on-disk state.
        """
        if self._directory is None:
            return False
        _validate_name(name)
        with self._lock:
            if name in self._dirty:
                return False
        path = self._directory / f"{name}{_SUFFIX}"
        return path.exists() and checksum_sidecar(path).exists()

    def touch(self, name: str) -> int:
        """Bump ``name``'s version after an in-place mutation.

        Returns the new version.  Use this when an instance obtained via
        :meth:`get` was modified directly, so engine caches keyed on the
        old version stop matching.
        """
        fault_point("lock.db.mutate")
        with self._lock:
            if name in self._instances:
                self._dirty.add(name)
                return self._next_version(name)
        if not self._on_disk(name):
            raise DatabaseError(f"unknown instance: {name!r}")
        with self._lock:
            self._dirty.add(name)
            return self._next_version(name)

    def _on_disk(self, name: str) -> bool:
        if self._directory is None:
            return False
        return (self._directory / f"{name}{_SUFFIX}").exists()

    def register(
        self, name: str, instance: ProbabilisticInstance, replace: bool = False
    ) -> None:
        """Add an instance under ``name``; refuses clashes unless ``replace``."""
        _validate_name(name)
        self._admit(name, instance)
        fault_point("lock.db.mutate")
        with self._lock:
            if not replace and name in self._instances:
                raise DatabaseError(f"instance {name!r} already exists")
            self._instances[name] = instance
            self._next_version(name)
            self._dirty.add(name)
        current_registry().counter("db.registers").inc()

    def get(self, name: str) -> ProbabilisticInstance:
        """Look up an instance, loading from the backing directory if needed.

        The lazy load happens *outside* the memory lock (I/O never runs
        under it); when two threads race the load, one insertion wins
        and both return the same object.
        """
        with self._lock:
            if name in self._instances:
                return self._instances[name]
        _validate_name(name)
        if self._directory is not None:
            path = self._directory / f"{name}{_SUFFIX}"
            if path.exists():
                instance = self._read(path, name)
                self._admit(name, instance)
                with self._lock:
                    existing = self._instances.get(name)
                    if existing is not None:
                        return existing
                    self._instances[name] = instance
                    self._dirty.discard(name)  # fresh from disk: in sync
                    if name not in self._versions:
                        self._next_version(name)
                return instance
        raise DatabaseError(f"unknown instance: {name!r}")

    def reload(self, name: str) -> ProbabilisticInstance:
        """Re-read an instance from the backing directory, replacing the
        in-memory copy and bumping its version.

        Useful after the file was edited externally; the admission
        policy (``validate="lint"``) applies to the fresh copy.
        """
        _validate_name(name)
        if self._directory is None:
            raise DatabaseError("database has no backing directory")
        path = self._directory / f"{name}{_SUFFIX}"
        if not path.exists():
            raise DatabaseError(f"unknown instance: {name!r}")
        instance = self._read(path, name)
        self._admit(name, instance)
        with self._lock:
            self._instances[name] = instance
            self._dirty.discard(name)  # fresh from disk: in sync
            self._next_version(name)
        return instance

    def drop(self, name: str) -> None:
        """Remove an instance from the catalog (and its file, if backed).

        The file is unlinked *before* the in-memory entry and version
        are popped: if the unlink fails, the catalog is left exactly as
        it was (instance still resolvable, version intact) and a
        :class:`DatabaseError` reports why — never a half-dropped state
        where memory forgot a name whose file survived.
        """
        _validate_name(name)
        fault_point("lock.db.mutate")
        with self._lock:
            found = name in self._instances
        if self._directory is not None:
            assert self._file_lock is not None
            with self._file_lock:
                path = self._directory / f"{name}{_SUFFIX}"
                if path.exists():
                    seq = None
                    if self._journal is not None:
                        seq = self._journal.begin("drop", name)
                    try:
                        fault_point("db.drop.unlink")
                        path.unlink()
                    except FileNotFoundError:
                        pass  # racing deletion: the file is gone either way
                    except OSError as exc:
                        # Pre-state intact (the unlink was the first
                        # destructive step): record a clean abort so
                        # replay never completes a drop the caller was
                        # told had failed.
                        if seq is not None and self._journal is not None:
                            self._journal.abort(seq, "drop", name)
                        raise DatabaseError(
                            f"cannot drop instance {name!r}: {exc}"
                        ) from exc
                    found = True
                    try:
                        fault_point("db.drop.sidecar")
                        checksum_sidecar(path).unlink(missing_ok=True)
                    except OSError:
                        pass  # best-effort: a stale sidecar is harmless
                    generation = self._bump_generation()
                    if seq is not None and self._journal is not None:
                        self._journal.commit(seq, "drop", name, generation)
        if not found:
            raise DatabaseError(f"unknown instance: {name!r}")
        with self._lock:
            self._instances.pop(name, None)
            self._versions.pop(name, None)
            self._dirty.discard(name)
        current_registry().counter("db.drops").inc()

    def names(self) -> list[str]:
        """All instance names (in-memory plus on-disk)."""
        with self._lock:
            names = set(self._instances)
        if self._directory is not None:
            for path in self._directory.glob(f"*{_SUFFIX}"):
                names.add(path.name[: -len(_SUFFIX)])
        return sorted(names)

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __len__(self) -> int:
        return len(self.names())

    def items(self) -> Iterator[tuple[str, ProbabilisticInstance]]:
        """Iterate ``(name, instance)``, loading lazily.

        Under ``on_corrupt="quarantine"``, names whose files turn out
        corrupt are quarantined and *skipped*, so one bad file never
        aborts iteration over the rest of the catalog.  Iteration runs
        over a *snapshot* of the names: concurrent registers and drops
        never raise "changed size during iteration", and a name dropped
        mid-iteration is silently skipped rather than an error.
        """
        for name in self.names():
            try:
                yield name, self.get(name)
            except DatabaseError:
                if self._on_corrupt == "quarantine":
                    continue
                with self._lock:
                    vanished = name not in self._instances
                if vanished and not self._on_disk(name):
                    continue  # dropped concurrently: not this caller's problem
                raise

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, name: str) -> Path:
        """Persist one instance; requires a backing directory.

        The write is atomic (tmp file + fsync + rename, see
        :func:`repro.io.json_codec.write_payload`) and *journaled*: a
        begin record carrying the payload checksum is fsynced to the
        write-ahead journal before the first disk step and a commit
        record after the generation bump, so a crash anywhere in the
        sequence is rolled forward or aborted on the next open
        (:meth:`recover`).  Transient ``OSError`` s are retried with
        backoff, and exhausted retries raise :class:`DatabaseError`
        naming the instance.  The write runs under the cross-process
        catalog lock and bumps the generation counter.
        """
        _validate_name(name)
        if self._directory is None:
            raise DatabaseError("database has no backing directory")
        fault_point("lock.db.mutate")
        path = self._directory / f"{name}{_SUFFIX}"
        assert self._file_lock is not None
        with self._file_lock:
            instance = self.get(name)
            with current_tracer().span("db.save", name=name, path=str(path)):
                # Serialize (and checksum) *before* any disk step: the
                # journal's begin record carries the checksum of the
                # exact bytes about to be published, which is what lets
                # replay tell a completed publication from a torn one.
                payload = dumps(instance)
                corrupted = fault_point("codec.write.payload", payload)
                payload = corrupted if corrupted is not None else payload
                seq = None
                if self._journal is not None:
                    seq = self._journal.begin(
                        "save", name, checksum=content_checksum(payload)
                    )
                try:
                    retry_call(
                        lambda: write_payload(payload, path),
                        self._retry,
                        retry_on=(OSError,),
                        sleep=self._retry_sleep,
                        site=f"db.save:{name}",
                    )
                except OSError as exc:
                    # Each file step is atomic, so a clean failure left
                    # either the old state or a mismatched sidecar that
                    # read-time verification catches; either way the
                    # operation did not happen — record the abort.
                    if seq is not None and self._journal is not None:
                        self._journal.abort(seq, "save", name)
                    raise DatabaseError(
                        f"cannot save instance {name!r} to {path}: {exc}"
                    ) from exc
                generation = self._bump_generation()
                if seq is not None and self._journal is not None:
                    self._journal.commit(seq, "save", name, generation)
        with self._lock:
            self._dirty.discard(name)
        current_registry().counter("db.saves").inc()
        return path

    def save_all(self) -> list[Path]:
        """Persist every in-memory instance.

        Operates on a *snapshot* of the in-memory names: concurrent
        registers/drops never make iteration blow up, a name dropped
        after the snapshot is skipped, and a save failure leaves the
        already-written files in place (each individual write is still
        atomic).
        """
        with self._lock:
            snapshot = sorted(self._instances)
        paths: list[Path] = []
        for name in snapshot:
            try:
                paths.append(self.save(name))
            except DatabaseError:
                with self._lock:
                    vanished = name not in self._instances
                if vanished:
                    continue  # dropped concurrently after the snapshot
                raise
        return paths

    def load_file(self, name: str, path: str | Path) -> ProbabilisticInstance:
        """Load an instance from an arbitrary file and register it.

        The admission policy (``validate="lint"``) applies via
        :meth:`register`.
        """
        instance = self._read(Path(path), name)
        self.register(name, instance, replace=True)
        return instance

    def __repr__(self) -> str:
        backing = str(self._directory) if self._directory else "in-memory"
        return f"Database({backing}, {len(self)} instances)"
