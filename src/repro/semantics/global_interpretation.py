"""Global interpretations (Definition 4.2) and Theorem 1 checking.

A :class:`GlobalInterpretation` is an explicit distribution over
semistructured worlds.  It serves as the *reference semantics*: the
algebra's global definitions (5.3, 5.6, 5.7) are stated in terms of it,
and every efficient algorithm in the library is tested against it.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator, Mapping

from repro.core.distributions import PROBABILITY_TOLERANCE
from repro.core.instance import ProbabilisticInstance
from repro.errors import DistributionError, EmptyResultError
from repro.semantics.compatible import domain_distribution
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.paths import PathExpression, evaluate_path


class GlobalInterpretation:
    """An explicit ``{world: probability}`` distribution."""

    __slots__ = ("_dist",)

    def __init__(self, distribution: Mapping[SemistructuredInstance, float]) -> None:
        self._dist = {
            world: float(p) for world, p in distribution.items() if p != 0.0
        }

    @classmethod
    def from_local(cls, pi: ProbabilisticInstance) -> "GlobalInterpretation":
        """``P_p`` induced by a probabilistic instance (Definition 4.4)."""
        return cls(domain_distribution(pi))

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def prob(self, world: SemistructuredInstance) -> float:
        """``P(S)``; zero for worlds outside the support."""
        return self._dist.get(world, 0.0)

    def support(self) -> Iterator[tuple[SemistructuredInstance, float]]:
        """Iterate positive-probability worlds."""
        return iter(self._dist.items())

    def worlds(self) -> list[SemistructuredInstance]:
        """The positive-probability worlds."""
        return list(self._dist)

    def __len__(self) -> int:
        return len(self._dist)

    def total_mass(self) -> float:
        """``sum_S P(S)`` — must be 1 for a legal global interpretation."""
        return sum(self._dist.values())

    def validate(self) -> None:
        """Theorem 1 check: the masses must sum to one."""
        total = self.total_mass()
        if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
            raise DistributionError(
                f"global interpretation sums to {total!r}, expected 1"
            )

    # ------------------------------------------------------------------
    # Event probabilities (brute-force references for the query engine)
    # ------------------------------------------------------------------
    def event_probability(
        self, event: Callable[[SemistructuredInstance], bool]
    ) -> float:
        """``P({S | event(S)})``."""
        return sum(p for world, p in self._dist.items() if event(world))

    def prob_object_exists(self, oid: Oid) -> float:
        """``P(o in S)``."""
        return self.event_probability(lambda world: oid in world)

    def prob_object_at_path(self, path: PathExpression, oid: Oid) -> float:
        """``P(o in p)`` — the probabilistic point query, by enumeration."""
        return self.event_probability(
            lambda world: oid in evaluate_path(world.graph, path)
        )

    def prob_path_nonempty(self, path: PathExpression) -> float:
        """``P(exists o: o in p)`` — the existential query, by enumeration."""
        return self.event_probability(
            lambda world: bool(evaluate_path(world.graph, path))
        )

    def condition(
        self, event: Callable[[SemistructuredInstance], bool]
    ) -> "GlobalInterpretation":
        """Bayesian conditioning on an event (the algebra's Definition 5.6)."""
        kept = {world: p for world, p in self._dist.items() if event(world)}
        mass = sum(kept.values())
        if mass <= 0.0:
            raise EmptyResultError("conditioning event has probability zero")
        return GlobalInterpretation({world: p / mass for world, p in kept.items()})

    def map_worlds(
        self,
        transform: Callable[[SemistructuredInstance], SemistructuredInstance],
    ) -> "GlobalInterpretation":
        """Push the distribution through a world transformation.

        Identical images have their probabilities summed — the grouping
        step of Definition 5.3.
        """
        image: dict[SemistructuredInstance, float] = {}
        for world, probability in self._dist.items():
            new_world = transform(world)
            image[new_world] = image.get(new_world, 0.0) + probability
        return GlobalInterpretation(image)

    def is_close_to(
        self, other: "GlobalInterpretation", tolerance: float = 1e-9
    ) -> bool:
        """Whether two distributions agree within ``tolerance`` per world."""
        worlds = set(self._dist) | set(other._dist)
        return all(
            math.isclose(self.prob(w), other.prob(w), abs_tol=tolerance)
            for w in worlds
        )

    def __repr__(self) -> str:
        return f"GlobalInterpretation({len(self._dist)} worlds)"


def verify_theorem1(pi: ProbabilisticInstance) -> GlobalInterpretation:
    """Build ``P_p`` and assert it is a legal global interpretation.

    Returns the interpretation so callers can keep using it.  Raises
    :class:`repro.errors.DistributionError` when Theorem 1's conclusion
    fails (which indicates an incoherent local interpretation).
    """
    interpretation = GlobalInterpretation.from_local(pi)
    interpretation.validate()
    return interpretation
