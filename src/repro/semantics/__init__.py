"""Probabilistic semantics (Section 4): worlds, global interpretations,
Theorem 1 coherence checking and Theorem 2 factorization."""

from repro.semantics.compatible import (
    count_worlds,
    domain_distribution,
    is_compatible,
    iter_compatible_instances,
    world_probability,
)
from repro.semantics.factorization import factorize
from repro.semantics.sampling import (
    Estimate,
    WorldSampler,
    estimate_existential_query,
    estimate_point_query,
    estimate_probability,
)
from repro.semantics.global_interpretation import GlobalInterpretation, verify_theorem1
from repro.semantics.map_world import map_world, top_k_worlds

__all__ = [
    "Estimate",
    "GlobalInterpretation",
    "WorldSampler",
    "count_worlds",
    "domain_distribution",
    "estimate_existential_query",
    "estimate_point_query",
    "estimate_probability",
    "factorize",
    "is_compatible",
    "map_world",
    "iter_compatible_instances",
    "top_k_worlds",
    "verify_theorem1",
    "world_probability",
]
