"""Theorem 2: factoring a global interpretation into a local one.

Given a weak instance ``W`` and a global interpretation ``P`` over
``Domain(W)`` that *satisfies* ``W`` (Definition 4.5 — each object's
child-set choice is independent of its non-descendants given the object
occurs), there is a local interpretation ``p`` with ``P_p = P``.

The construction is the conditional-frequency estimate::

    p(o)(c) = P(c_S(o) = c | o in S)
            = sum_{S : o in S, c_S(o) = c} P(S) / sum_{S : o in S} P(S)

and analogously over leaf values.  Objects that never occur get a uniform
local function (their choice is irrelevant to ``P_p``).  When ``check`` is
true we rebuild ``P_p`` from the recovered local interpretation and verify
it reproduces ``P`` — if it does not, ``P`` did not satisfy ``W`` and
:class:`repro.errors.NotFactorizableError` is raised.
"""

from __future__ import annotations

from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import NotFactorizableError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.types import Value


def factorize(
    weak: WeakInstance,
    interpretation: GlobalInterpretation,
    check: bool = True,
    tolerance: float = 1e-9,
) -> ProbabilisticInstance:
    """Recover a probabilistic instance whose ``P_p`` equals ``interpretation``.

    Args:
        weak: the weak instance whose structure the distribution follows.
        interpretation: a distribution over semistructured worlds.
        check: verify the round-trip ``P_p == P`` and raise
            :class:`NotFactorizableError` on mismatch.
        tolerance: per-world tolerance for the round-trip check.
    """
    local = LocalInterpretation()
    for oid in sorted(weak.non_leaves()):
        local.set_opf(oid, _recover_opf(weak, interpretation, oid))
    for oid in sorted(weak.leaves()):
        vpf = _recover_vpf(weak, interpretation, oid)
        if vpf is not None:
            local.set_vpf(oid, vpf)
    recovered = ProbabilisticInstance(weak, local)
    if check:
        rebuilt = GlobalInterpretation.from_local(recovered)
        if not rebuilt.is_close_to(interpretation, tolerance):
            raise NotFactorizableError(
                "the global interpretation does not satisfy the weak instance: "
                "P_p of the recovered local interpretation differs from P"
            )
    return recovered


def _recover_opf(
    weak: WeakInstance, interpretation: GlobalInterpretation, oid: Oid
) -> TabularOPF:
    mass_present = 0.0
    mass_by_choice: dict[ChildSet, float] = {}
    for world, probability in interpretation.support():
        if oid not in world:
            continue
        mass_present += probability
        choice = world.children(oid)
        mass_by_choice[choice] = mass_by_choice.get(choice, 0.0) + probability
    if mass_present <= 0.0:
        return TabularOPF.uniform(weak.potential_child_sets(oid))
    return TabularOPF(
        {choice: mass / mass_present for choice, mass in mass_by_choice.items()}
    )


def _recover_vpf(
    weak: WeakInstance, interpretation: GlobalInterpretation, oid: Oid
) -> TabularVPF | None:
    mass_present = 0.0
    mass_by_value: dict[Value, float] = {}
    for world, probability in interpretation.support():
        if oid not in world:
            continue
        value = world.val(oid)
        if value is None:
            continue
        mass_present += probability
        mass_by_value[value] = mass_by_value.get(value, 0.0) + probability
    if mass_present <= 0.0:
        leaf_type = weak.tau(oid)
        if leaf_type is None:
            return None
        return TabularVPF.uniform(leaf_type.domain)
    return TabularVPF(
        {value: mass / mass_present for value, mass in mass_by_value.items()}
    )
