"""Most-probable-world (MAP) computation.

``P_p`` factorizes over objects, so on a tree-structured instance the
most probable compatible world is computable by a max-product dynamic
program: for each object, the best achievable probability of its subtree
given the object exists is

    best(o) = max_c  p(o)(c) * prod_{x in c} best(x)         (non-leaf)
    best(o) = max_v  p(o)(v)                                 (leaf)

and backtracking the argmaxes materializes the world.  On DAGs a shared
child's choice is counted once but its ``best`` factor would be
multiplied per parent, so the DP is unsound there — :func:`map_world`
falls back to exact enumeration (with a size guard).

:func:`top_k_worlds` returns the k most probable worlds (enumeration).
"""

from __future__ import annotations

from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.errors import SemanticsError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import Value


def map_world(
    pi: ProbabilisticInstance, max_enumeration: int = 200_000
) -> tuple[SemistructuredInstance, float]:
    """The most probable compatible world and its probability.

    Exact and linear-time (in interpretation entries) on trees; exact by
    enumeration on DAGs, guarded by ``max_enumeration`` worlds.
    """
    if pi.weak.graph().is_tree(pi.root):
        return _map_world_tree(pi)
    return _map_world_enumerate(pi, max_enumeration)


def _map_world_tree(
    pi: ProbabilisticInstance,
) -> tuple[SemistructuredInstance, float]:
    weak = pi.weak
    best: dict[Oid, float] = {}
    best_choice: dict[Oid, ChildSet] = {}
    best_value: dict[Oid, Value] = {}

    order = weak.graph().topological_order()
    if order is None:
        raise SemanticsError("cyclic weak instance")
    for oid in reversed(order):
        if weak.is_leaf(oid):
            vpf = pi.effective_vpf(oid)
            if vpf is None:
                best[oid] = 1.0
                continue
            value, probability = max(vpf.support(), key=lambda kv: kv[1])
            best[oid] = probability
            best_value[oid] = value
            continue
        opf = pi.opf(oid)
        if opf is None:
            raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
        best_score = -1.0
        chosen: ChildSet = frozenset()
        for child_set, probability in opf.support():
            score = probability
            for child in child_set:
                score *= best[child]
            if score > best_score:
                best_score = score
                chosen = child_set
        best[oid] = best_score
        best_choice[oid] = chosen

    world = SemistructuredInstance(pi.root)
    frontier = [pi.root]
    while frontier:
        oid = frontier.pop()
        if oid in best_value:
            leaf_type = weak.tau(oid)
            if leaf_type is not None:
                world.set_type(oid, leaf_type)
            world.set_value(oid, best_value[oid])
        for child in best_choice.get(oid, frozenset()):
            world.add_edge(oid, child, weak.label_of_child(oid, child))
            frontier.append(child)
    return world, best[pi.root]


def _map_world_enumerate(
    pi: ProbabilisticInstance, max_enumeration: int
) -> tuple[SemistructuredInstance, float]:
    from repro.semantics.compatible import iter_compatible_instances

    best_world: SemistructuredInstance | None = None
    best_probability = -1.0
    count = 0
    for world, probability in iter_compatible_instances(pi):
        count += 1
        if count > max_enumeration:
            raise SemanticsError(
                f"DAG MAP enumeration exceeded {max_enumeration} worlds; "
                "raise max_enumeration or use sampling"
            )
        if probability > best_probability:
            best_world = world
            best_probability = probability
    if best_world is None:
        raise SemanticsError("the instance has no compatible world")
    return best_world, best_probability


def top_k_worlds(
    pi: ProbabilisticInstance, k: int
) -> list[tuple[SemistructuredInstance, float]]:
    """The ``k`` most probable worlds (exact, by enumeration)."""
    if k <= 0:
        raise SemanticsError("k must be positive")
    interpretation = GlobalInterpretation.from_local(pi)
    ranked = sorted(interpretation.support(), key=lambda kv: -kv[1])
    return ranked[:k]
