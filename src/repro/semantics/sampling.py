"""Monte-Carlo world sampling from a probabilistic instance.

The product semantics of Definition 4.4 is generative: walk the weak
instance graph from the root, let each reached non-leaf draw a child set
from its OPF and each reached leaf draw a value from its VPF, and the
resulting world is distributed exactly as ``P_p``.  Forward sampling
therefore works on *any* acyclic instance (DAGs included) at any scale,
and gives unbiased estimators for event probabilities where exact
enumeration is impossible and the tree-only local algorithms do not
apply.

:class:`WorldSampler` draws worlds; :func:`estimate_probability` wraps it
with a standard-error report.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.errors import CyclicModelError, SemanticsError
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer
from repro.resilience.budget import current_budget
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import Value


class WorldSampler:
    """Draws compatible worlds distributed as ``P_p``."""

    def __init__(self, pi: ProbabilisticInstance, seed: int | None = None) -> None:
        self.pi = pi
        self._rng = random.Random(seed)
        order = pi.weak.graph().topological_order()
        if order is None:
            raise CyclicModelError("cannot sample from a cyclic weak instance")
        self._order = order
        self._parents: dict[Oid, list[Oid]] = {oid: [] for oid in order}
        for src, dst, _ in pi.weak.graph().edges():
            self._parents[dst].append(src)
        # Pre-extract OPF/VPF supports as parallel lists for rng.choices.
        self._opf_support: dict[Oid, tuple[list[ChildSet], list[float]]] = {}
        for oid, opf in pi.interpretation.opf_items():
            sets, weights = [], []
            for child_set, probability in opf.support():
                sets.append(child_set)
                weights.append(probability)
            self._opf_support[oid] = (sets, weights)
        self._vpf_support: dict[Oid, tuple[list[Value], list[float]]] = {}
        for oid in pi.weak.leaves():
            vpf = pi.effective_vpf(oid)
            if vpf is not None:
                values, weights = [], []
                for value, probability in vpf.support():
                    values.append(value)
                    weights.append(probability)
                self._vpf_support[oid] = (values, weights)

    def sample(self) -> SemistructuredInstance:
        """Draw one world."""
        weak = self.pi.weak
        rng = self._rng
        world = SemistructuredInstance(weak.root)
        included: set[Oid] = {weak.root}
        chosen: dict[Oid, ChildSet] = {}
        for oid in self._order:
            if oid != weak.root and not any(
                parent in chosen and oid in chosen[parent]
                for parent in self._parents[oid]
            ):
                continue
            included.add(oid)
            if weak.is_leaf(oid):
                support = self._vpf_support.get(oid)
                if support is not None:
                    (value,) = rng.choices(support[0], weights=support[1])
                    leaf_type = weak.tau(oid)
                    if leaf_type is not None:
                        world.set_type(oid, leaf_type)
                    world.set_value(oid, value)
                continue
            support = self._opf_support.get(oid)
            if support is None:
                raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
            (child_set,) = rng.choices(support[0], weights=support[1])
            chosen[oid] = child_set
            for child in child_set:
                world.add_edge(oid, child, weak.label_of_child(oid, child))
        return world

    def sample_many(self, count: int) -> list[SemistructuredInstance]:
        """Draw ``count`` worlds."""
        return [self.sample() for _ in range(count)]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo probability estimate.

    Attributes:
        probability: the sample mean.
        stderr: the standard error ``sqrt(p(1-p)/n)``.
        samples: the sample count.
    """

    probability: float
    stderr: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval, clamped to [0, 1]."""
        return (
            max(0.0, self.probability - z * self.stderr),
            min(1.0, self.probability + z * self.stderr),
        )

    def __str__(self) -> str:
        return f"{self.probability:.4f} ± {self.stderr:.4f} (n={self.samples})"


def estimate_probability(
    pi: ProbabilisticInstance,
    event: Callable[[SemistructuredInstance], bool],
    samples: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Estimate ``P(event)`` by forward sampling.

    Runs inside a ``sampling.estimate`` span on the ambient tracer and
    counts every drawn world in the ambient ``sampling.worlds_sampled``
    metric.  When an ambient :class:`repro.resilience.budget.Budget` is
    active, its deadline is checked cooperatively between drawn worlds
    (every :data:`_BUDGET_CHECK_EVERY` samples), so a runaway estimate
    stops with :class:`~repro.errors.BudgetExceeded` instead of running
    unbounded.
    """
    if samples <= 0:
        raise SemanticsError("need a positive sample count")
    budget = current_budget()
    drawn = 0
    with current_tracer().span("sampling.estimate", samples=samples) as span:
        sampler = WorldSampler(pi, seed)
        try:
            hits = 0
            for drawn in range(1, samples + 1):
                if budget is not None and drawn % _BUDGET_CHECK_EVERY == 1:
                    budget.check_deadline("sampling.estimate")
                if event(sampler.sample()):
                    hits += 1
        finally:
            current_registry().counter("sampling.worlds_sampled").inc(drawn)
        probability = hits / samples
        stderr = math.sqrt(probability * (1.0 - probability) / samples)
        span.attributes["probability"] = probability
    return Estimate(probability, stderr, samples)


#: How many worlds are drawn between cooperative deadline checks.
_BUDGET_CHECK_EVERY = 32


def estimate_point_query(
    pi: ProbabilisticInstance,
    path,
    oid: Oid,
    samples: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Monte-Carlo ``P(o in p)``."""
    from repro.semistructured.paths import PathExpression, evaluate_path

    if isinstance(path, str):
        path = PathExpression.parse(path)
    return estimate_probability(
        pi, lambda world: oid in evaluate_path(world.graph, path), samples, seed
    )


def estimate_existential_query(
    pi: ProbabilisticInstance,
    path,
    samples: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Monte-Carlo ``P(exists o: o in p)``."""
    from repro.semistructured.paths import PathExpression, evaluate_path

    if isinstance(path, str):
        path = PathExpression.parse(path)
    return estimate_probability(
        pi, lambda world: bool(evaluate_path(world.graph, path)), samples, seed
    )
