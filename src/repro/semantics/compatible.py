"""Compatible instances and ``Domain(W)`` enumeration (Definition 4.1).

A semistructured instance ``S`` is compatible with a weak instance ``W``
when it contains ``W``'s root, only uses ``W``'s objects, its edges follow
``lch`` with matching labels, each object's per-label child counts lie in
``card``, and leaves of ``W`` appearing in ``S`` keep their type with a
value in the domain.

Note on the paper's leaf clause: Definition 4.1 literally states "if o is
a leaf in S then o is also a leaf in W", but Figure 2 itself gives ``A1``
(a non-leaf of ``W``) a potential child set of probability 0.2 whose
choice makes ``A1`` a leaf of the compatible instance.  Following the
figure (and the journal version of PXML), we treat the clause as applying
to leaves of ``W`` only.

Enumeration walks the weak instance graph in topological order; each
reachable non-leaf picks a potential child set (weighted by its OPF) and
each reachable valued leaf picks a value (weighted by its VPF).  The
per-instance probability is the product of the choices — i.e. the global
interpretation ``P_p`` of Definition 4.4.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import CyclicModelError, SemanticsError
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import Value


def is_compatible(instance: SemistructuredInstance, weak: WeakInstance) -> bool:
    """Whether ``instance`` is compatible with ``weak`` (Definition 4.1)."""
    if instance.root != weak.root or weak.root not in instance:
        return False
    for oid in instance.objects:
        if oid not in weak:
            return False
        if weak.is_leaf(oid):
            if not instance.is_leaf(oid):
                return False
            weak_type = weak.tau(oid)
            inst_type = instance.tau(oid)
            if weak_type is not None:
                if inst_type != weak_type:
                    return False
                value = instance.val(oid)
                if value is not None and value not in weak_type:
                    return False
        else:
            counts: dict[str, int] = {}
            for child in instance.children(oid):
                label = instance.label(oid, child)
                if child not in weak.lch(oid, label):
                    return False
                counts[label] = counts.get(label, 0) + 1
            for label in weak.labels_of(oid):
                count = counts.pop(label, 0)
                if count not in weak.card(oid, label):
                    return False
            if counts:
                return False  # edges with labels W does not allow for oid
    # Rootedness: every object reachable from the root.
    return len(instance.graph.reachable_from(instance.root)) == len(instance)


def iter_compatible_instances(
    pi: ProbabilisticInstance,
) -> Iterator[tuple[SemistructuredInstance, float]]:
    """Enumerate ``Domain(I)`` with the probability ``P_p(S)`` of each world.

    Worlds are generated without duplication: the reachable objects'
    choices determine the instance uniquely, and unreachable objects make
    no choice (their OPF mass marginalizes to one).  Worlds of probability
    zero are skipped.

    This is exponential in the instance size and intended for the *global*
    reference semantics, tests and small examples; the efficient local
    algorithms of Section 6 never call it.
    """
    weak = pi.weak
    order = weak.graph().topological_order()
    if order is None:
        raise CyclicModelError("cannot enumerate worlds of a cyclic weak instance")
    parents: dict[Oid, list[Oid]] = {oid: [] for oid in order}
    for src, dst, _ in weak.graph().edges():
        parents[dst].append(src)

    root = weak.root
    position = {oid: index for index, oid in enumerate(order)}

    def included(oid: Oid, chosen: dict[Oid, ChildSet]) -> bool:
        if oid == root:
            return True
        return any(
            parent in chosen and oid in chosen[parent] for parent in parents[oid]
        )

    def expand(
        index: int,
        chosen: dict[Oid, ChildSet],
        values: dict[Oid, Value],
        probability: float,
    ) -> Iterator[tuple[SemistructuredInstance, float]]:
        if probability == 0.0:
            return
        if index == len(order):
            yield _build_world(pi, chosen, values), probability
            return
        oid = order[index]
        if not included(oid, chosen):
            yield from expand(index + 1, chosen, values, probability)
            return
        if weak.is_leaf(oid):
            vpf = pi.effective_vpf(oid)
            if vpf is None:
                yield from expand(index + 1, chosen, values, probability)
                return
            for value, p_value in vpf.support():
                values[oid] = value
                yield from expand(index + 1, chosen, values, probability * p_value)
            del values[oid]
            return
        opf = pi.opf(oid)
        if opf is None:
            raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
        for child_set, p_children in opf.support():
            chosen[oid] = child_set
            yield from expand(index + 1, chosen, values, probability * p_children)
        del chosen[oid]

    # Ensure deterministic world order regardless of dict insertion order.
    del position
    yield from expand(0, {}, {}, 1.0)


def _build_world(
    pi: ProbabilisticInstance,
    chosen: dict[Oid, ChildSet],
    values: dict[Oid, Value],
) -> SemistructuredInstance:
    weak = pi.weak
    world = SemistructuredInstance(weak.root)
    frontier = [weak.root]
    seen = {weak.root}
    while frontier:
        oid = frontier.pop()
        for child in chosen.get(oid, frozenset()):
            world.add_edge(oid, child, weak.label_of_child(oid, child))
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    for oid in seen:
        leaf_type = weak.tau(oid)
        if leaf_type is not None:
            world.set_type(oid, leaf_type)
        if oid in values:
            world.set_value(oid, values[oid])
    return world


def domain_distribution(
    pi: ProbabilisticInstance,
) -> dict[SemistructuredInstance, float]:
    """``Domain(I)`` as a ``{world: probability}`` dict (identical worlds
    merged)."""
    distribution: dict[SemistructuredInstance, float] = {}
    for world, probability in iter_compatible_instances(pi):
        distribution[world] = distribution.get(world, 0.0) + probability
    return distribution


def world_probability(
    pi: ProbabilisticInstance, world: SemistructuredInstance
) -> float:
    """``P_p(S)`` computed directly from the local interpretation.

    Definition 4.4: the product over objects of ``S`` of the OPF value of
    the object's child set (non-leaves) or the VPF value of its value
    (leaves).  Returns 0.0 for worlds that are not compatible.
    """
    if not is_compatible(world, pi.weak):
        return 0.0
    probability = 1.0
    for oid in world.objects:
        if pi.weak.is_leaf(oid):
            vpf = pi.effective_vpf(oid)
            if vpf is None:
                continue
            value = world.val(oid)
            if value is None:
                return 0.0
            probability *= vpf.prob(value)
        else:
            opf = pi.opf(oid)
            if opf is None:
                raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
            probability *= opf.prob(world.children(oid))
        if probability == 0.0:
            return 0.0
    return probability


def count_worlds(pi: ProbabilisticInstance) -> int:
    """The number of distinct positive-probability worlds (by enumeration)."""
    return len(domain_distribution(pi))
