"""Exception hierarchy for the PXML reproduction library.

All library-raised exceptions derive from :class:`PXMLError` so callers can
catch a single base class.  Subclasses are organized by the layer that raises
them: model construction, semantics, algebra, queries, and IO.
"""

from __future__ import annotations


class PXMLError(Exception):
    """Base class for every error raised by this library."""


class ModelError(PXMLError):
    """A probabilistic or semistructured instance is malformed."""


class UnknownObjectError(ModelError):
    """An object id was referenced that does not exist in the instance."""

    def __init__(self, oid: str) -> None:
        super().__init__(f"unknown object id: {oid!r}")
        self.oid = oid


class UnknownLabelError(ModelError):
    """A label was referenced that is not used by the given object."""

    def __init__(self, oid: str, label: str) -> None:
        super().__init__(f"object {oid!r} has no potential children with label {label!r}")
        self.oid = oid
        self.label = label


class CardinalityError(ModelError):
    """A cardinality interval is malformed or violated."""


class TypeDomainError(ModelError):
    """A leaf value falls outside its declared type domain."""


class DistributionError(ModelError):
    """A probability function is not a legal distribution."""


class CyclicModelError(ModelError):
    """The weak instance graph contains a cycle (Definition 4.3 forbids this)."""


class IncoherentModelError(ModelError):
    """A probabilistic instance fails a coherence check (Theorem 1 preconditions)."""


class OverlappingLabelError(ModelError):
    """Two labels of the same object share potential children.

    The paper's ``PC(o)`` construction flattens label information, so like
    the journal version of PXML we require ``lch(o, l1)`` and ``lch(o, l2)``
    to be disjoint for ``l1 != l2``.
    """


class SemanticsError(PXMLError):
    """Raised by the semantics layer (enumeration, factorization)."""


class NotFactorizableError(SemanticsError):
    """A global interpretation does not satisfy the weak instance (Theorem 2)."""


class AlgebraError(PXMLError):
    """Raised by algebraic operators."""


class PathSyntaxError(AlgebraError):
    """A path expression string could not be parsed."""


class EmptyResultError(AlgebraError):
    """An operation conditioned on an event of probability zero."""


class NonTreeInstanceError(AlgebraError):
    """An efficient (local) algorithm requires a tree-structured instance."""


class QueryError(PXMLError):
    """Raised by the query engine."""


class CodecError(PXMLError):
    """Raised when (de)serialization of an instance fails."""


class CorruptInstanceError(CodecError):
    """An instance file failed its integrity check (checksum mismatch,
    undecodable bytes, or a torn/truncated payload)."""


class JournalError(PXMLError):
    """Raised by the catalog write-ahead journal
    (:mod:`repro.storage.journal`) for unusable journal files or
    replay steps that cannot reach a consistent state."""


class ResilienceError(PXMLError):
    """Raised by the resilience subsystem (:mod:`repro.resilience`)."""


class BudgetExceeded(ResilienceError):
    """A cooperative execution budget ran out (deadline, node evaluations,
    or result objects).

    Attributes:
        limit: which limit was hit (``"deadline"``, ``"node_evals"``,
            ``"result_objects"``).
        where: the checkpoint that detected it (a plan-node label, the
            sampler, ...).
        span: when raised under ``PROFILE``, the partial span tree of the
            interrupted execution (attached by the interpreter).
    """

    def __init__(self, message: str, limit: str = "", where: str = "") -> None:
        super().__init__(message)
        self.limit = limit
        self.where = where
        self.span = None


class FaultError(ResilienceError):
    """The deterministic fault injector fired an ``error`` fault."""


class LockError(PXMLError):
    """Raised by the cross-process file-locking layer
    (:mod:`repro.storage.locking`)."""


class LockTimeout(LockError):
    """A file lock could not be acquired within its timeout.

    Attributes:
        path: the lock file that stayed contended.
        holder: best-effort description of the current holder (from the
            lock file's metadata), or ``None`` when unknown.
    """

    def __init__(self, message: str, path: str = "",
                 holder: str | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.holder = holder


class ServerError(PXMLError):
    """Raised by the serving layer (:mod:`repro.server`)."""


class Overloaded(ServerError):
    """Admission control rejected a request.

    Raised when the server's bounded admission queue is full, or when
    the server is draining/stopped — a typed backpressure signal
    callers can retry on, never unbounded queue growth.

    Attributes:
        reason: ``"queue_full"``, ``"draining"``, or ``"stopped"``.
    """

    def __init__(self, message: str, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason


class ShardConfigError(ServerError):
    """A sharded server was pointed at a directory created with a
    different shard count.

    Instance names are placed by consistent hashing over the shard
    ring, so silently reopening an N-shard directory with M shards
    would rehash names to the wrong homes.  The directory's
    ``shards.json`` manifest records the creating count; a mismatch is
    refused with this error (live rebalancing is an open roadmap item).

    Attributes:
        configured: the shard count the server was constructed with.
        recorded: the shard count the directory's manifest records.
    """

    def __init__(
        self, message: str, configured: int = 0, recorded: int = 0
    ) -> None:
        super().__init__(message)
        self.configured = configured
        self.recorded = recorded


class ShardUnavailable(ServerError):
    """A shard process is dead or unreachable.

    Raised by the sharded router (:mod:`repro.server.shard`) when a
    request targets a shard whose worker process has exited, or when
    the shard dies while requests are in flight.  Retryable after
    :meth:`~repro.server.shard.ShardedServer.restart_shard`.

    Attributes:
        shard: the shard index the request was routed to.
    """

    def __init__(self, message: str, shard: int = -1) -> None:
        super().__init__(message)
        self.shard = shard


class RebalanceError(ServerError):
    """A shard-layout migration could not be planned or executed.

    Raised by :mod:`repro.server.rebalance` for invalid resize targets,
    a second resize started while one is running, or a rebalance
    journal that does not match the on-disk plan.
    """


class RebalanceInProgress(RebalanceError):
    """A write targeted an instance that is mid-migration.

    The router fences mutating statements on keys whose copy-then-
    cutover step is in flight: accepting the write on the source shard
    could land it *behind* the copy and silently vanish at cutover.
    This error is retryable — the key is writable again as soon as its
    migration step commits (typically milliseconds).

    Attributes:
        name: the fenced instance name.
    """

    def __init__(self, message: str, name: str = "") -> None:
        super().__init__(message)
        self.name = name


class RemoteExecutionError(ServerError):
    """A shard reported an error the router cannot reconstruct natively.

    Cross-process error transport is by *description* (type name +
    message), not by pickling live exception objects; error types the
    router knows (``Overloaded``, ``BudgetExceeded``, ``DatabaseError``,
    ...) are rebuilt as themselves, and everything else arrives as this
    wrapper — still a typed :class:`ServerError`, never a raw crash.

    Attributes:
        remote_type: the original exception's class name on the shard.
    """

    def __init__(self, message: str, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type
