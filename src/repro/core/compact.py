"""Compact OPF representations (Section 3.2's structure-exploiting forms).

The paper notes that ``p(o)`` "may be defined more compactly, in the case
where there are some symmetries or independence constraints":

* :class:`IndependentOPF` — each candidate child occurs independently with
  its own probability (this is also exactly the ProTDB assumption, which
  makes the ProTDB translation in :mod:`repro.protdb` trivial).
* :class:`PerLabelOPF` — the child sets of distinct labels are chosen
  independently, so the joint is the product of one small distribution per
  label ("if the existence of author and title objects is independent, we
  only need a distribution over authors and a distribution over titles").
* :class:`SymmetricOPF` — indistinguishable objects: the probability of a
  child set depends only on its size (the vehicle1/vehicle2 example).

All three expose the abstract :class:`ObjectProbabilityFunction` interface,
so the semantics, algebra and queries work with them unchanged; the
``entry_count`` they report is the compact storage size, which is what the
OPF-representation ablation benchmark measures.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping, Sequence
from itertools import chain, combinations

from repro.core.distributions import ObjectProbabilityFunction, TabularOPF
from repro.core.potential import ChildSet
from repro.errors import DistributionError
from repro.semistructured.graph import Label, Oid


def _subsets(pool: Sequence[Oid]) -> Iterator[ChildSet]:
    ordered = sorted(pool)
    return (
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(ordered, size) for size in range(len(ordered) + 1)
        )
    )


class IndependentOPF(ObjectProbabilityFunction):
    """Each candidate child is present independently with probability ``p_i``.

    ``w(c) = prod_{i in c} p_i * prod_{i not in c} (1 - p_i)`` over the
    candidate pool.  Storage is linear in the number of candidates while
    the equivalent table has ``2^n`` entries.
    """

    __slots__ = ("_inclusion",)

    def __init__(self, inclusion: Mapping[Oid, float]) -> None:
        for oid, probability in inclusion.items():
            if not 0.0 <= probability <= 1.0:
                raise DistributionError(
                    f"inclusion probability of {oid!r} must be in [0, 1], "
                    f"got {probability!r}"
                )
        self._inclusion = dict(inclusion)

    @property
    def inclusion(self) -> dict[Oid, float]:
        """The per-child inclusion probabilities (a copy)."""
        return dict(self._inclusion)

    def prob(self, child_set: ChildSet) -> float:
        if not set(child_set) <= set(self._inclusion):
            return 0.0
        probability = 1.0
        for oid, p_in in self._inclusion.items():
            probability *= p_in if oid in child_set else (1.0 - p_in)
        return probability

    def support(self) -> Iterator[tuple[ChildSet, float]]:
        for child_set in _subsets(list(self._inclusion)):
            probability = self.prob(child_set)
            if probability > 0.0:
                yield child_set, probability

    def entry_count(self) -> int:
        return len(self._inclusion)

    def marginal_inclusion(self, oid: str) -> float:
        return self._inclusion.get(oid, 0.0)

    def __repr__(self) -> str:
        return f"IndependentOPF({len(self._inclusion)} children)"


class PerLabelOPF(ObjectProbabilityFunction):
    """Independent per-label components: ``w(c) = prod_l w_l(c ∩ lch(o, l))``.

    Each component is itself an OPF over the children of a single label
    (typically a small :class:`TabularOPF`).  Storage is the sum of the
    component sizes instead of their product.
    """

    __slots__ = ("_components",)

    def __init__(
        self, components: Mapping[Label, tuple[Sequence[Oid], ObjectProbabilityFunction]]
    ) -> None:
        seen: set[Oid] = set()
        normalized: dict[Label, tuple[frozenset[Oid], ObjectProbabilityFunction]] = {}
        for label, (candidates, opf) in components.items():
            pool = frozenset(candidates)
            if pool & seen:
                raise DistributionError(
                    f"label {label!r} shares candidate children with another label"
                )
            seen |= pool
            normalized[label] = (pool, opf)
        self._components = normalized

    def prob(self, child_set: ChildSet) -> float:
        remaining = set(child_set)
        probability = 1.0
        for pool, opf in self._components.values():
            part = frozenset(remaining & pool)
            remaining -= part
            probability *= opf.prob(part)
            if probability == 0.0:
                return 0.0
        if remaining:
            return 0.0
        return probability

    def support(self) -> Iterator[tuple[ChildSet, float]]:
        parts = [list(opf.support()) for _, opf in self._components.values()]

        def expand(index: int, acc: ChildSet, probability: float) -> Iterator[
            tuple[ChildSet, float]
        ]:
            if probability == 0.0:
                return
            if index == len(parts):
                yield acc, probability
                return
            for child_set, p in parts[index]:
                yield from expand(index + 1, acc | child_set, probability * p)

        yield from expand(0, frozenset(), 1.0)

    def entry_count(self) -> int:
        return sum(opf.entry_count() for _, opf in self._components.values())

    def component(self, label: Label) -> ObjectProbabilityFunction:
        """The per-label component OPF."""
        return self._components[label][1]

    def labels(self) -> frozenset[Label]:
        """The labels with a component distribution."""
        return frozenset(self._components)

    def __repr__(self) -> str:
        return f"PerLabelOPF(labels={sorted(self._components)!r})"


class SymmetricOPF(ObjectProbabilityFunction):
    """Indistinguishable children: ``w(c)`` depends only on ``|c|``.

    Parameterized by a distribution over child-set sizes; each set of size
    ``k`` receives ``size_prob[k] / C(n, k)``.  This encodes the paper's
    scene example where ``p(S1)({bridge1, vehicle1}) =
    p(S1)({bridge1, vehicle2})``.
    """

    __slots__ = ("_candidates", "_size_prob")

    def __init__(self, candidates: Sequence[Oid], size_prob: Mapping[int, float]) -> None:
        pool = sorted(set(candidates))
        for size, probability in size_prob.items():
            if size < 0 or size > len(pool):
                raise DistributionError(
                    f"size {size} outside [0, {len(pool)}] for symmetric OPF"
                )
            if probability < 0.0:
                raise DistributionError(f"negative size probability {probability!r}")
        self._candidates = tuple(pool)
        self._size_prob = {k: float(p) for k, p in size_prob.items() if p != 0.0}

    def prob(self, child_set: ChildSet) -> float:
        if not set(child_set) <= set(self._candidates):
            return 0.0
        size = len(child_set)
        mass = self._size_prob.get(size, 0.0)
        if mass == 0.0:
            return 0.0
        return mass / math.comb(len(self._candidates), size)

    def support(self) -> Iterator[tuple[ChildSet, float]]:
        for size in sorted(self._size_prob):
            share = self._size_prob[size] / math.comb(len(self._candidates), size)
            for combo in combinations(self._candidates, size):
                yield frozenset(combo), share

    def entry_count(self) -> int:
        return len(self._size_prob)

    def __repr__(self) -> str:
        return (
            f"SymmetricOPF({len(self._candidates)} children, "
            f"sizes={sorted(self._size_prob)!r})"
        )


class NonEmptyIndependentOPF(ObjectProbabilityFunction):
    """Independent children *conditioned on the set being non-empty*.

    ``w(c) = [c != {}] * prod_{i in c} q_i * prod_{i not in c} (1 - q_i)
    / (1 - prod_i (1 - q_i))``.

    This is exactly the distribution the Section 6.1 normalization step
    produces when the input OPF is an :class:`IndependentOPF`: each kept
    child survives independently, and non-root objects are conditioned on
    having at least one surviving child.  Keeping it in this compact form
    lets ancestor projection run in O(children) per object instead of
    O(2^b) — see ``repro.algebra.projection_prob``.
    """

    __slots__ = ("_inclusion", "_nonempty_mass")

    def __init__(self, inclusion: Mapping[Oid, float]) -> None:
        for oid, probability in inclusion.items():
            if not 0.0 <= probability <= 1.0:
                raise DistributionError(
                    f"inclusion probability of {oid!r} must be in [0, 1], "
                    f"got {probability!r}"
                )
        self._inclusion = {o: p for o, p in inclusion.items() if p > 0.0}
        empty_mass = 1.0
        for probability in self._inclusion.values():
            empty_mass *= 1.0 - probability
        self._nonempty_mass = 1.0 - empty_mass
        if self._nonempty_mass <= 0.0:
            raise DistributionError(
                "conditioning on a non-empty child set requires at least one "
                "child with positive inclusion probability"
            )

    @property
    def inclusion(self) -> dict[Oid, float]:
        """The unconditional per-child inclusion probabilities (a copy)."""
        return dict(self._inclusion)

    @property
    def nonempty_mass(self) -> float:
        """``1 - prod (1 - q_i)`` — the normalizing constant."""
        return self._nonempty_mass

    def prob(self, child_set: ChildSet) -> float:
        if not child_set or not set(child_set) <= set(self._inclusion):
            return 0.0
        probability = 1.0
        for oid, q in self._inclusion.items():
            probability *= q if oid in child_set else (1.0 - q)
        return probability / self._nonempty_mass

    def support(self) -> Iterator[tuple[ChildSet, float]]:
        for child_set in _subsets(list(self._inclusion)):
            if not child_set:
                continue
            probability = self.prob(child_set)
            if probability > 0.0:
                yield child_set, probability

    def entry_count(self) -> int:
        return len(self._inclusion)

    def marginal_inclusion(self, oid: str) -> float:
        q = self._inclusion.get(oid, 0.0)
        return q / self._nonempty_mass if q else 0.0

    def __repr__(self) -> str:
        return f"NonEmptyIndependentOPF({len(self._inclusion)} children)"


def tabular_from(opf: ObjectProbabilityFunction) -> TabularOPF:
    """Materialize any OPF into the explicit-table representation."""
    return opf.to_tabular()
