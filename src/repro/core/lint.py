"""Exhaustive model linting.

``ProbabilisticInstance.validate()`` raises on the *first* problem, which
is what library code wants; a human repairing a hand-written or imported
model wants *every* problem at once.  :func:`lint_instance` walks the
whole model and returns a list of :class:`Issue` records, ordered by
severity then object id.

Severities:

* ``error`` — the model has no coherent semantics (Theorem 1 fails).
* ``warning`` — legal but suspicious: dead objects, unreachable mass,
  children that can never be chosen, degenerate distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.distributions import PROBABILITY_TOLERANCE
from repro.core.instance import ProbabilisticInstance
from repro.semistructured.graph import Oid

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One linting finding."""

    severity: str
    oid: Oid | None
    code: str
    message: str

    def __str__(self) -> str:
        where = f" [{self.oid}]" if self.oid is not None else ""
        return f"{self.severity}{where} {self.code}: {self.message}"


def lint_instance(pi: ProbabilisticInstance) -> list[Issue]:
    """Collect every problem in a probabilistic instance."""
    issues: list[Issue] = []
    weak = pi.weak
    graph = weak.graph()

    # -- structure ------------------------------------------------------
    if not graph.is_acyclic():
        issues.append(Issue(
            ERROR, None, "cyclic",
            "the weak instance graph contains a cycle (Definition 4.3)",
        ))
    else:
        reachable = graph.reachable_from(weak.root)
        for oid in sorted(weak.objects - reachable):
            issues.append(Issue(
                WARNING, oid, "unreachable",
                "can never occur in a compatible world (unreachable from root)",
            ))

    for oid in sorted(weak.objects):
        for label in sorted(weak.labels_of(oid)):
            card = weak.card(oid, label)
            pool = weak.lch(oid, label)
            if card.min > len(pool):
                issues.append(Issue(
                    ERROR, oid, "unsatisfiable-card",
                    f"card({oid}, {label}).min = {card.min} exceeds "
                    f"|lch| = {len(pool)}",
                ))
            if card.max == 0 and pool:
                issues.append(Issue(
                    WARNING, oid, "dead-label",
                    f"card({oid}, {label}).max = 0: the {len(pool)} potential "
                    f"{label}-children can never be chosen",
                ))

    # -- local probability functions -------------------------------------
    for oid in sorted(weak.non_leaves()):
        opf = pi.opf(oid)
        if opf is None:
            issues.append(Issue(ERROR, oid, "missing-opf", "non-leaf without an OPF"))
            continue
        total = 0.0
        chosen: set[Oid] = set()
        for child_set, probability in opf.support():
            total += probability
            chosen |= child_set
            if probability < 0.0:
                issues.append(Issue(
                    ERROR, oid, "negative-mass",
                    f"OPF entry {sorted(child_set)!r} has negative probability",
                ))
            if not weak.is_potential_child_set(oid, child_set):
                issues.append(Issue(
                    ERROR, oid, "outside-pc",
                    f"OPF assigns mass to {sorted(child_set)!r} outside PC({oid})",
                ))
        if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
            issues.append(Issue(
                ERROR, oid, "bad-total", f"OPF sums to {total!r}, expected 1"
            ))
        for child in sorted(weak.potential_children(oid) - chosen):
            issues.append(Issue(
                WARNING, oid, "never-chosen",
                f"potential child {child!r} has zero inclusion probability",
            ))

    for oid in sorted(weak.leaves()):
        leaf_type = weak.tau(oid)
        vpf = pi.effective_vpf(oid)
        if vpf is None:
            if leaf_type is not None:
                issues.append(Issue(
                    WARNING, oid, "typed-no-vpf",
                    f"leaf has type {leaf_type.name!r} but no value distribution",
                ))
            continue
        if leaf_type is None:
            issues.append(Issue(
                WARNING, oid, "vpf-no-type",
                "leaf has a value distribution but no declared type",
            ))
        total = 0.0
        for value, probability in vpf.support():
            total += probability
            if probability < 0.0:
                issues.append(Issue(
                    ERROR, oid, "negative-mass",
                    f"VPF entry {value!r} has negative probability",
                ))
            if leaf_type is not None and value not in leaf_type:
                issues.append(Issue(
                    ERROR, oid, "outside-domain",
                    f"VPF assigns mass to {value!r} outside dom({leaf_type.name})",
                ))
        if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
            issues.append(Issue(
                ERROR, oid, "bad-total", f"VPF sums to {total!r}, expected 1"
            ))

    severity_rank = {ERROR: 0, WARNING: 1}
    issues.sort(key=lambda i: (severity_rank[i.severity], i.oid or "", i.code))
    return issues


def has_errors(issues: list[Issue]) -> bool:
    """Whether any finding is severity ``error``."""
    return any(issue.severity == ERROR for issue in issues)


def format_issues(issues: list[Issue]) -> str:
    """Render findings one per line ("clean" when empty)."""
    if not issues:
        return "clean"
    return "\n".join(str(issue) for issue in issues)
