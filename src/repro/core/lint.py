"""Back-compat shim: the instance linter moved to :mod:`repro.check.model`.

The exhaustive model linter is now the *model pass* of the static
diagnostics subsystem (``repro.check``), where its findings share the
``PX1xx`` code space with the plan and query passes.  This module
re-exports the historical API so existing imports keep working::

    from repro.core.lint import lint_instance, Issue, has_errors
"""

from __future__ import annotations

from repro.check.model import (
    ERROR,
    PX_CODES,
    WARNING,
    Issue,
    format_issues,
    has_errors,
    lint_instance,
)

__all__ = [
    "ERROR",
    "Issue",
    "PX_CODES",
    "WARNING",
    "format_issues",
    "has_errors",
    "lint_instance",
]
