"""Cardinality intervals (Definition 3.4, item 5).

``card(o, l) = [min, max]`` constrains how many ``l``-labeled children an
object may have in any compatible instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CardinalityError


@dataclass(frozen=True, order=True)
class CardinalityInterval:
    """An integer interval ``[min, max]`` with ``0 <= min <= max``."""

    min: int
    max: int

    def __post_init__(self) -> None:
        if self.min < 0:
            raise CardinalityError(f"card.min must be >= 0, got {self.min}")
        if self.max < self.min:
            raise CardinalityError(
                f"card.max ({self.max}) must be >= card.min ({self.min})"
            )

    def __contains__(self, count: int) -> bool:
        return self.min <= count <= self.max

    def __str__(self) -> str:
        return f"[{self.min}, {self.max}]"

    @classmethod
    def exactly(cls, count: int) -> "CardinalityInterval":
        """The degenerate interval ``[count, count]``."""
        return cls(count, count)

    @classmethod
    def optional(cls) -> "CardinalityInterval":
        """``[0, 1]`` — at most one child."""
        return cls(0, 1)

    @classmethod
    def required(cls) -> "CardinalityInterval":
        """``[1, 1]`` — exactly one child."""
        return cls(1, 1)

    @classmethod
    def unconstrained(cls, universe_size: int) -> "CardinalityInterval":
        """``[0, n]`` for a potential-children set of size ``n``.

        This is the "no cardinality constraint" setting of the paper's
        experiments (Section 7.1), under which an object with ``b``
        potential children has ``2^b`` potential child sets per label.
        """
        if universe_size < 0:
            raise CardinalityError("universe size must be >= 0")
        return cls(0, universe_size)

    def intersect(self, other: "CardinalityInterval") -> "CardinalityInterval":
        """The intersection interval; raises if the intervals are disjoint."""
        low = max(self.min, other.min)
        high = min(self.max, other.max)
        if low > high:
            raise CardinalityError(f"empty intersection of {self} and {other}")
        return CardinalityInterval(low, high)

    def clamp_to(self, universe_size: int) -> "CardinalityInterval":
        """Clamp the upper bound to the available number of children."""
        if self.min > universe_size:
            raise CardinalityError(
                f"card.min ({self.min}) exceeds number of potential children "
                f"({universe_size})"
            )
        return CardinalityInterval(self.min, min(self.max, universe_size))
