"""Probabilistic instances (Definition 3.11).

A :class:`ProbabilisticInstance` bundles a :class:`WeakInstance` with a
:class:`LocalInterpretation` and is the central object of the library:
the algebra's operators consume and produce probabilistic instances, and
the semantics layer maps them to distributions over compatible
semistructured instances.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.distributions import (
    ObjectProbabilityFunction,
    TabularVPF,
    ValueProbabilityFunction,
)
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.errors import IncoherentModelError, ModelError
from repro.semistructured.graph import EdgeLabeledGraph, Label, Oid
from repro.semistructured.types import LeafType, Value


class ProbabilisticInstance:
    """A weak instance together with a local interpretation."""

    __slots__ = ("_weak", "_interp")

    def __init__(
        self, weak: WeakInstance, interpretation: LocalInterpretation | None = None
    ) -> None:
        self._weak = weak
        self._interp = interpretation if interpretation is not None else LocalInterpretation()

    # ------------------------------------------------------------------
    # Delegation to the weak instance
    # ------------------------------------------------------------------
    @property
    def weak(self) -> WeakInstance:
        """The underlying weak instance."""
        return self._weak

    @property
    def interpretation(self) -> LocalInterpretation:
        """The local interpretation ``p``."""
        return self._interp

    @property
    def root(self) -> Oid:
        """The root object id."""
        return self._weak.root

    @property
    def objects(self) -> frozenset[Oid]:
        """The object set ``V``."""
        return self._weak.objects

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._weak

    def __len__(self) -> int:
        return len(self._weak)

    def lch(self, oid: Oid, label: Label) -> frozenset[Oid]:
        """``lch(oid, label)``."""
        return self._weak.lch(oid, label)

    def card(self, oid: Oid, label: Label):
        """``card(oid, label)``."""
        return self._weak.card(oid, label)

    def tau(self, oid: Oid) -> LeafType | None:
        """``tau(oid)``."""
        return self._weak.tau(oid)

    def is_leaf(self, oid: Oid) -> bool:
        """Whether ``oid`` is a leaf of the weak instance."""
        return self._weak.is_leaf(oid)

    def graph(self) -> EdgeLabeledGraph:
        """The weak instance graph ``G_W``."""
        return self._weak.graph()

    # ------------------------------------------------------------------
    # Local probability functions
    # ------------------------------------------------------------------
    def set_opf(self, oid: Oid, opf: ObjectProbabilityFunction) -> None:
        """Assign the OPF of a non-leaf object."""
        if self._weak.is_leaf(oid):
            raise ModelError(f"object {oid!r} is a leaf; assign a VPF instead")
        self._interp.set_opf(oid, opf)

    def set_vpf(self, oid: Oid, vpf: ValueProbabilityFunction) -> None:
        """Assign the VPF of a leaf object."""
        if not self._weak.is_leaf(oid):
            raise ModelError(f"object {oid!r} is not a leaf; assign an OPF instead")
        self._interp.set_vpf(oid, vpf)

    def opf(self, oid: Oid) -> ObjectProbabilityFunction | None:
        """The OPF of ``oid`` (``None`` for leaves or unassigned objects)."""
        return self._interp.opf(oid)

    def vpf(self, oid: Oid) -> ValueProbabilityFunction | None:
        """The explicitly assigned VPF of ``oid`` (``None`` if absent)."""
        return self._interp.vpf(oid)

    def effective_vpf(self, oid: Oid) -> ValueProbabilityFunction | None:
        """The VPF semantics actually uses for a leaf.

        Falls back to a point mass on the weak instance's default value
        when no VPF was assigned; returns ``None`` for leaves that carry
        neither (untyped structural leaves produced by projection).
        """
        explicit = self._interp.vpf(oid)
        if explicit is not None:
            return explicit
        default = self._weak.val(oid)
        if default is not None:
            return TabularVPF.point_mass(default)
        return None

    # ------------------------------------------------------------------
    # Validation (the Theorem 1 preconditions)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Full coherence check.

        The weak instance must validate (acyclic, rooted, satisfiable
        cardinalities, disjoint per-label ``lch``); every non-leaf needs a
        legal OPF whose support lies in ``PC(o)``; every valued leaf's VPF
        must be a legal distribution over ``dom(tau(o))``.
        """
        self._weak.validate()
        for oid in sorted(self._weak.non_leaves()):
            opf = self._interp.opf(oid)
            if opf is None:
                raise IncoherentModelError(f"non-leaf object {oid!r} has no OPF")
            try:
                for child_set, _ in opf.support():
                    if not self._weak.is_potential_child_set(oid, child_set):
                        raise IncoherentModelError(
                            f"OPF of {oid!r} assigns mass to "
                            f"{sorted(child_set)!r} which is not in PC({oid!r})"
                        )
                opf.validate()
            except IncoherentModelError:
                raise
            except ModelError as exc:
                raise IncoherentModelError(f"OPF of {oid!r}: {exc}") from exc
        for oid in sorted(self._weak.leaves()):
            vpf = self.effective_vpf(oid)
            leaf_type = self._weak.tau(oid)
            if vpf is None:
                continue  # structural leaf without values — allowed
            try:
                vpf.validate(leaf_type.domain if leaf_type is not None else None)
            except ModelError as exc:
                raise IncoherentModelError(f"VPF of {oid!r}: {exc}") from exc

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "ProbabilisticInstance":
        """Deep copy of the weak instance, shallow copy of distributions."""
        return ProbabilisticInstance(self._weak.copy(), self._interp.copy())

    def total_interpretation_entries(self) -> int:
        """Total OPF/VPF entries — the experiments' cost parameter."""
        return self._interp.total_entries()

    def non_leaves(self) -> frozenset[Oid]:
        """Objects with potential children."""
        return self._weak.non_leaves()

    def leaves(self) -> frozenset[Oid]:
        """Objects without potential children."""
        return self._weak.leaves()

    def valued_leaves(self) -> Iterator[Oid]:
        """Leaves that carry an effective VPF."""
        for oid in self._weak.leaves():
            if self.effective_vpf(oid) is not None:
                yield oid

    def __repr__(self) -> str:
        return (
            f"ProbabilisticInstance(root={self.root!r}, |V|={len(self)}, "
            f"entries={self.total_interpretation_entries()})"
        )
