"""Weak instances (Definition 3.4) and the weak instance graph (3.7).

A weak instance ``W = (V, lch, tau, val, card)`` describes which objects
*may* occur, which objects may be children of which (per label), type and
value annotations for leaves, and cardinality constraints on the number of
children per label.  It is the skeleton shared by all compatible
semistructured instances, and a probabilistic instance is a weak instance
plus a local interpretation.

The paper's Definition 3.4 includes a total ``val`` over leaves; because a
probabilistic instance replaces fixed leaf values by VPFs (and Definition
4.1 only requires ``val_S(o) in dom(tau_S(o))``), ``val`` is kept as a
partial map here and interpreted as a point-mass default when no VPF is
supplied.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.cardinality import CardinalityInterval
from repro.core.potential import (
    ChildSet,
    count_potential_child_sets,
    potential_child_sets,
    potential_l_child_sets,
)
from repro.errors import (
    CardinalityError,
    CyclicModelError,
    ModelError,
    OverlappingLabelError,
    TypeDomainError,
    UnknownObjectError,
)
from repro.semistructured.graph import EdgeLabeledGraph, Label, Oid
from repro.semistructured.types import LeafType, Value


class WeakInstance:
    """A weak instance with a designated root object."""

    __slots__ = ("_root", "_objects", "_lch", "_card", "_tau", "_val", "_graph_cache")

    def __init__(self, root: Oid) -> None:
        self._root = root
        self._objects: set[Oid] = {root}
        self._lch: dict[Oid, dict[Label, frozenset[Oid]]] = {root: {}}
        self._card: dict[tuple[Oid, Label], CardinalityInterval] = {}
        self._tau: dict[Oid, LeafType] = {}
        self._val: dict[Oid, Value] = {}
        self._graph_cache: EdgeLabeledGraph | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_object(self, oid: Oid) -> None:
        """Add an object to ``V`` (idempotent)."""
        if oid not in self._objects:
            self._objects.add(oid)
            self._lch[oid] = {}
            self._graph_cache = None

    def set_lch(self, oid: Oid, label: Label, children: Iterable[Oid]) -> None:
        """Declare ``lch(oid, label)``; children are added to ``V`` on demand.

        An empty iterable removes the entry.  Children listed under another
        label of the same object raise :class:`OverlappingLabelError`.
        """
        self._require(oid)
        pool = frozenset(children)
        for other_label, other_children in self._lch[oid].items():
            if other_label != label and pool & other_children:
                overlap = sorted(pool & other_children)
                raise OverlappingLabelError(
                    f"object {oid!r}: children {overlap} appear under both "
                    f"label {label!r} and label {other_label!r}"
                )
        if pool:
            for child in pool:
                self.add_object(child)
            self._lch[oid][label] = pool
        else:
            self._lch[oid].pop(label, None)
        self._graph_cache = None

    def set_card(self, oid: Oid, label: Label, card: CardinalityInterval) -> None:
        """Set ``card(oid, label)``."""
        self._require(oid)
        self._card[(oid, label)] = card
        self._graph_cache = None

    def remove_object(self, oid: Oid) -> None:
        """Remove an object, its ``lch``/``card`` entries and annotations.

        References *to* the object from other objects' ``lch`` sets are
        not touched — callers must retract those first (see
        ``repro.algebra.updates.remove_object`` for the full operation).
        The root cannot be removed.
        """
        self._require(oid)
        if oid == self._root:
            raise ModelError("cannot remove the root object")
        self._objects.discard(oid)
        self._lch.pop(oid, None)
        self._tau.pop(oid, None)
        self._val.pop(oid, None)
        self._card = {
            key: value for key, value in self._card.items() if key[0] != oid
        }
        self._graph_cache = None

    def set_type(self, oid: Oid, leaf_type: LeafType) -> None:
        """Associate ``tau(oid)`` with a leaf object."""
        self._require(oid)
        self._tau[oid] = leaf_type

    def set_val(self, oid: Oid, value: Value) -> None:
        """Associate a default value with a leaf (checked against the type)."""
        self._require(oid)
        leaf_type = self._tau.get(oid)
        if leaf_type is not None:
            leaf_type.check(value)
        self._val[oid] = value

    def copy(self) -> "WeakInstance":
        """Deep, independent copy."""
        clone = WeakInstance.__new__(WeakInstance)
        clone._root = self._root
        clone._objects = set(self._objects)
        clone._lch = {o: dict(by_label) for o, by_label in self._lch.items()}
        clone._card = dict(self._card)
        clone._tau = dict(self._tau)
        clone._val = dict(self._val)
        clone._graph_cache = None
        return clone

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Oid:
        """The designated root object."""
        return self._root

    @property
    def objects(self) -> frozenset[Oid]:
        """The object set ``V``."""
        return frozenset(self._objects)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def lch(self, oid: Oid, label: Label) -> frozenset[Oid]:
        """``lch(oid, label)`` (empty when undeclared)."""
        self._require(oid)
        return self._lch[oid].get(label, frozenset())

    def lch_map(self, oid: Oid) -> Mapping[Label, frozenset[Oid]]:
        """All non-empty ``lch`` entries of ``oid``, keyed by label."""
        self._require(oid)
        return dict(self._lch[oid])

    def labels_of(self, oid: Oid) -> frozenset[Label]:
        """The labels under which ``oid`` has potential children."""
        self._require(oid)
        return frozenset(self._lch[oid])

    def potential_children(self, oid: Oid) -> frozenset[Oid]:
        """The union of ``lch(oid, l)`` over all labels."""
        self._require(oid)
        union: set[Oid] = set()
        for children in self._lch[oid].values():
            union |= children
        return frozenset(union)

    def card(self, oid: Oid, label: Label) -> CardinalityInterval:
        """``card(oid, label)``; defaults to ``[0, |lch(oid, label)|]``.

        The default encodes the paper's "no cardinality constraint"
        experimental setting.
        """
        self._require(oid)
        explicit = self._card.get((oid, label))
        if explicit is not None:
            return explicit
        return CardinalityInterval.unconstrained(len(self.lch(oid, label)))

    def has_explicit_card(self, oid: Oid, label: Label) -> bool:
        """Whether ``card(oid, label)`` was set explicitly."""
        return (oid, label) in self._card

    def card_entries(self) -> Iterator[tuple[Oid, Label, CardinalityInterval]]:
        """Iterate all explicitly declared cardinality constraints."""
        for (oid, label), card in self._card.items():
            yield oid, label, card

    def tau(self, oid: Oid) -> LeafType | None:
        """``tau(oid)``, or ``None`` if untyped."""
        self._require(oid)
        return self._tau.get(oid)

    def val(self, oid: Oid) -> Value | None:
        """The default value of ``oid``, or ``None``."""
        self._require(oid)
        return self._val.get(oid)

    def is_leaf(self, oid: Oid) -> bool:
        """A weak-instance leaf has no potential children at all."""
        self._require(oid)
        return not self._lch[oid]

    def leaves(self) -> frozenset[Oid]:
        """All leaf objects."""
        return frozenset(o for o in self._objects if not self._lch[o])

    def non_leaves(self) -> frozenset[Oid]:
        """All objects with at least one potential child."""
        return frozenset(o for o in self._objects if self._lch[o])

    def label_of_child(self, oid: Oid, child: Oid) -> Label:
        """The (unique, by disjointness) label under which ``child`` appears."""
        self._require(oid)
        for label, children in self._lch[oid].items():
            if child in children:
                return label
        raise ModelError(f"{child!r} is not a potential child of {oid!r}")

    # ------------------------------------------------------------------
    # Potential child sets
    # ------------------------------------------------------------------
    def potential_l_child_sets(self, oid: Oid, label: Label) -> list[ChildSet]:
        """``PL(oid, label)`` (Definition 3.5)."""
        return potential_l_child_sets(self.lch(oid, label), self.card(oid, label))

    def potential_child_sets(self, oid: Oid) -> Iterator[ChildSet]:
        """``PC(oid)`` (Definition 3.6), lazily enumerated."""
        by_label = self.lch_map(oid)
        cards = {label: self.card(oid, label) for label in by_label}
        return potential_child_sets(by_label, cards)

    def count_potential_child_sets(self, oid: Oid) -> int:
        """``|PC(oid)|`` without enumeration."""
        by_label = self.lch_map(oid)
        cards = {label: self.card(oid, label) for label in by_label}
        return count_potential_child_sets(by_label, cards)

    def is_potential_child_set(self, oid: Oid, child_set: ChildSet) -> bool:
        """Membership test ``child_set in PC(oid)`` without enumeration."""
        remaining = set(child_set)
        for label, children in self.lch_map(oid).items():
            part = remaining & children
            remaining -= part
            if len(part) not in self.card(oid, label):
                return False
        return not remaining

    # ------------------------------------------------------------------
    # The weak instance graph (Definition 3.7)
    # ------------------------------------------------------------------
    def graph(self) -> EdgeLabeledGraph:
        """The weak instance graph ``G_W`` (edges labeled by ``lch`` label).

        There is an edge ``(o, o')`` iff some potential child set of ``o``
        contains ``o'`` — equivalently iff ``o' in lch(o, l)`` for a label
        with ``card(o, l).max >= 1`` and satisfiable lower bound.  The
        graph is cached; mutation invalidates the cache.
        """
        if self._graph_cache is None:
            graph = EdgeLabeledGraph()
            for oid in self._objects:
                graph.add_vertex(oid)
            for oid, by_label in self._lch.items():
                for label, children in by_label.items():
                    card = self.card(oid, label)
                    if card.max >= 1 and card.min <= len(children):
                        for child in children:
                            graph.add_edge(oid, child, label)
            self._graph_cache = graph
        return self._graph_cache

    def is_acyclic(self) -> bool:
        """Definition 4.3: whether ``G_W`` is acyclic."""
        return self.graph().is_acyclic()

    def is_tree(self) -> bool:
        """Whether ``G_W`` is a tree rooted at the root object."""
        return self.graph().is_tree(self._root)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Verifies: the weak instance graph is acyclic and all objects are
        reachable from the root; every cardinality constraint is
        satisfiable; every leaf with a default value has it inside its
        type's domain; and (by construction) ``lch`` sets of distinct
        labels are disjoint.
        """
        for oid, by_label in self._lch.items():
            for label, children in by_label.items():
                card = self.card(oid, label)
                if card.min > len(children):
                    raise CardinalityError(
                        f"card({oid!r}, {label!r}).min = {card.min} exceeds "
                        f"|lch| = {len(children)}"
                    )
        graph = self.graph()
        if not graph.is_acyclic():
            raise CyclicModelError("the weak instance graph contains a cycle")
        reachable = graph.reachable_from(self._root)
        unreachable = self._objects - reachable
        if unreachable:
            raise ModelError(
                "objects can never occur in a compatible instance (unreachable "
                f"from root {self._root!r}): {sorted(unreachable)}"
            )
        for oid, value in self._val.items():
            leaf_type = self._tau.get(oid)
            if leaf_type is None:
                raise TypeDomainError(f"object {oid!r} has a value but no type")
            leaf_type.check(value)

    def _require(self, oid: Oid) -> None:
        if oid not in self._objects:
            raise UnknownObjectError(oid)

    def __repr__(self) -> str:
        return f"WeakInstance(root={self._root!r}, |V|={len(self._objects)})"
