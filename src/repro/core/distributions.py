"""Object and value probability functions (Definitions 3.8–3.9).

An **OPF** ``w : PC(o) -> [0, 1]`` gives the conditional probability of
each potential child set of a non-leaf object, given the object exists; a
**VPF** ``w : dom(tau(o)) -> [0, 1]`` gives the distribution over a leaf
object's value.  Both must sum to one.

:class:`TabularOPF` / :class:`TabularVPF` are the explicit table
representations used throughout the paper (the experiments store ``2^b``
entries per non-leaf object).  Compact representations that exploit
independence or symmetry live in :mod:`repro.core.compact`; they share the
abstract interfaces defined here.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Iterator, Mapping

from repro.core.potential import ChildSet
from repro.errors import DistributionError
from repro.semistructured.types import Value

#: Absolute tolerance for "sums to one" checks.
PROBABILITY_TOLERANCE = 1e-9


def _check_total(total: float, what: str) -> None:
    if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
        raise DistributionError(f"{what} must sum to 1, got {total!r}")


class ObjectProbabilityFunction(ABC):
    """Abstract OPF: a distribution over potential child sets."""

    @abstractmethod
    def prob(self, child_set: ChildSet) -> float:
        """``w(c)`` — zero for child sets outside the support."""

    @abstractmethod
    def support(self) -> Iterator[tuple[ChildSet, float]]:
        """Iterate ``(c, w(c))`` over child sets with nonzero probability."""

    @abstractmethod
    def entry_count(self) -> int:
        """The number of stored entries (the paper's cost parameter)."""

    def to_tabular(self) -> "TabularOPF":
        """Materialize as an explicit table."""
        return TabularOPF(dict(self.support()))

    def validate(self, potential: Iterable[ChildSet] | None = None) -> None:
        """Check legality: support within ``PC(o)`` and total mass one."""
        total = 0.0
        allowed = set(potential) if potential is not None else None
        for child_set, probability in self.support():
            if probability < 0:
                raise DistributionError(f"negative probability {probability!r}")
            if allowed is not None and child_set not in allowed:
                raise DistributionError(
                    f"OPF assigns mass to {sorted(child_set)!r} outside PC(o)"
                )
            total += probability
        _check_total(total, "OPF")

    def marginal_inclusion(self, oid: str) -> float:
        """``P(oid in c)`` — the marginal probability a child is chosen."""
        return sum(p for c, p in self.support() if oid in c)

    def restrict(
        self, predicate: Callable[[ChildSet], bool]
    ) -> tuple["TabularOPF", float]:
        """Condition on ``predicate(c)`` being true.

        Returns the normalized conditional OPF and the probability mass of
        the conditioning event.  Raises :class:`DistributionError` when the
        event has probability zero.
        """
        kept = {c: p for c, p in self.support() if predicate(c)}
        mass = sum(kept.values())
        if mass <= 0.0:
            raise DistributionError("conditioning event has probability zero")
        return TabularOPF({c: p / mass for c, p in kept.items()}), mass


class ValueProbabilityFunction(ABC):
    """Abstract VPF: a distribution over a leaf's value domain."""

    @abstractmethod
    def prob(self, value: Value) -> float:
        """``w(v)`` — zero for values outside the support."""

    @abstractmethod
    def support(self) -> Iterator[tuple[Value, float]]:
        """Iterate ``(v, w(v))`` over values with nonzero probability."""

    @abstractmethod
    def entry_count(self) -> int:
        """The number of stored entries."""

    def to_tabular(self) -> "TabularVPF":
        """Materialize as an explicit table."""
        return TabularVPF(dict(self.support()))

    def validate(self, domain: Iterable[Value] | None = None) -> None:
        """Check legality: support within ``dom(tau(o))`` and mass one."""
        total = 0.0
        allowed = set(domain) if domain is not None else None
        for value, probability in self.support():
            if probability < 0:
                raise DistributionError(f"negative probability {probability!r}")
            if allowed is not None and value not in allowed:
                raise DistributionError(f"VPF assigns mass to {value!r} outside dom")
            total += probability
        _check_total(total, "VPF")

    def restrict(self, predicate: Callable[[Value], bool]) -> tuple["TabularVPF", float]:
        """Condition on ``predicate(v)``; returns (conditional VPF, mass)."""
        kept = {v: p for v, p in self.support() if predicate(v)}
        mass = sum(kept.values())
        if mass <= 0.0:
            raise DistributionError("conditioning event has probability zero")
        return TabularVPF({v: p / mass for v, p in kept.items()}), mass


class TabularOPF(ObjectProbabilityFunction):
    """An OPF stored as an explicit ``{child set: probability}`` table."""

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[Iterable[str] | ChildSet, float]) -> None:
        normalized: dict[ChildSet, float] = {}
        for child_set, probability in table.items():
            key = child_set if isinstance(child_set, frozenset) else frozenset(child_set)
            if key in normalized:
                raise DistributionError(f"duplicate OPF entry for {sorted(key)!r}")
            if probability != 0.0:
                normalized[key] = float(probability)
        self._table = normalized

    def prob(self, child_set: ChildSet) -> float:
        return self._table.get(frozenset(child_set), 0.0)

    def support(self) -> Iterator[tuple[ChildSet, float]]:
        return iter(self._table.items())

    def entry_count(self) -> int:
        return len(self._table)

    def items_sorted(self) -> list[tuple[ChildSet, float]]:
        """Entries in a deterministic (sorted) order, for display and IO."""
        return sorted(self._table.items(), key=lambda item: (len(item[0]), sorted(item[0])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TabularOPF):
            return NotImplemented
        if set(self._table) != set(other._table):
            return False
        return all(
            math.isclose(p, other._table[c], abs_tol=PROBABILITY_TOLERANCE)
            for c, p in self._table.items()
        )

    def __repr__(self) -> str:
        return f"TabularOPF({len(self._table)} entries)"

    @classmethod
    def point_mass(cls, child_set: Iterable[str]) -> "TabularOPF":
        """The deterministic OPF that always chooses ``child_set``."""
        return cls({frozenset(child_set): 1.0})

    @classmethod
    def uniform(cls, child_sets: Iterable[ChildSet]) -> "TabularOPF":
        """The uniform OPF over the given potential child sets."""
        sets = [frozenset(c) for c in child_sets]
        if not sets:
            raise DistributionError("uniform OPF needs a nonempty support")
        share = 1.0 / len(sets)
        return cls({c: share for c in sets})


class TabularVPF(ValueProbabilityFunction):
    """A VPF stored as an explicit ``{value: probability}`` table."""

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[Value, float]) -> None:
        self._table = {v: float(p) for v, p in table.items() if p != 0.0}

    def prob(self, value: Value) -> float:
        return self._table.get(value, 0.0)

    def support(self) -> Iterator[tuple[Value, float]]:
        return iter(self._table.items())

    def entry_count(self) -> int:
        return len(self._table)

    def items_sorted(self) -> list[tuple[Value, float]]:
        """Entries sorted by value representation, for display and IO."""
        return sorted(self._table.items(), key=lambda item: repr(item[0]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TabularVPF):
            return NotImplemented
        if set(self._table) != set(other._table):
            return False
        return all(
            math.isclose(p, other._table[v], abs_tol=PROBABILITY_TOLERANCE)
            for v, p in self._table.items()
        )

    def __repr__(self) -> str:
        return f"TabularVPF({len(self._table)} entries)"

    @classmethod
    def point_mass(cls, value: Value) -> "TabularVPF":
        """The deterministic VPF concentrated on ``value``."""
        return cls({value: 1.0})

    @classmethod
    def uniform(cls, values: Iterable[Value]) -> "TabularVPF":
        """The uniform VPF over ``values``."""
        pool = list(values)
        if not pool:
            raise DistributionError("uniform VPF needs a nonempty domain")
        share = 1.0 / len(pool)
        return cls({v: share for v in pool})
