"""The PSD probabilistic data model (Section 3 of the paper)."""

from repro.core.builder import InstanceBuilder
from repro.core.cardinality import CardinalityInterval
from repro.core.compact import (
    IndependentOPF,
    NonEmptyIndependentOPF,
    PerLabelOPF,
    SymmetricOPF,
)
from repro.core.distributions import (
    PROBABILITY_TOLERANCE,
    ObjectProbabilityFunction,
    TabularOPF,
    TabularVPF,
    ValueProbabilityFunction,
)
from repro.core.instance import ProbabilisticInstance
from repro.core.lint import Issue, format_issues, has_errors, lint_instance
from repro.core.interpretation import LocalInterpretation
from repro.core.potential import (
    ChildSet,
    count_potential_child_sets,
    count_potential_l_child_sets,
    hitting_sets,
    potential_child_sets,
    potential_child_sets_via_hitting,
    potential_l_child_sets,
    split_by_label,
)
from repro.core.weak_instance import WeakInstance

__all__ = [
    "CardinalityInterval",
    "ChildSet",
    "IndependentOPF",
    "InstanceBuilder",
    "Issue",
    "LocalInterpretation",
    "NonEmptyIndependentOPF",
    "ObjectProbabilityFunction",
    "PROBABILITY_TOLERANCE",
    "PerLabelOPF",
    "ProbabilisticInstance",
    "SymmetricOPF",
    "TabularOPF",
    "TabularVPF",
    "ValueProbabilityFunction",
    "WeakInstance",
    "count_potential_child_sets",
    "format_issues",
    "has_errors",
    "lint_instance",
    "count_potential_l_child_sets",
    "hitting_sets",
    "potential_child_sets",
    "potential_child_sets_via_hitting",
    "potential_l_child_sets",
    "split_by_label",
]
