"""A fluent builder for probabilistic instances.

The raw model classes are deliberately explicit; this builder provides the
compact construction style used by the examples and tests:

    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"], card=(2, 3))
    builder.opf("R", {("B1", "B2"): 0.2, ("B1", "B2", "B3"): 0.8})
    builder.leaf("T1", "title-type", ["VQDB", "Lore"], {"VQDB": 1.0})
    instance = builder.build()
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.cardinality import CardinalityInterval
from repro.core.distributions import (
    ObjectProbabilityFunction,
    TabularOPF,
    TabularVPF,
    ValueProbabilityFunction,
)
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.semistructured.graph import Label, Oid
from repro.semistructured.types import LeafType, TypeRegistry, Value


class InstanceBuilder:
    """Builds a :class:`ProbabilisticInstance` step by step."""

    def __init__(self, root: Oid, types: TypeRegistry | None = None) -> None:
        self._weak = WeakInstance(root)
        self._interp = LocalInterpretation()
        self._types = types if types is not None else TypeRegistry()

    @property
    def types(self) -> TypeRegistry:
        """The type registry the builder registers leaf types into."""
        return self._types

    def children(
        self,
        oid: Oid,
        label: Label,
        children: Iterable[Oid],
        card: tuple[int, int] | CardinalityInterval | None = None,
    ) -> "InstanceBuilder":
        """Declare ``lch(oid, label)`` and optionally ``card(oid, label)``."""
        self._weak.add_object(oid)
        self._weak.set_lch(oid, label, children)
        if card is not None:
            if not isinstance(card, CardinalityInterval):
                card = CardinalityInterval(*card)
            self._weak.set_card(oid, label, card)
        return self

    def card(self, oid: Oid, label: Label, low: int, high: int) -> "InstanceBuilder":
        """Declare ``card(oid, label) = [low, high]``."""
        self._weak.set_card(oid, label, CardinalityInterval(low, high))
        return self

    def opf(
        self,
        oid: Oid,
        table: Mapping[Iterable[Oid], float] | ObjectProbabilityFunction,
    ) -> "InstanceBuilder":
        """Assign the OPF of a non-leaf; dict keys may be any iterables."""
        if not isinstance(table, ObjectProbabilityFunction):
            table = TabularOPF({frozenset(key): p for key, p in table.items()})
        self._interp.set_opf(oid, table)
        return self

    def leaf(
        self,
        oid: Oid,
        type_name: str,
        domain: Iterable[Value] | None = None,
        vpf: Mapping[Value, float] | ValueProbabilityFunction | None = None,
    ) -> "InstanceBuilder":
        """Declare a typed leaf with an optional VPF.

        ``domain`` may be omitted when the type was registered previously.
        Without a ``vpf`` the leaf gets a uniform distribution over its
        domain.
        """
        self._weak.add_object(oid)
        if domain is not None:
            leaf_type = self._types.define(type_name, domain)
        else:
            leaf_type = self._types[type_name]
        self._weak.set_type(oid, leaf_type)
        if vpf is None:
            vpf = TabularVPF.uniform(leaf_type.domain)
        elif not isinstance(vpf, ValueProbabilityFunction):
            vpf = TabularVPF(vpf)
        self._interp.set_vpf(oid, vpf)
        return self

    def value(self, oid: Oid, type_name: str, value: Value,
              domain: Iterable[Value] | None = None) -> "InstanceBuilder":
        """Declare a typed leaf with a certain (point-mass) value."""
        if domain is None and type_name in self._types:
            domain = self._types[type_name].domain
        if domain is None:
            domain = [value]
        if value not in set(domain):
            domain = [*domain, value]
        return self.leaf(oid, type_name, domain, {value: 1.0})

    def uniform_opfs(self) -> "InstanceBuilder":
        """Give every OPF-less non-leaf a uniform OPF over ``PC(o)``.

        Convenient for quickly making a weak instance coherent in tests.
        """
        for oid in self._weak.non_leaves():
            if self._interp.opf(oid) is None:
                self._interp.set_opf(
                    oid, TabularOPF.uniform(self._weak.potential_child_sets(oid))
                )
        return self

    def build(self, validate: bool = True) -> ProbabilisticInstance:
        """Finish building; validates coherence by default."""
        instance = ProbabilisticInstance(self._weak, self._interp)
        if validate:
            instance.validate()
        return instance
