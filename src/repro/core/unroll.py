"""Cyclic models via bounded unrolling (the paper's stated future work).

Definition 4.3 requires the weak instance graph to be acyclic; the
conclusion names "extending our model to allow cycles" as future work.
This module provides the standard finite-horizon semantics: a cyclic
specification (e.g. a ``person`` whose ``friend`` children are again
persons) is *unrolled* to a chosen depth, producing an ordinary acyclic
probabilistic instance on which every algorithm in this library applies.

Each copy of object ``o`` reached at unrolling depth ``d`` gets the id
``o@d`` (the root keeps depth 0 and its original id).  OPFs and VPFs are
transported by renaming; copies at the horizon have their children cut
(they deterministically become leaves), which is sound as long as no
child is mandatory there — a mandatory out-of-horizon child raises
:class:`repro.errors.EmptyResultError` instead of silently truncating.

The unrolled semantics converges: quantities that stop depending on the
horizon (e.g. the probability that a bounded-length path exists) are
exact once the horizon passes the path length, which
``tests/test_unroll.py`` verifies.
"""

from __future__ import annotations

from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import EmptyResultError, ModelError
from repro.semistructured.graph import Oid


def copy_id(oid: Oid, depth: int) -> Oid:
    """The id of the depth-``d`` copy of ``oid`` (depth 0 keeps the id)."""
    return oid if depth == 0 else f"{oid}@{depth}"


def unroll(pi: ProbabilisticInstance, horizon: int) -> ProbabilisticInstance:
    """Unroll a (possibly cyclic) probabilistic instance to ``horizon``.

    Args:
        pi: the instance; its weak instance graph may contain cycles
            (self-loops included) but every non-leaf still needs an OPF.
        horizon: the maximum depth; copies at this depth have their
            children cut.

    Returns:
        An acyclic (in fact layered) probabilistic instance whose depth-d
        object ``o@d`` stands for "o reached after d steps".

    Raises:
        EmptyResultError: when cutting the horizon contradicts a
            mandatory child (an OPF whose every child set needs an
            out-of-horizon child).
    """
    if horizon < 0:
        raise ModelError("horizon must be >= 0")
    weak = WeakInstance(pi.root)
    interp = LocalInterpretation()
    frontier: list[tuple[Oid, int]] = [(pi.root, 0)]
    seen: set[tuple[Oid, int]] = {(pi.root, 0)}
    while frontier:
        oid, depth = frontier.pop()
        this_copy = copy_id(oid, depth)
        weak.add_object(this_copy)
        leaf_type = pi.weak.tau(oid)
        if leaf_type is not None:
            weak.set_type(this_copy, leaf_type)
        default = pi.weak.val(oid)
        if default is not None:
            weak.set_val(this_copy, default)
        vpf = pi.vpf(oid)
        if vpf is not None and pi.weak.is_leaf(oid):
            interp.set_vpf(this_copy, vpf)
        if pi.weak.is_leaf(oid):
            continue
        if depth >= horizon:
            # Horizon reached: this copy keeps no children.  Its OPF mass
            # is irrelevant (it becomes a structural leaf), so nothing to
            # install — but a mandatory child would make the cut unsound.
            opf = pi.opf(oid)
            if opf is not None and all(c for c, _ in opf.support()):
                raise EmptyResultError(
                    f"cannot cut {oid!r} at the horizon: every potential "
                    "child set is non-empty (a child is mandatory)"
                )
            continue
        for label, children in pi.weak.lch_map(oid).items():
            renamed = {copy_id(child, depth + 1) for child in children}
            weak.set_lch(this_copy, label, renamed)
            if pi.weak.has_explicit_card(oid, label):
                weak.set_card(this_copy, label, pi.weak.card(oid, label))
        opf = pi.opf(oid)
        if opf is None:
            raise ModelError(f"non-leaf object {oid!r} has no OPF")
        interp.set_opf(this_copy, _rename_opf(opf, depth))
        for child in pi.weak.potential_children(oid):
            key = (child, depth + 1)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
    return ProbabilisticInstance(weak, interp)


def _rename_opf(opf, depth: int) -> TabularOPF:
    table: dict[ChildSet, float] = {}
    for child_set, probability in opf.support():
        renamed = frozenset(copy_id(child, depth + 1) for child in child_set)
        table[renamed] = table.get(renamed, 0.0) + probability
    return TabularOPF(table)


def is_cyclic(pi: ProbabilisticInstance) -> bool:
    """Whether the instance's weak instance graph has a cycle."""
    return not pi.weak.graph().is_acyclic()
