"""Local interpretations (Definition 3.10).

A local interpretation ``p`` maps every non-leaf object to an OPF and every
leaf object to a VPF.  It is kept as a thin, explicit container so the
algebra can copy and rewrite it independently of the weak instance.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.core.distributions import (
    ObjectProbabilityFunction,
    TabularVPF,
    ValueProbabilityFunction,
)
from repro.errors import ModelError
from repro.semistructured.graph import Oid
from repro.semistructured.types import Value


class LocalInterpretation:
    """Per-object local probability functions (OPFs and VPFs)."""

    __slots__ = ("_opf", "_vpf")

    def __init__(
        self,
        opfs: Mapping[Oid, ObjectProbabilityFunction] | None = None,
        vpfs: Mapping[Oid, ValueProbabilityFunction] | None = None,
    ) -> None:
        self._opf: dict[Oid, ObjectProbabilityFunction] = dict(opfs or {})
        self._vpf: dict[Oid, ValueProbabilityFunction] = dict(vpfs or {})
        overlap = set(self._opf) & set(self._vpf)
        if overlap:
            raise ModelError(
                f"objects cannot have both an OPF and a VPF: {sorted(overlap)}"
            )

    def set_opf(self, oid: Oid, opf: ObjectProbabilityFunction) -> None:
        """Assign the OPF of a non-leaf object."""
        if oid in self._vpf:
            raise ModelError(f"object {oid!r} already has a VPF")
        self._opf[oid] = opf

    def set_vpf(self, oid: Oid, vpf: ValueProbabilityFunction) -> None:
        """Assign the VPF of a leaf object."""
        if oid in self._opf:
            raise ModelError(f"object {oid!r} already has an OPF")
        self._vpf[oid] = vpf

    def set_value(self, oid: Oid, value: Value) -> None:
        """Shorthand: a certain leaf value becomes a point-mass VPF."""
        self.set_vpf(oid, TabularVPF.point_mass(value))

    def opf(self, oid: Oid) -> ObjectProbabilityFunction | None:
        """The OPF of ``oid``, or ``None``."""
        return self._opf.get(oid)

    def vpf(self, oid: Oid) -> ValueProbabilityFunction | None:
        """The VPF of ``oid``, or ``None``."""
        return self._vpf.get(oid)

    def drop(self, oid: Oid) -> None:
        """Remove any local probability function attached to ``oid``."""
        self._opf.pop(oid, None)
        self._vpf.pop(oid, None)

    def opf_items(self) -> Iterator[tuple[Oid, ObjectProbabilityFunction]]:
        """Iterate ``(oid, OPF)`` pairs."""
        return iter(self._opf.items())

    def vpf_items(self) -> Iterator[tuple[Oid, ValueProbabilityFunction]]:
        """Iterate ``(oid, VPF)`` pairs."""
        return iter(self._vpf.items())

    def copy(self) -> "LocalInterpretation":
        """Shallow-copy the maps (the distributions themselves are immutable
        in practice and shared)."""
        return LocalInterpretation(dict(self._opf), dict(self._vpf))

    def total_entries(self) -> int:
        """Total stored entries across every OPF and VPF.

        This is the paper's experimental cost parameter ("about 28000 -
        200000 p(o) entries are processed").
        """
        return sum(opf.entry_count() for opf in self._opf.values()) + sum(
            vpf.entry_count() for vpf in self._vpf.values()
        )

    def __len__(self) -> int:
        return len(self._opf) + len(self._vpf)

    def __repr__(self) -> str:
        return f"LocalInterpretation({len(self._opf)} OPFs, {len(self._vpf)} VPFs)"
