"""Potential child sets: ``PL(o, l)`` and ``PC(o)`` (Definitions 3.5–3.6).

``PL(o, l)`` is the family of *potential l-child sets*: subsets of
``lch(o, l)`` whose size lies in ``card(o, l)``.  A *potential child set*
of ``o`` is the union of a hitting set of ``{PL(o, l) | lch(o, l) != {}}``;
because this library requires ``lch`` sets of distinct labels to be
disjoint (see :class:`repro.errors.OverlappingLabelError`), ``PC(o)`` is
exactly the set of per-label unions ``{U_l c_l | c_l in PL(o, l)}`` and
each potential child set decomposes uniquely per label.

The module provides both the efficient per-label product enumeration and a
literal hitting-set construction (used by tests to confirm the two agree
under the disjointness assumption).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from itertools import combinations
from math import comb

from repro.core.cardinality import CardinalityInterval
from repro.semistructured.graph import Label, Oid

ChildSet = frozenset[Oid]


def potential_l_child_sets(
    candidates: Iterable[Oid], card: CardinalityInterval
) -> list[ChildSet]:
    """Enumerate ``PL(o, l)``: subsets of ``candidates`` sized within ``card``.

    Subsets are produced in deterministic order (by size, then by the
    sorted order of the candidate ids) so that enumeration, serialization
    and tests are reproducible.
    """
    pool = sorted(set(candidates))
    upper = min(card.max, len(pool))
    sets: list[ChildSet] = []
    for size in range(card.min, upper + 1):
        sets.extend(frozenset(combo) for combo in combinations(pool, size))
    return sets


def count_potential_l_child_sets(universe_size: int, card: CardinalityInterval) -> int:
    """``|PL(o, l)|`` without enumeration."""
    upper = min(card.max, universe_size)
    return sum(comb(universe_size, size) for size in range(card.min, upper + 1))


def potential_child_sets(
    lch_by_label: Mapping[Label, Iterable[Oid]],
    card_by_label: Mapping[Label, CardinalityInterval],
) -> Iterator[ChildSet]:
    """Enumerate ``PC(o)`` as per-label unions, in deterministic order.

    Labels with an empty ``lch`` set are skipped (Definition 3.6 only hits
    the ``PL(o, l)`` of labels with at least one potential child).  With no
    labels at all the sole potential child set is the empty set, matching
    the convention that a childless object contributes nothing.
    """
    labels = sorted(label for label, children in lch_by_label.items() if children)
    per_label: list[list[ChildSet]] = []
    for label in labels:
        card = card_by_label[label]
        per_label.append(potential_l_child_sets(lch_by_label[label], card))

    def expand(index: int, acc: ChildSet) -> Iterator[ChildSet]:
        if index == len(per_label):
            yield acc
            return
        for choice in per_label[index]:
            yield from expand(index + 1, acc | choice)

    yield from expand(0, frozenset())


def count_potential_child_sets(
    lch_by_label: Mapping[Label, Iterable[Oid]],
    card_by_label: Mapping[Label, CardinalityInterval],
) -> int:
    """``|PC(o)|`` without enumeration (valid under label-disjointness)."""
    total = 1
    for label, children in lch_by_label.items():
        pool = set(children)
        if pool:
            total *= count_potential_l_child_sets(len(pool), card_by_label[label])
    return total


def split_by_label(
    child_set: ChildSet, lch_by_label: Mapping[Label, Iterable[Oid]]
) -> dict[Label, ChildSet]:
    """Decompose a potential child set into its per-label components.

    Requires the label-disjointness assumption; children not belonging to
    any label are reported under the pseudo-label ``""`` so callers can
    detect them.
    """
    remaining = set(child_set)
    parts: dict[Label, ChildSet] = {}
    for label, children in lch_by_label.items():
        hit = remaining & set(children)
        if hit:
            parts[label] = frozenset(hit)
            remaining -= hit
    if remaining:
        parts[""] = frozenset(remaining)
    return parts


def hitting_sets(families: Sequence[Iterable[ChildSet]]) -> Iterator[tuple[ChildSet, ...]]:
    """Enumerate the minimal hitting sets of a family of set-families.

    This is the literal Definition 3.6 construction: a hitting set ``H`` of
    ``{PL(o, l1), ..., PL(o, lk)}`` picks at least one member of each
    ``PL(o, li)``, with no proper subset of ``H`` doing so.  When the
    families are pairwise disjoint (the case this library enforces), the
    minimal hitting sets pick exactly one member per family.
    """
    materialized = [list(dict.fromkeys(family)) for family in families]
    if not materialized:
        yield ()
        return
    seen: set[frozenset[ChildSet]] = set()

    def expand(index: int, acc: tuple[ChildSet, ...]) -> Iterator[tuple[ChildSet, ...]]:
        if index == len(materialized):
            # Minimality: drop candidates where removing any element still hits.
            as_set = frozenset(acc)
            if as_set in seen:
                return
            for member in as_set:
                reduced = as_set - {member}
                if all(any(c in reduced for c in fam) for fam in materialized):
                    return
            seen.add(as_set)
            yield tuple(sorted(as_set, key=sorted))
            return
        for choice in materialized[index]:
            yield from expand(index + 1, acc + ((choice,) if choice not in acc else ()))

    yield from expand(0, ())


def potential_child_sets_via_hitting(
    lch_by_label: Mapping[Label, Iterable[Oid]],
    card_by_label: Mapping[Label, CardinalityInterval],
) -> set[ChildSet]:
    """``PC(o)`` computed through the hitting-set construction of Def. 3.6.

    One subtlety the paper glosses over: the *empty* child set can belong
    to ``PL(o, l)`` of several labels at once (whenever two labels both
    allow zero children), and then a literal minimal hitting set would let
    a single shared empty set "hit" every such family, collapsing choices
    that ought to stay independent.  We therefore tag each potential
    l-child set with its label before hitting — which is clearly the
    intended reading, and makes the construction agree with the per-label
    product for all inputs (property-tested).
    """
    labels = sorted(label for label, children in lch_by_label.items() if children)
    families = [
        [
            frozenset({(label, child_set)})
            for child_set in potential_l_child_sets(
                lch_by_label[label], card_by_label[label]
            )
        ]
        for label in labels
    ]
    results: set[ChildSet] = set()
    for hitting in hitting_sets(families):
        union: set[Oid] = set()
        for member in hitting:
            for _, child_set in member:
                union.update(child_set)
        results.add(frozenset(union))
    return results
