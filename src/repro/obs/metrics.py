"""The metrics registry of :mod:`repro.obs`.

Three instrument kinds, all process-local and thread-safe (every
instrument guards its mutable state with a small lock, and the registry
serializes get-or-create, so concurrent workers never lose an increment
or observe a torn histogram):

* :class:`Counter` — a monotonically increasing total (cache hits,
  statements executed, worlds sampled);
* :class:`Gauge` — a last-written value (cache size, threshold in use);
* :class:`Histogram` — counts over fixed, cumulative-style buckets plus
  a running sum/count (operator latencies, statement latencies).

A :class:`MetricsRegistry` get-or-creates instruments by dotted name.
There is a process-global default (:func:`global_registry`) and every
:class:`~repro.engine.executor.Engine` / PXQL interpreter owns its own
instance; modules without a registry of their own (the catalog, the
query algorithms, the sampler) write to the *ambient* registry
(:func:`current_registry` / :func:`use_registry`), which the engine
rebinds to its own for the duration of an execution.

The metric names emitted across the stack are catalogued in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PXMLError


class MetricError(PXMLError):
    """Raised for malformed metric registrations (kind clashes, bad buckets)."""


#: Default latency buckets (seconds): 0.1 ms .. 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class Counter:
    """A monotonically increasing total (thread-safe)."""

    name: str
    description: str = ""
    value: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict[str, object]:
        return {"kind": "counter", "value": self.value}


@dataclass
class Gauge:
    """A last-written value (thread-safe)."""

    name: str
    description: str = ""
    value: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def as_dict(self) -> dict[str, object]:
        return {"kind": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Counts of observations over fixed bucket upper bounds.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+inf`` bucket catches the rest.  ``counts[i]`` is the
    number of observations ``<= buckets[i]`` exclusive of earlier
    buckets (i.e. plain, not cumulative, per-bucket counts);
    ``counts[-1]`` belongs to the overflow bucket.
    """

    name: str
    description: str = ""
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise MetricError(
                f"histogram {self.name!r} needs increasing, non-empty buckets"
            )
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.total += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """The running mean (0 when empty)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """A bucket-resolution upper bound on the ``q``-quantile.

        Returns the upper bound of the bucket the quantile falls in
        (``inf`` for the overflow bucket, 0 when empty).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for index, bound in enumerate(self.buckets):
                seen += self.counts[index]
                if seen >= rank:
                    return bound
            return float("inf")

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "kind": "histogram",
                "count": self.count,
                "sum": self.total,
                "mean": self.total / self.count if self.count else 0.0,
                "buckets": list(self.buckets),
                "counts": list(self.counts),
            }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create instruments by dotted name.

    A name is bound to one instrument kind for the registry's lifetime;
    re-requesting it with a different kind raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.RLock()

    def _get_or_create(
        self, name: str, factory: Counter | Gauge | Histogram
    ) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                self._instruments[name] = factory
                return factory
            if type(existing) is not type(factory):
                raise MetricError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {type(factory).__name__}"
                )
            return existing

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._get_or_create(name, Counter(name, description))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._get_or_create(name, Gauge(name, description))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._get_or_create(
            name, Histogram(name, description, buckets)
        )
        assert isinstance(instrument, Histogram)
        return instrument

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Instrument | None:
        """The instrument under ``name``, if registered."""
        with self._lock:
            return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge's value (``default`` when unregistered)."""
        with self._lock:
            instrument = self._instruments.get(name)
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        return default

    def as_dict(self) -> dict[str, dict[str, object]]:
        """All instruments in JSON-friendly form, keyed by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument.as_dict() for name, instrument in instruments}

    def import_snapshot(
        self, prefix: str, snapshot: dict[str, dict[str, object]]
    ) -> None:
        """Mirror another registry's :meth:`as_dict` under ``prefix``.

        The sharded router uses this to surface each shard process's
        counters in its own registry (``shard0.server.completed``, ...).
        Everything lands as a *gauge* holding the last snapshot's value
        — counters in the source stay counters there; here they are
        observations of a remote total, so last-write-wins semantics
        are the honest representation.  Histograms are summarized as
        ``.count`` and ``.mean`` gauges.  Malformed entries are skipped,
        never raised — a garbled remote snapshot must not take down the
        importer.
        """
        for name, payload in snapshot.items():
            if not isinstance(payload, dict):
                continue
            kind = payload.get("kind")
            if kind in ("counter", "gauge"):
                value = payload.get("value")
                if isinstance(value, (int, float)):
                    self.gauge(f"{prefix}.{name}").set(float(value))
            elif kind == "histogram":
                count = payload.get("count")
                mean = payload.get("mean")
                if isinstance(count, (int, float)):
                    self.gauge(f"{prefix}.{name}.count").set(float(count))
                if isinstance(mean, (int, float)):
                    self.gauge(f"{prefix}.{name}.mean").set(float(mean))

    def clear(self) -> None:
        """Drop every instrument (fresh registry semantics)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments


_GLOBAL_REGISTRY = MetricsRegistry()

_ACTIVE_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def global_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL_REGISTRY


def current_registry() -> MetricsRegistry:
    """The ambient registry: the innermost :func:`use_registry`, else global."""
    registry = _ACTIVE_REGISTRY.get()
    return registry if registry is not None else _GLOBAL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the ambient registry for the ``with`` region."""
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_REGISTRY.reset(token)
