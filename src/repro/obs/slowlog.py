"""A slow-query log: statements whose wall time crossed a threshold.

The PXQL interpreter times every statement; those at or above
:attr:`SlowQueryLog.threshold_s` are recorded here together with their
span tree, so ``PROFILE``-grade detail is available after the fact for
exactly the statements that were worth keeping.  The buffer is a bounded
ring — old entries age out, the log never grows without bound.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.tracing import Span


@dataclass(frozen=True)
class SlowQueryRecord:
    """One statement that crossed the slow threshold."""

    statement: str
    wall_s: float
    threshold_s: float
    span: Span | None = None
    unix_time: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form (the span flattened to its id, if any)."""
        return {
            "statement": self.statement,
            "wall_s": self.wall_s,
            "threshold_s": self.threshold_s,
            "span_id": self.span.span_id if self.span is not None else None,
            "unix_time": self.unix_time,
        }

    def __str__(self) -> str:
        return (
            f"[slow {self.wall_s * 1e3:.3f} ms >= "
            f"{self.threshold_s * 1e3:.3f} ms] {self.statement}"
        )


class SlowQueryLog:
    """Bounded log of statements slower than a configurable threshold.

    Args:
        threshold_s: statements with wall time >= this are recorded.
            ``float("inf")`` disables the log; ``0.0`` records everything.
        capacity: ring-buffer size.
    """

    def __init__(self, threshold_s: float = 0.25, capacity: int = 128) -> None:
        if threshold_s < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_s = threshold_s
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)

    def observe(
        self, statement: str, wall_s: float, span: Span | None = None
    ) -> SlowQueryRecord | None:
        """Record ``statement`` if it crossed the threshold.

        Returns the record when one was made, else ``None``.
        """
        if wall_s < self.threshold_s:
            return None
        record = SlowQueryRecord(statement, wall_s, self.threshold_s, span)
        self._records.append(record)
        return record

    def records(self) -> list[SlowQueryRecord]:
        """The recorded entries, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        """Drop all entries."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
