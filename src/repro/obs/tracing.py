"""The tracing core of :mod:`repro.obs`: spans, tracers, ambient context.

A :class:`Span` is one timed region of work — a plan node execution, a
rewrite-rule firing, a PXQL statement, a catalog load — with a unique
id, a link to its parent, wall-clock and CPU time, and a free-form
attribute dict.  A :class:`Tracer` maintains the *active span stack*:
entering :meth:`Tracer.span` starts a child of the currently active
span, exiting stops the clock and attaches it; completed root spans are
kept in a bounded ring buffer for later export.

Instrumented modules that do not hold a tracer of their own (the rewrite
optimizer, the query algorithms, the world sampler, the catalog) use the
*ambient* tracer: :func:`current_tracer` reads a context variable that
defaults to the process-global tracer, and :func:`use_tracer` rebinds it
for a ``with`` region.  The engine executor and the PXQL interpreter
activate their own tracer this way, so everything beneath a statement
lands in one connected span tree.

A :class:`Tracer` may be shared across threads (the PXQL server shares
one per server): the *active span stack* is thread-local, so two
workers' span trees can never interleave, while the finished-roots ring
is shared and guarded by a lock.  Individual :class:`Span` objects are
plain data and are **not** internally synchronized — a span belongs to
the thread that opened it until it finishes.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, cast

#: Attribute values a span may carry (kept JSON-friendly).
Attribute = object

_span_ids = itertools.count(1)


@dataclass
class Span:
    """One timed, attributed region of work.

    Attributes:
        name: the span's label (dotted, e.g. ``"engine.node.Scan(bib)"``).
        span_id: unique within the process.
        parent_id: the enclosing span's id (``None`` for roots).
        wall_s: elapsed wall-clock seconds (0 until the span finishes).
        cpu_s: elapsed process CPU seconds (0 until the span finishes).
        attributes: free-form structured metadata.
        children: sub-spans, in start order.
        status: ``"ok"``, or ``"error"`` when the region raised.
    """

    name: str
    span_id: int = field(default_factory=lambda: next(_span_ids))
    parent_id: int | None = None
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attributes: dict[str, Attribute] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    status: str = "ok"

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span's subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def self_s(self) -> float:
        """Wall time not accounted for by child spans (>= 0)."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def find(self, name: str) -> "Span | None":
        """The first span in the subtree whose name contains ``name``."""
        for span in self.walk():
            if name in span.name:
                return span
        return None

    def to_dict(self) -> dict[str, Attribute]:
        """A JSON-friendly flat form (children by reference via ids)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.span_id for child in self.children],
        }


class Tracer:
    """Collects span trees; at most ``capacity`` finished roots are kept.

    Args:
        enabled: when off, :meth:`span` still yields a usable span (so
            instrumented code never branches) but records nothing.
        capacity: ring-buffer size for finished root spans.
    """

    def __init__(self, enabled: bool = True, capacity: int = 256) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=capacity)

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's active span stack (created on first use).

        Thread-local by design: span nesting is a property of one
        thread's call stack, so a tracer shared across worker threads
        keeps one stack per thread and the trees never interleave.
        """
        stack = cast("list[Span] | None", getattr(self._local, "stack", None))
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **attributes: Attribute) -> Iterator[Span]:
        """Open a child span of the currently active span.

        The yielded span's ``attributes`` may be extended inside the
        block; timings are filled in when the block exits.  When the
        block raises, the span is still closed (status ``"error"``) and
        the exception propagates.
        """
        span = Span(name=name, attributes=dict(attributes))
        if not self.enabled:
            yield span
            return
        stack = self._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            span.parent_id = parent.span_id
        stack.append(span)
        wall_0 = time.perf_counter()
        cpu_0 = time.process_time()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.wall_s = time.perf_counter() - wall_0
            span.cpu_s = time.process_time() - cpu_0
            stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                with self._lock:
                    self._finished.append(span)

    def event(self, name: str, /, wall_s: float = 0.0,
              **attributes: Attribute) -> Span:
        """Attach an already-measured span (no enter/exit bracketing).

        Used where the instrumented region was timed out-of-band — e.g.
        a rewrite rule that is only worth recording when it fired.
        """
        span = Span(name=name, wall_s=wall_s, attributes=dict(attributes))
        if not self.enabled:
            return span
        stack = self._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            with self._lock:
                self._finished.append(span)
        return span

    # ------------------------------------------------------------------
    @property
    def active(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def last(self) -> Span | None:
        """The most recently finished root span."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def roots(self) -> list[Span]:
        """The finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def take(self) -> list[Span]:
        """Drain and return the finished root spans."""
        with self._lock:
            roots = list(self._finished)
            self._finished.clear()
        return roots

    def clear(self) -> None:
        """Drop all finished roots (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()


#: The process-global default tracer (disabled by default: ambient
#: instrumentation costs nothing until someone opts in).
_GLOBAL_TRACER = Tracer(enabled=False)

_ACTIVE_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_obs_tracer", default=None
)


def global_tracer() -> Tracer:
    """The process-global default tracer."""
    return _GLOBAL_TRACER


def current_tracer() -> Tracer:
    """The ambient tracer: the innermost :func:`use_tracer`, else global."""
    tracer = _ACTIVE_TRACER.get()
    return tracer if tracer is not None else _GLOBAL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the ambient tracer for the ``with`` region."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)
