"""Command-line entry point for the observability layer.

Usage::

    python -m repro.obs trace SCRIPT.pxql [-d DIR] [--format text|jsonl]
                              [--slow-ms N] [--metrics OUT.json]
                              [--spans OUT.jsonl] [--strategy engine|naive]
    python -m repro.obs records [--path results/bench_records.json]
                              [--operation engine]

``trace`` runs a PXQL script (one statement per line, ``#`` comments and
blank lines skipped) through a fully instrumented interpreter and prints
per-statement span trees, the metrics summary, and the slow-query log.
``records`` summarizes the accumulated benchmark/metrics record file
that ``python -m repro.bench ... --append-records`` maintains.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import (
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.tracing import Span


def _iter_statements(text: str) -> list[str]:
    statements: list[str] = []
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            statements.append(line)
    return statements


def _run_trace(args: argparse.Namespace) -> int:
    from repro.errors import PXMLError
    from repro.pxql.interpreter import Interpreter
    from repro.storage.database import Database

    script = Path(args.script)
    if not script.exists():
        print(f"error: no such script: {script}", file=sys.stderr)
        return 2
    directory = args.database if args.database else script.parent
    interpreter = Interpreter(
        Database(directory),
        strategy=args.strategy,
        check="warn",
        slow_query_s=args.slow_ms / 1e3,
    )

    ok = True
    roots: list[Span] = []
    for statement in _iter_statements(script.read_text(encoding="utf-8")):
        try:
            result = interpreter.execute(statement)
        except PXMLError as exc:
            print(f"error: {statement}: {exc}", file=sys.stderr)
            ok = False
            continue
        span = interpreter.tracer.last
        if span is not None:
            roots.append(span)
        if args.format == "text":
            print(f"-- {statement}")
            if span is not None:
                print(render_span_tree(span))
            if result.text and args.verbose:
                print(result.text)
            print()
    if args.format == "jsonl":
        print(spans_to_jsonl(roots))
    else:
        print("== metrics ==")
        print(render_metrics(interpreter.metrics))
        slow = interpreter.slow_log.records()
        print(f"== slow queries (threshold {args.slow_ms:g} ms) ==")
        for record in slow:
            print(str(record))
        if not slow:
            print("(none)")
    if args.spans:
        path = write_spans_jsonl(roots, args.spans)
        print(f"spans written to {path}", file=sys.stderr)
    if args.metrics:
        path = write_metrics_json(interpreter.metrics, args.metrics)
        print(f"metrics written to {path}", file=sys.stderr)
    return 0 if ok else 1


def _run_records(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        print(f"error: no record file at {path}", file=sys.stderr)
        return 2
    loaded = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(loaded, list):
        print(f"error: {path} is not a JSON array", file=sys.stderr)
        return 2
    records = [entry for entry in loaded if isinstance(entry, dict)]
    if args.operation:
        records = [
            entry for entry in records
            if entry.get("operation") == args.operation
        ]
    by_operation: dict[str, int] = {}
    for entry in records:
        operation = str(entry.get("operation", "?"))
        by_operation[operation] = by_operation.get(operation, 0) + 1
    print(f"{len(records)} records in {path}")
    for operation in sorted(by_operation):
        print(f"  {operation}: {by_operation[operation]}")
    for entry in records:
        if entry.get("operation") != "metrics":
            continue
        context = {
            key: value for key, value in entry.items()
            if key not in ("operation", "metrics")
        }
        metrics = entry.get("metrics")
        counters = 0
        if isinstance(metrics, dict):
            counters = len(metrics)
        print(f"  metrics snapshot {context}: {counters} instruments")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace PXQL scripts and inspect accumulated bench records.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="run a PXQL script with tracing")
    trace.add_argument("script", help="PXQL script (one statement per line)")
    trace.add_argument("-d", "--database", metavar="DIR",
                       help="instance directory (default: the script's)")
    trace.add_argument("--format", choices=("text", "jsonl"), default="text")
    trace.add_argument("--slow-ms", type=float, default=250.0,
                       help="slow-query threshold in milliseconds")
    trace.add_argument("--strategy", choices=("engine", "naive"),
                       default="engine")
    trace.add_argument("--metrics", metavar="PATH",
                       help="also write the metrics registry as JSON")
    trace.add_argument("--spans", metavar="PATH",
                       help="also write every span as JSON lines")
    trace.add_argument("--verbose", action="store_true",
                       help="print each statement's result text too")

    records = sub.add_parser("records", help="summarize bench records")
    records.add_argument("--path", default="results/bench_records.json")
    records.add_argument("--operation", help="only this operation kind")

    args = parser.parse_args(argv)
    if args.command == "trace":
        return _run_trace(args)
    return _run_records(args)


if __name__ == "__main__":
    sys.exit(main())
