"""Exporters for spans and metrics: text trees, JSON lines, bench records.

Three audiences, three formats:

* :func:`render_span_tree` / :func:`render_metrics` — human-readable
  text, the format ``PROFILE`` and the ``python -m repro.obs`` CLI print;
* :func:`spans_to_jsonl` / :func:`write_spans_jsonl` — one JSON object
  per span (flattened, children by id), for machine consumption;
* :func:`append_bench_records` — append records (benchmark rows or a
  metrics snapshot wrapped by :func:`metrics_record`) to the repo's
  ``results/bench_records.json`` array, so ``python -m repro.bench``
  runs accumulate and stay comparable across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span

#: Default location of the shared benchmark record file.
BENCH_RECORDS_PATH = Path("results") / "bench_records.json"


# ----------------------------------------------------------------------
# Text
# ----------------------------------------------------------------------
def _tree_lines(
    root: Span, render: Callable[[Span], str]
) -> list[str]:
    lines = [render(root)]

    def recurse(span: Span, prefix: str) -> None:
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + render(child))
            recurse(child, prefix + ("   " if last else "│  "))

    recurse(root, "")
    return lines


def render_span(span: Span) -> str:
    """One span as a single line: name, wall/CPU, salient attributes."""
    details = [f"{span.wall_s * 1e3:.3f} ms"]
    if span.cpu_s:
        details.append(f"cpu {span.cpu_s * 1e3:.3f} ms")
    if span.status != "ok":
        details.append(f"status={span.status}")
    for key in sorted(span.attributes):
        value = span.attributes[key]
        if isinstance(value, float):
            details.append(f"{key}={value:.6g}")
        else:
            details.append(f"{key}={value}")
    return f"{span.name}  ({', '.join(details)})"


def render_span_tree(root: Span) -> str:
    """The whole span tree as an indented text block."""
    return "\n".join(_tree_lines(root, render_span))


def render_metrics(registry: MetricsRegistry) -> str:
    """All instruments of a registry as aligned text lines."""
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Counter):
            lines.append(f"{name} = {instrument.value:g}  (counter)")
        elif isinstance(instrument, Gauge):
            lines.append(f"{name} = {instrument.value:g}  (gauge)")
        elif isinstance(instrument, Histogram):
            lines.append(
                f"{name}: count={instrument.count} "
                f"mean={instrument.mean:.6g} "
                f"p50<={instrument.quantile(0.5):g} "
                f"p99<={instrument.quantile(0.99):g}  (histogram)"
            )
    return "\n".join(lines) if lines else "(no metrics)"


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def spans_to_jsonl(roots: Sequence[Span]) -> str:
    """Every span of every tree, one JSON object per line (pre-order)."""
    lines = [
        json.dumps(span.to_dict(), sort_keys=True)
        for root in roots
        for span in root.walk()
    ]
    return "\n".join(lines)


def write_spans_jsonl(roots: Sequence[Span], path: str | Path) -> Path:
    """Write :func:`spans_to_jsonl` output to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = spans_to_jsonl(roots)
    target.write_text(text + ("\n" if text else ""), encoding="utf-8")
    return target


def metrics_to_json(registry: MetricsRegistry) -> str:
    """A registry as one pretty-printed JSON object."""
    return json.dumps(registry.as_dict(), indent=2, sort_keys=True)


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`metrics_to_json` output to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(metrics_to_json(registry) + "\n", encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Bench-record appending
# ----------------------------------------------------------------------
def metrics_record(
    registry: MetricsRegistry, **context: object
) -> dict[str, object]:
    """Wrap a metrics snapshot as one bench record (``operation="metrics"``).

    ``context`` keys (e.g. ``label="engine-smoke"``, ``quick=True``) are
    stored alongside, so snapshots from different runs stay tellable
    apart inside the shared record file.
    """
    record: dict[str, object] = {"operation": "metrics"}
    record.update(context)
    record["metrics"] = registry.as_dict()
    return record


def append_bench_records(
    records: Sequence[dict[str, object]],
    path: str | Path = BENCH_RECORDS_PATH,
) -> Path:
    """Append ``records`` to the JSON array at ``path`` (created if absent).

    The file holds one flat JSON array of heterogeneous records
    (distinguished by their ``operation`` field); corrupt or non-array
    content is refused rather than silently overwritten.

    The read-modify-write runs under a sibling ``<name>.lock`` file lock
    (cross-process, see :class:`repro.storage.locking.FileLock`) and the
    result is published atomically (tmp + fsync + ``os.replace``), so
    two concurrent bench runs appending to the shared record file can
    neither lose each other's rows nor leave a torn file behind.
    """
    # Imported here, not at module top: repro.storage.locking reports
    # into repro.obs metrics, and a top-level import would be a cycle.
    from repro.io.json_codec import replace_atomically
    from repro.storage.locking import FileLock

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with FileLock(target.with_name(target.name + ".lock")):
        existing: list[object] = []
        if target.exists():
            loaded = json.loads(target.read_text(encoding="utf-8"))
            if not isinstance(loaded, list):
                raise ValueError(
                    f"{target} does not hold a JSON array of bench records"
                )
            existing = loaded
        existing.extend(records)
        replace_atomically(json.dumps(existing, indent=2) + "\n", target)
    return target
