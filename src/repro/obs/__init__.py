"""repro.obs — observability for the PXML engine stack.

The paper's core claim is *efficiency*: Section 6's local algorithms
answer queries without enumerating the exponentially many compatible
instances.  This package is how the repo substantiates that claim with
trustworthy numbers instead of ad-hoc timers:

* :mod:`repro.obs.tracing` — spans (ids, parent links, wall/CPU time,
  attributes) emitted per plan node by the engine executor, per rule by
  the rewrite optimizer, per statement by the PXQL interpreter, per
  query by the Section 6 algorithms, and for catalog load/register
  events;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`~repro.obs.metrics.MetricsRegistry`, with a
  process-global default and per-engine instances;
* :mod:`repro.obs.slowlog` — a bounded log of statements whose wall
  time crossed a configurable threshold, span tree attached;
* :mod:`repro.obs.export` — text, JSON-lines, and
  ``results/bench_records.json`` exporters;
* ``python -m repro.obs`` — a CLI that traces PXQL scripts and
  summarizes accumulated bench records.

PXQL surfaces the tracer directly: ``PROFILE <statement>`` executes the
statement and returns its span tree (see ``docs/OBSERVABILITY.md``).
"""

from repro.obs.export import (
    append_bench_records,
    metrics_record,
    metrics_to_json,
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    current_registry,
    global_registry,
    use_registry,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tracing import (
    Span,
    Tracer,
    current_tracer,
    global_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "append_bench_records",
    "current_registry",
    "current_tracer",
    "global_registry",
    "global_tracer",
    "metrics_record",
    "metrics_to_json",
    "render_metrics",
    "render_span_tree",
    "spans_to_jsonl",
    "use_registry",
    "use_tracer",
    "write_metrics_json",
    "write_spans_jsonl",
]
