"""Crash-consistent, resumable shard-layout migration (live rebalancing).

PR 8 froze the shard count at first start: ``shards.json`` made a
mismatch loud, but actually growing or shrinking a deployment meant
rebuilding the catalog offline.  Consistent hashing makes resharding a
*bounded* migration — only the names whose hash-home moves between the
old and new vnode rings need to travel — and the journal discipline
from PR 9 makes that migration survivable at any instant.  This module
supplies the pieces; :class:`~repro.server.shard.ShardedServer` wires
them into live serving (``resize(n)``), and the crash sweep
(``python -m repro.resilience.crashsweep --mode rebalance``) proves the
crash contract empirically.

**The protocol.**  A resize from N to M shards at layout epoch ``e``:

1. **Plan** — :func:`plan_rebalance` diffs the *actual* placements
   (every name each shard currently serves, which folds in the
   placement overlay) against the new ring: a name moves iff its
   current shard differs from its new-ring home.  The full move list is
   written atomically to ``rebalance.plan.json``; a ``plan`` record
   (epochs, shard counts, plan checksum) is then appended to the
   ``rebalance.journal`` at the catalog root under the root lock.
   Until that record is durable, nothing has happened.
2. **Migrate** — per name, in plan order: append ``move-begin``, copy
   the instance (payload + sidecar, via the destination catalog's own
   journaled save) to the destination shard, append ``move-commit`` —
   the cutover point: reads now resolve on the destination — then
   delete from the source (the source catalog's own journaled drop).
   Every step is idempotent, so resume re-runs the whole sequence:
   moves with a ``move-commit`` skip the copy and only re-ensure the
   source delete.
3. **Finalize** — atomically replace ``shards.json`` with the new
   shard count and ``layout_epoch = e + 1``, append ``done``, and
   truncate the journal.  A crash between the manifest write and the
   ``done`` record converges: resume re-runs finalize, and the
   manifest write is idempotent.

**Crash windows.**  SIGKILL before the ``plan`` record: the resize
never happened (a torn ``rebalance.plan.json`` is overwritten by the
next plan).  Between ``move-begin`` and ``move-commit``: the source is
still authoritative; the destination may hold a stale half-copy that
the resumed copy overwrites.  Between ``move-commit`` and the source
delete: both shards hold the name, but the journal says the
destination owns it — resume (and ``fsck --shards``) re-runs the
delete.  After ``done``: nothing pending, the new epoch is committed.
At no point is a name *served* by two shards: ownership flips exactly
at the durable ``move-commit``.

**Offline vs live.**  The :class:`Rebalancer` executes a plan over a
:class:`ShardAccess` — :class:`DirectoryShardAccess` opens each
``shard-i/`` catalog directly (startup resume, fsck repair, the crash
sweep), while the live server supplies an RPC adapter over its shard
processes plus per-key routing callbacks (dual-check reads, write
fencing).  Both paths write the same journal, so a crashed live
migration is finished offline by the next ``start()``.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol

from repro.errors import PXMLError, RebalanceError
from repro.io.json_codec import content_checksum, replace_atomically
from repro.resilience.faults import fault_point
from repro.storage.journal import append_checked, read_checked, rewrite_checked
from repro.storage.locking import CATALOG_LOCK_NAME, shared_lock

#: The shard-layout manifest at the catalog root (versioned, atomically
#: replaced; carries the monotone ``layout_epoch``).
MANIFEST_NAME = "shards.json"

#: The migration journal at the catalog root.
REBALANCE_JOURNAL_NAME = "rebalance.journal"

#: The full move list of the pending plan (bounded journal lines: the
#: journal holds its checksum, not its body).
PLAN_NAME = "rebalance.plan.json"

#: Current ``shards.json`` schema version (2 added ``layout_epoch``).
MANIFEST_VERSION = 2

#: Default virtual nodes per shard on the hash ring.
DEFAULT_VNODES = 64


def hash_position(name: str) -> int:
    """A stable 64-bit ring position for a name (SHA-256 prefix)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def build_ring(shards: int, vnodes: int) -> tuple[list[int], list[int]]:
    """``(positions, owners)`` of the vnode ring, sorted by position.

    Deterministic in ``(shards, vnodes)``: every process that knows the
    manifest rebuilds the identical ring, so routing needs no shared
    state beyond ``shards.json``.
    """
    ring = sorted(
        (hash_position(f"vnode:{index}:{vnode}"), index)
        for index in range(shards)
        for vnode in range(vnodes)
    )
    return [position for position, _ in ring], [owner for _, owner in ring]


def ring_owner(positions: list[int], owners: list[int], name: str) -> int:
    """The ring's home shard for ``name`` (successor, with wraparound)."""
    index = bisect.bisect_right(positions, hash_position(name))
    if index == len(positions):
        index = 0
    return owners[index]


# ----------------------------------------------------------------------
# Manifest (shards.json v2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardManifest:
    """The durable shard layout: count, vnodes, and layout epoch.

    ``layout_epoch`` is monotone: every completed rebalance bumps it by
    one, so a reader can always tell which of two layouts is newer.
    Legacy v1 manifests (no epoch) parse as epoch 0.
    """

    shards: int
    vnodes: int = DEFAULT_VNODES
    layout_epoch: int = 0

    def as_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "shards": self.shards,
            "vnodes": self.vnodes,
            "layout_epoch": self.layout_epoch,
        }


def read_manifest(root: str | Path) -> ShardManifest | None:
    """The root's ``shards.json``, or ``None`` when there is none.

    Raises :class:`~repro.errors.RebalanceError` for a manifest that
    exists but cannot be trusted (unreadable, undecodable, or missing a
    valid shard count) — never guesses a layout.
    """
    path = Path(root) / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise RebalanceError(f"unreadable shard manifest {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise RebalanceError(f"undecodable shard manifest {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise RebalanceError(f"shard manifest {path} is not an object")
    shards = data.get("shards")
    if not isinstance(shards, int) or shards < 1:
        raise RebalanceError(
            f"shard manifest {path} records no valid shard count"
        )
    vnodes = data.get("vnodes")
    epoch = data.get("layout_epoch")
    return ShardManifest(
        shards=shards,
        vnodes=vnodes if isinstance(vnodes, int) and vnodes >= 1
        else DEFAULT_VNODES,
        layout_epoch=epoch if isinstance(epoch, int) and epoch >= 0 else 0,
    )


def write_manifest(root: str | Path, manifest: ShardManifest) -> None:
    """Atomically replace the root's ``shards.json``."""
    replace_atomically(
        json.dumps(manifest.as_dict(), indent=2, sort_keys=True) + "\n",
        Path(root) / MANIFEST_NAME,
    )


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Move:
    """One name's migration: from its current shard to its new home."""

    name: str
    source: int
    dest: int

    def as_dict(self) -> dict:
        return {"name": self.name, "source": self.source, "dest": self.dest}


@dataclass(frozen=True)
class RebalancePlan:
    """Exactly the moves a layout change requires, plus its epochs."""

    old_shards: int
    new_shards: int
    vnodes: int
    from_epoch: int
    moves: tuple[Move, ...]

    @property
    def to_epoch(self) -> int:
        return self.from_epoch + 1

    def as_dict(self) -> dict:
        return {
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "vnodes": self.vnodes,
            "from_epoch": self.from_epoch,
            "to_epoch": self.to_epoch,
            "moves": [move.as_dict() for move in self.moves],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RebalancePlan":
        try:
            moves = tuple(
                Move(
                    name=str(m["name"]),
                    source=int(m["source"]),
                    dest=int(m["dest"]),
                )
                for m in data["moves"]
            )
            return cls(
                old_shards=int(data["old_shards"]),
                new_shards=int(data["new_shards"]),
                vnodes=int(data["vnodes"]),
                from_epoch=int(data["from_epoch"]),
                moves=moves,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RebalanceError(f"malformed rebalance plan: {exc}") from exc


def plan_rebalance(
    placements: Mapping[str, int],
    old_shards: int,
    new_shards: int,
    vnodes: int = DEFAULT_VNODES,
    from_epoch: int = 0,
) -> RebalancePlan:
    """Diff actual placements against the new ring.

    ``placements`` maps every served name to the shard that currently
    holds it — the ring answer for hash-home names *and* the overlay
    answer for derived results parked off-home.  A name moves iff its
    current shard differs from its new-ring home, which makes the plan
    self-healing: overlay strays are brought home by the next resize,
    and names already where the new ring wants them never travel.
    """
    if old_shards < 1 or new_shards < 1:
        raise RebalanceError(
            f"shard counts must be >= 1 (got {old_shards} -> {new_shards})"
        )
    positions, owners = build_ring(new_shards, vnodes)
    moves = []
    for name in sorted(placements):
        current = placements[name]
        if not 0 <= current < old_shards:
            raise RebalanceError(
                f"placement of {name!r} on shard {current} is outside the "
                f"old layout of {old_shards} shard(s)"
            )
        home = ring_owner(positions, owners, name)
        if home != current:
            moves.append(Move(name=name, source=current, dest=home))
    return RebalancePlan(
        old_shards=old_shards,
        new_shards=new_shards,
        vnodes=vnodes,
        from_epoch=from_epoch,
        moves=tuple(moves),
    )


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class RebalanceJournal:
    """The migration journal at a sharded catalog root.

    Same record discipline as the catalog journal (crc-stamped JSONL,
    fsynced appends, prefix-consistent reads via
    :func:`repro.storage.journal.read_checked`); callers hold the root
    catalog lock across appends.  Record states::

        plan         epochs + shard counts + checksum of rebalance.plan.json
        move-begin   name/source/dest: the copy is about to start
        move-commit  the cutover point: the destination now owns the name
        done         the manifest carries to_epoch; nothing is pending
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / REBALANCE_JOURNAL_NAME

    def read(self) -> tuple[list[dict], bool]:
        return read_checked(self.path)

    def truncate_to(self, records: list[dict]) -> None:
        rewrite_checked(
            self.path,
            [{k: v for k, v in r.items() if k != "crc"} for r in records],
        )

    def append(self, state: str, **fields: object) -> None:
        record: dict[str, object] = {"state": state, **fields}
        append_checked(self.path, record)

    # -- state extraction over a read() prefix --------------------------
    @staticmethod
    def pending_plan(records: list[dict]) -> dict | None:
        """The last ``plan`` record not yet resolved by a ``done``."""
        pending: dict | None = None
        for record in records:
            if record.get("state") == "plan":
                pending = record
            elif record.get("state") == "done":
                pending = None
        return pending

    @staticmethod
    def committed_names(records: list[dict]) -> set[str]:
        """Names whose cutover committed after the last ``plan``."""
        committed: set[str] = set()
        for record in records:
            state = record.get("state")
            if state in ("plan", "done"):
                committed = set()
            elif state == "move-commit":
                name = record.get("name")
                if isinstance(name, str):
                    committed.add(name)
        return committed


# ----------------------------------------------------------------------
# Shard access (offline vs live)
# ----------------------------------------------------------------------
class ShardAccess(Protocol):
    """What the :class:`Rebalancer` needs from a shard deployment."""

    def fetch(self, shard: int, name: str) -> str:
        """The serialized JSON of ``name`` from shard ``shard``."""
        ...

    def store(self, shard: int, name: str, payload: str) -> None:
        """Durably (re)place ``name`` on shard ``shard`` (idempotent)."""
        ...

    def delete(self, shard: int, name: str) -> None:
        """Remove ``name`` from shard ``shard``; a no-op when absent."""
        ...


class DirectoryShardAccess:
    """Offline :class:`ShardAccess`: open each ``shard-i/`` catalog
    directly.  Every store/delete goes through the shard catalog's own
    write-ahead journal, so the individual steps of a migration are
    themselves crash-consistent."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._databases: dict[int, object] = {}

    def database(self, shard: int):
        from repro.storage.database import Database

        db = self._databases.get(shard)
        if db is None:
            directory = self.root / f"shard-{shard}"
            directory.mkdir(parents=True, exist_ok=True)
            db = Database(directory)
            self._databases[shard] = db
        return db

    def names(self, shard: int) -> list[str]:
        names = self.database(shard).names()
        return list(names) if isinstance(names, list) else []

    def fetch(self, shard: int, name: str) -> str:
        from repro.io.json_codec import dumps

        return dumps(self.database(shard).get(name))

    def store(self, shard: int, name: str, payload: str) -> None:
        from repro.io.json_codec import loads

        db = self.database(shard)
        db.register(name, loads(payload), replace=True)
        db.save(name)

    def delete(self, shard: int, name: str) -> None:
        db = self.database(shard)
        if name in db.names():
            db.drop(name)


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------
@dataclass
class RebalanceStatus:
    """A live (mutable) progress snapshot of one migration."""

    state: str = "idle"      # idle|planning|migrating|finalizing|done|failed
    from_epoch: int = 0
    to_epoch: int = 0
    old_shards: int = 0
    new_shards: int = 0
    total_moves: int = 0
    completed_moves: int = 0
    resumed: bool = False
    error: str = ""

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "from_epoch": self.from_epoch,
            "to_epoch": self.to_epoch,
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "total_moves": self.total_moves,
            "completed_moves": self.completed_moves,
            "resumed": self.resumed,
            "error": self.error,
        }


# ----------------------------------------------------------------------
# The rebalancer
# ----------------------------------------------------------------------
class Rebalancer:
    """Execute (or resume) one :class:`RebalancePlan` to completion.

    Every step is idempotent and journaled-before-acted, so calling
    :meth:`execute` again after a crash at *any* point converges to the
    same final state.  ``on_phase(name, phase)`` — phases ``"copying"``,
    ``"committed"``, ``"done"`` — lets a live router flip per-key
    routing exactly at the durable cutover; offline callers omit it.
    """

    def __init__(
        self,
        root: str | Path,
        access: ShardAccess,
        on_phase: Callable[[str, str], None] | None = None,
        status: RebalanceStatus | None = None,
    ) -> None:
        self.root = Path(root)
        self.access = access
        self.journal = RebalanceJournal(self.root)
        self.on_phase = on_phase
        self.status = status if status is not None else RebalanceStatus()
        self._lock = shared_lock(self.root / CATALOG_LOCK_NAME)

    def _phase(self, name: str, phase: str) -> None:
        if self.on_phase is not None:
            self.on_phase(name, phase)

    def execute(self, plan: RebalancePlan) -> RebalanceStatus:
        """Run ``plan`` (fresh or resumed) through to the new epoch."""
        status = self.status
        status.state = "planning"
        status.from_epoch = plan.from_epoch
        status.to_epoch = plan.to_epoch
        status.old_shards = plan.old_shards
        status.new_shards = plan.new_shards
        status.total_moves = len(plan.moves)
        records, torn = self.journal.read()
        if torn:
            self.journal.truncate_to(records)
        pending = self.journal.pending_plan(records)
        if pending is None:
            # Fresh start: the plan body goes durable first, then the
            # journal record that makes the migration real.
            plan_text = plan.to_json()
            replace_atomically(plan_text, self.root / PLAN_NAME)
            with self._lock:
                self.journal.append(
                    "plan",
                    from_epoch=plan.from_epoch,
                    to_epoch=plan.to_epoch,
                    old_shards=plan.old_shards,
                    new_shards=plan.new_shards,
                    vnodes=plan.vnodes,
                    moves=len(plan.moves),
                    plan_checksum=content_checksum(plan_text),
                )
            committed: set[str] = set()
        else:
            if pending.get("to_epoch") != plan.to_epoch:
                raise RebalanceError(
                    f"journal has a pending migration to epoch "
                    f"{pending.get('to_epoch')} but this plan targets "
                    f"{plan.to_epoch}"
                )
            status.resumed = True
            committed = self.journal.committed_names(records)
        fault_point("rebalance.plan")
        status.state = "migrating"
        for move in plan.moves:
            if move.name in committed:
                # The cutover already committed: the destination owns
                # the name; only the source delete may be outstanding.
                self._phase(move.name, "committed")
                self._finish_move(move)
            else:
                self._migrate(move)
            status.completed_moves += 1
        status.state = "finalizing"
        self._finalize(plan)
        status.state = "done"
        return status

    def _migrate(self, move: Move) -> None:
        # Fence writes to the key *before* the begin record is durable:
        # a write that lands on the source after the copy read it would
        # silently vanish at cutover.
        self._phase(move.name, "copying")
        with self._lock:
            self.journal.append(
                "move-begin",
                name=move.name, source=move.source, dest=move.dest,
            )
        fault_point("rebalance.move.begin")
        try:
            payload = self.access.fetch(move.source, move.name)
        except PXMLError:
            # The name vanished between planning and now (a concurrent
            # DROP before the fence went up).  Commit the move as
            # content-free: the destination never receives it and the
            # source delete below is a no-op.
            payload = None
        if payload is not None:
            self.access.store(move.dest, move.name, payload)
        fault_point("rebalance.copy")
        with self._lock:
            self.journal.append("move-commit", name=move.name)
        self._phase(move.name, "committed")
        fault_point("rebalance.move.commit")
        self._finish_move(move)

    def _finish_move(self, move: Move) -> None:
        self.access.delete(move.source, move.name)
        fault_point("rebalance.delete")
        self._phase(move.name, "done")

    def _finalize(self, plan: RebalancePlan) -> None:
        fault_point("rebalance.manifest")
        write_manifest(
            self.root,
            ShardManifest(
                shards=plan.new_shards,
                vnodes=plan.vnodes,
                layout_epoch=plan.to_epoch,
            ),
        )
        with self._lock:
            self.journal.append("done", to_epoch=plan.to_epoch)
        fault_point("rebalance.done")
        # The migration is fully resolved: compact the journal and drop
        # the plan body.  A crash in here re-runs finalize to the same
        # end state (the manifest write and these cleanups are
        # idempotent, and a second ``done`` record is harmless).
        self.journal.truncate_to([])
        (self.root / PLAN_NAME).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------
def pending_rebalance(root: str | Path) -> RebalancePlan | None:
    """The plan of an unfinished migration at ``root``, or ``None``.

    Truncates a torn journal tail as a side effect (under the root
    lock).  Raises :class:`~repro.errors.RebalanceError` when the
    journal names a pending plan whose body is missing or does not
    match the journaled checksum — a state that cannot happen through
    this module's own protocol and must not be guessed around.
    """
    root = Path(root)
    journal = RebalanceJournal(root)
    records, torn = journal.read()
    if torn:
        with shared_lock(root / CATALOG_LOCK_NAME):
            journal.truncate_to(records)
    pending = journal.pending_plan(records)
    if pending is None:
        return None
    plan_path = root / PLAN_NAME
    try:
        plan_text = plan_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise RebalanceError(
            f"rebalance journal names a pending migration but its plan "
            f"{plan_path} is unreadable: {exc}"
        ) from exc
    checksum = pending.get("plan_checksum")
    if (
        isinstance(checksum, str)
        and content_checksum(plan_text) != checksum
    ):
        raise RebalanceError(
            f"rebalance plan {plan_path} does not match the journaled "
            "checksum"
        )
    try:
        data = json.loads(plan_text)
    except ValueError as exc:
        raise RebalanceError(
            f"rebalance plan {plan_path} is undecodable: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise RebalanceError(f"rebalance plan {plan_path} is not an object")
    return RebalancePlan.from_dict(data)


def resume_rebalance(
    root: str | Path, access: ShardAccess | None = None
) -> RebalanceStatus | None:
    """Finish a torn migration at ``root``; ``None`` when none pending.

    The recovery entry point: ``ShardedServer.start()`` calls it before
    spawning shard processes, ``fsck --shards --repair`` calls it for a
    root with an unresolved rebalance journal, and the crash sweep
    calls it after every kill.  Never restarts a migration from
    scratch — committed moves keep their destination, uncommitted ones
    re-copy from the still-authoritative source.
    """
    plan = pending_rebalance(root)
    if plan is None:
        return None
    rebalancer = Rebalancer(
        root, access if access is not None else DirectoryShardAccess(root)
    )
    rebalancer.status.resumed = True
    return rebalancer.execute(plan)


__all__ = [
    "DEFAULT_VNODES",
    "DirectoryShardAccess",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Move",
    "PLAN_NAME",
    "REBALANCE_JOURNAL_NAME",
    "RebalanceJournal",
    "RebalancePlan",
    "RebalanceStatus",
    "Rebalancer",
    "ShardAccess",
    "ShardManifest",
    "build_ring",
    "hash_position",
    "pending_rebalance",
    "plan_rebalance",
    "read_manifest",
    "resume_rebalance",
    "ring_owner",
    "write_manifest",
]
