"""A supervised, multi-threaded PXQL serving layer.

:class:`PXQLServer` turns the single-threaded PXQL interpreter into a
long-running service: a fixed pool of worker threads executes admitted
statements against one shared (thread-safe) :class:`Database`, behind a
bounded admission queue with typed backpressure.

The concurrency contract, piece by piece:

* **admission** — :meth:`PXQLServer.submit` never blocks and the queue
  never grows past its bound: a full queue, a draining server, and a
  stopped server all answer with :class:`~repro.errors.Overloaded`
  (reasons ``queue_full`` / ``draining`` / ``stopped``);
* **context propagation** — ambient installations made by the
  submitting thread (fault injector, budget, tracer rebinding — all
  :class:`~contextvars.ContextVar` based, which threads do *not*
  inherit) are captured at submission and replayed in the worker via
  :meth:`contextvars.Context.run`;
* **budgets** — each request may carry its own
  :class:`~repro.resilience.budget.Budget` (or the server's
  ``budget_factory`` default), armed around the statement, so a slow
  query ends in a typed :class:`~repro.errors.BudgetExceeded` instead
  of occupying a worker forever;
* **isolation** — each worker owns a private
  :class:`~repro.pxql.interpreter.Interpreter` (fresh result names are
  worker-prefixed, so two ``PROJECT ... `` statements without ``AS``
  can never clash), while the database, tracer and metrics registry are
  shared and thread-safe;
* **shutdown** — :meth:`drain` stops admissions and waits for the
  queue and in-flight work to finish; :meth:`stop` then (or
  immediately, with ``drain=False``) halts the pool and resolves every
  still-queued request with ``Overloaded(reason="stopped")`` — a
  request is always answered, never abandoned.  Two details make the
  contract race-free: admission (the state check *and* the enqueue)
  happens atomically under the state lock, so a submission can never
  slip into the queue after the shutdown sweep; and idleness is judged
  by the queue's *task accounting* (admitted-but-unfinished count),
  not its depth, so a request sitting in the dequeue→execute handoff
  window can never make :meth:`drain` report a clean drain early;
* **probes** — :meth:`alive` (liveness: the pool is running) and
  :meth:`ready` (readiness: admissions are open and capacity remains)
  are cheap and lock-light, backed by the same :mod:`repro.obs`
  counters :meth:`health` exposes.

See ``docs/SERVER.md`` for the full model.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable
from types import FrameType, TracebackType

from repro.errors import Overloaded, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.pxql.interpreter import Interpreter, Result
from repro.resilience.budget import Budget, use_budget
from repro.resilience.faults import fault_point
from repro.server.admission import AdmissionQueue, PendingResult, Request
from repro.storage.database import Database

_NEW = "new"
_RUNNING = "running"
_DRAINING = "draining"
_STOPPED = "stopped"


class _WorkerInterpreter(Interpreter):
    """An interpreter whose auto-generated result names carry the worker
    index (``_w3_result1``), so unnamed results from concurrent workers
    never collide in the shared catalog."""

    def __init__(self, worker: int, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._worker = worker

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"_w{self._worker}_result{self._counter}"


class PXQLServer:
    """A worker pool executing PXQL statements with admission control.

    Args:
        database: the shared catalog (a fresh in-memory one if omitted).
        workers: worker-thread count.
        queue_size: admission-queue bound (the backpressure knob).
        budget_factory: builds the default per-request
            :class:`Budget`; ``None`` means requests run unbudgeted
            unless :meth:`submit` is given one explicitly.  A factory
            (not a shared instance) because budgets are stateful — each
            request arms its own.
        tracer: span collector shared by all workers (thread-local span
            stacks keep the trees untangled); own instance if omitted.
        metrics: registry shared by all workers; own instance if omitted.
        interpreter_factory: builds one interpreter per worker (index →
            interpreter); the default builds :class:`Interpreter` s
            sharing ``database``/``tracer``/``metrics`` with
            worker-prefixed fresh names.
        poll_s: worker idle-poll interval (also the drain poll).
        name: thread-name prefix, for debuggability.
    """

    def __init__(
        self,
        database: Database | None = None,
        workers: int = 4,
        queue_size: int = 16,
        budget_factory: Callable[[], Budget] | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        interpreter_factory: Callable[[int], Interpreter] | None = None,
        poll_s: float = 0.02,
        name: str = "pxql",
    ) -> None:
        if workers < 1:
            raise ServerError("a server needs at least one worker")
        self.database = database if database is not None else Database()
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.workers = workers
        self.name = name
        self._budget_factory = budget_factory
        self._interpreter_factory = (
            interpreter_factory
            if interpreter_factory is not None
            else self._default_interpreter
        )
        self._queue = AdmissionQueue(queue_size)
        self._poll_s = poll_s
        self._threads: list[threading.Thread] = []
        self._state = _NEW
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._stop_event = threading.Event()

    def _default_interpreter(self, worker: int) -> Interpreter:
        return _WorkerInterpreter(
            worker,
            database=self.database,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"new"``, ``"running"``, ``"draining"`` or ``"stopped"``."""
        with self._state_lock:
            return self._state

    def start(self) -> "PXQLServer":
        """Spawn the worker pool; admissions open immediately."""
        with self._state_lock:
            if self._state != _NEW:
                raise ServerError(
                    f"server cannot start from state {self._state!r}"
                )
            self._state = _RUNNING
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"{self.name}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self.metrics.gauge("server.workers").set(float(self.workers))
        return self

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Close admissions and wait for queued + in-flight work.

        Returns whether everything finished within ``timeout_s``; the
        pool keeps running either way (call :meth:`stop` to halt it).

        Idleness is judged by the admission queue's task accounting
        (:attr:`AdmissionQueue.unfinished`), which counts a request
        from admission until its worker finishes it.  Checking queue
        depth plus the in-flight counter instead would race: a worker
        dequeues (depth drops to 0) *before* it registers as in-flight,
        and a drain polling inside that handoff window would observe
        "idle" and report a clean drain with a request still about to
        run.
        """
        with self._state_lock:
            if self._state == _RUNNING:
                self._state = _DRAINING
        deadline = time.monotonic() + timeout_s
        while True:
            if self._queue.unfinished == 0:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(self._poll_s)

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Halt the pool; returns whether shutdown completed cleanly.

        With ``drain=True`` (the default) queued and in-flight requests
        finish first (up to ``timeout_s``).  Either way, any request
        still queued when the pool halts is resolved with
        ``Overloaded(reason="stopped")`` — submitters always get an
        answer.  Idempotent.
        """
        drained = True
        if drain:
            drained = self.drain(timeout_s)
        with self._state_lock:
            if self._state == _STOPPED:
                return drained
            self._state = _DRAINING  # admissions stay closed while halting
        self._stop_event.set()
        deadline = time.monotonic() + timeout_s
        joined = True
        for thread in self._threads:
            remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
            joined = joined and not thread.is_alive()
        for request in self._queue.drain_pending():
            request.result.set_error(
                Overloaded("server stopped before execution", reason="stopped")
            )
            self.metrics.counter("server.aborted").inc()
        with self._state_lock:
            self._state = _STOPPED
        self.metrics.gauge("server.workers").set(0.0)
        self.metrics.gauge("server.queue_depth").set(0.0)
        return drained and joined

    def __enter__(self) -> "PXQLServer":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop(drain=exc_type is None)

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> dict[int, object]:
        """Arrange graceful drain-then-stop on the given signals.

        Main thread only (a CPython restriction on ``signal.signal``).
        The handler hands shutdown to a background thread — signal
        handlers must return promptly — and returns the previous
        handlers so callers can restore them.
        """
        previous: dict[int, object] = {}

        def _handle(signum: int, frame: FrameType | None) -> None:
            self.tracer.event("server.signal", signum=signum)
            self.metrics.counter("server.signals").inc()
            threading.Thread(
                target=self.stop,
                kwargs={"drain": True},
                name=f"{self.name}-shutdown",
                daemon=True,
            ).start()

        for signum in signals:
            previous[signum] = signal.signal(signum, _handle)
        return previous

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self, text: str, budget: Budget | None = None
    ) -> PendingResult:
        """Admit one statement; returns the future its worker resolves.

        Raises :class:`Overloaded` — and only :class:`Overloaded` — when
        the request cannot be admitted: ``reason="queue_full"`` under
        backpressure, ``"draining"``/``"stopped"`` during shutdown.
        Execution errors travel through the returned
        :class:`PendingResult` instead.
        """
        if budget is None and self._budget_factory is not None:
            budget = self._budget_factory()
        request = Request(text=text, budget=budget)
        # The state check and the enqueue are one atomic step: checking
        # under the lock, releasing it, and then putting would leave a
        # window where stop() sweeps the queue between the two — the
        # late put would land a request behind the sweep with every
        # worker halted, never to be answered.  Holding the state lock
        # across the (non-blocking) put closes that window: any request
        # that observed "running" is in the queue before stop() can
        # transition the state, and therefore before its sweep.
        with self._state_lock:
            state = self._state
            if state == _NEW:
                raise ServerError("server not started (call start())")
            if state != _RUNNING:
                self.metrics.counter("server.rejected").inc()
                raise Overloaded(
                    f"server is {state}; not accepting requests",
                    reason="draining" if state == _DRAINING else "stopped",
                )
            fault_point("server.submit.enqueue")
            try:
                self._queue.put(request)
            except Overloaded:
                self.metrics.counter("server.rejected").inc()
                raise
        self.metrics.counter("server.submitted").inc()
        self.metrics.gauge("server.queue_depth").set(float(self._queue.depth))
        return request.result

    def execute(
        self,
        text: str,
        budget: Budget | None = None,
        timeout_s: float | None = None,
    ) -> Result:
        """Submit and wait: the blocking convenience form of :meth:`submit`."""
        value = self.submit(text, budget=budget).result(timeout_s)
        if not isinstance(value, Result):
            # Not an assert: asserts vanish under ``python -O``, and a
            # type confusion here must fail loudly in every mode rather
            # than silently hand a non-Result to the caller.
            raise ServerError(
                "internal type confusion: worker resolved the request "
                f"with a non-Result {type(value).__name__!r}"
            )
        return value

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def alive(self) -> bool:
        """Liveness: the pool was started and every worker is running."""
        with self._state_lock:
            if self._state not in (_RUNNING, _DRAINING):
                return False
        return bool(self._threads) and all(
            thread.is_alive() for thread in self._threads
        )

    def ready(self) -> bool:
        """Readiness: admissions are open and the queue has room."""
        with self._state_lock:
            if self._state != _RUNNING:
                return False
        return self.alive() and self._queue.depth < self._queue.maxsize

    def health(self) -> dict[str, object]:
        """A probe snapshot: state, pool, queue, and request counters."""
        with self._state_lock:
            state = self._state
            inflight = self._inflight
        return {
            "state": state,
            "alive": self.alive(),
            "ready": self.ready(),
            "workers": self.workers,
            "workers_alive": sum(1 for t in self._threads if t.is_alive()),
            "queue_depth": self._queue.depth,
            "queue_capacity": self._queue.maxsize,
            "inflight": inflight,
            "unfinished": self._queue.unfinished,
            "submitted": self.metrics.value("server.submitted"),
            "completed": self.metrics.value("server.completed"),
            "failed": self.metrics.value("server.failed"),
            "rejected": self.metrics.value("server.rejected"),
            "aborted": self.metrics.value("server.aborted"),
        }

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        interpreter = self._interpreter_factory(index)
        while not self._stop_event.is_set():
            request = self._queue.get(self._poll_s)
            if request is None:
                continue
            # From here until task_done() the request is counted by the
            # queue's unfinished accounting, so drain() can never see a
            # false idle inside this dequeue→execute handoff window.
            # The fault point parks a worker exactly here in the
            # regression test for the old depth/inflight TOCTOU; it runs
            # in the submitter's ContextVar snapshot so an ambient
            # injector reaches it, and an error-kind fault resolves the
            # request instead of abandoning it.
            try:
                try:
                    request.context.run(
                        fault_point, "server.worker.handoff"
                    )
                except Exception as exc:
                    request.result.set_error(exc)
                    self.metrics.counter("server.failed").inc()
                    continue
                with self._state_lock:
                    self._inflight += 1
                self.metrics.gauge("server.queue_depth").set(
                    float(self._queue.depth)
                )
                try:
                    self._run_request(interpreter, request)
                finally:
                    with self._state_lock:
                        self._inflight -= 1
            finally:
                self._queue.task_done()

    def _run_request(
        self, interpreter: Interpreter, request: Request
    ) -> None:
        self.metrics.histogram("server.queue_wait_s").observe(
            time.monotonic() - request.submitted_at
        )

        def call() -> Result:
            if request.budget is not None:
                with use_budget(request.budget):
                    return interpreter.execute(request.text)
            return interpreter.execute(request.text)

        try:
            # Replay the submitter's ContextVar snapshot in this worker:
            # threads do not inherit contextvars, so without this an
            # installed fault injector / budget / tracer rebinding would
            # silently not apply to the execution.
            result = request.context.run(call)
        except Exception as exc:
            request.result.set_error(exc)
            self.metrics.counter("server.failed").inc()
        else:
            request.result.set_result(result)
            self.metrics.counter("server.completed").inc()

    def __repr__(self) -> str:
        return (
            f"PXQLServer({self.name!r}, state={self.state}, "
            f"workers={self.workers}, queue={self._queue.depth}"
            f"/{self._queue.maxsize})"
        )
