"""Bounded admission for the PXQL server: requests, futures, the queue.

Admission control is the server's backpressure story: the queue between
:meth:`PXQLServer.submit` and the worker pool is **bounded**, and a full
queue answers with a typed :class:`~repro.errors.Overloaded` instead of
growing without limit.  Callers see exactly three terminal shapes for a
submission — a result, a typed error (``Overloaded`` at admission,
``BudgetExceeded``/``PXMLError`` from execution), or a wait timeout —
never a silently dropped request.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import Overloaded, ServerError
from repro.resilience.budget import Budget


class PendingResult:
    """A write-once future for one admitted request.

    The submitting thread waits on :meth:`result`; the worker that
    executes the request resolves it exactly once with either a value
    or an exception.  Thread-safe by construction (one event, one
    writer, resolution serialized under a small lock).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["PendingResult"], None]] = []

    @property
    def done(self) -> bool:
        """Whether the request has been resolved (value or error)."""
        return self._event.is_set()

    def _resolve(
        self, value: object, error: BaseException | None
    ) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - callbacks never poison the future
                pass

    def set_result(self, value: object) -> None:
        """Resolve with a value (worker side; first resolution wins)."""
        self._resolve(value, None)

    def set_error(self, error: BaseException) -> None:
        """Resolve with an exception (worker side; first resolution wins)."""
        self._resolve(None, error)

    def add_done_callback(
        self, callback: Callable[["PendingResult"], None]
    ) -> None:
        """Run ``callback(self)`` once resolved (immediately if already).

        Callbacks run on the resolving thread (or the registering thread
        for an already-done future); exceptions they raise are swallowed
        — a bad callback never prevents the submitter's wait from
        finishing or other callbacks from running.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        try:
            callback(self)
        except Exception:  # noqa: BLE001 - same contract as resolving side
            pass

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until resolved (or ``timeout_s``); whether it resolved."""
        return self._event.wait(timeout_s)

    def error(self, timeout_s: float | None = None) -> BaseException | None:
        """The resolving exception, or ``None`` for a value resolution."""
        if not self._event.wait(timeout_s):
            raise ServerError(
                f"request did not complete within {timeout_s:g}s"
                if timeout_s is not None
                else "request did not complete"
            )
        return self._error

    def result(self, timeout_s: float | None = None) -> object:
        """The request's outcome: returns its value or raises its error.

        Raises :class:`~repro.errors.ServerError` when the request is
        still unresolved after ``timeout_s`` (the request itself keeps
        running; use a :class:`~repro.resilience.budget.Budget` to bound
        the execution, not just the wait).
        """
        error = self.error(timeout_s)
        if error is not None:
            raise error
        return self._value


@dataclass
class Request:
    """One admitted unit of work waiting for (or on) a worker.

    Attributes:
        text: the PXQL statement to execute.
        result: the future the submitter is waiting on.
        context: the submitter's :mod:`contextvars` snapshot — the
            worker runs the request inside it, so ambient installations
            (fault injector, budget, tracer) made by the submitting
            thread reach the worker thread.
        budget: optional per-request execution budget.
        submitted_at: monotonic admission time (queue-wait metric).
    """

    text: str
    result: PendingResult = field(default_factory=PendingResult)
    context: contextvars.Context = field(
        default_factory=contextvars.copy_context
    )
    budget: Budget | None = None
    submitted_at: float = field(default_factory=time.monotonic)


class AdmissionQueue:
    """A bounded handoff between submitters and the worker pool.

    ``maxsize`` is the backpressure knob: :meth:`put` on a full queue
    raises :class:`~repro.errors.Overloaded` (``reason="queue_full"``)
    immediately — admission never blocks and the queue never grows
    beyond its bound.

    The queue also carries the server's *task accounting*: every
    admitted request stays counted in :attr:`unfinished` from the
    moment :meth:`put` accepts it until its worker calls
    :meth:`task_done` (or shutdown sweeps it via
    :meth:`drain_pending`).  Unlike :attr:`depth` — which drops the
    instant a worker dequeues, *before* the request has run —
    ``unfinished`` never passes through a false-idle window, so
    ``drain()`` can rely on ``unfinished == 0`` meaning "all admitted
    work has actually finished".
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ServerError("admission queue needs maxsize >= 1")
        self.maxsize = maxsize
        self._queue: queue.Queue[Request] = queue.Queue(maxsize=maxsize)
        self._accounting = threading.Lock()
        self._unfinished = 0

    @property
    def depth(self) -> int:
        """Requests currently waiting (approximate under concurrency)."""
        return self._queue.qsize()

    @property
    def unfinished(self) -> int:
        """Admitted requests not yet finished (queued *or* in a worker).

        Incremented atomically with admission and decremented only by
        :meth:`task_done` / :meth:`drain_pending`, so — unlike
        :attr:`depth` — there is no instant where an admitted request
        is invisible to this counter.
        """
        with self._accounting:
            return self._unfinished

    def put(self, request: Request) -> None:
        """Admit a request, or raise :class:`Overloaded` when full."""
        with self._accounting:
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                raise Overloaded(
                    f"admission queue full ({self.maxsize} waiting); "
                    "retry later",
                    reason="queue_full",
                ) from None
            self._unfinished += 1

    def get(self, timeout_s: float) -> Request | None:
        """The next request, or ``None`` after ``timeout_s`` of silence.

        A dequeued request stays counted in :attr:`unfinished` until the
        worker that took it calls :meth:`task_done`.
        """
        try:
            return self._queue.get(timeout=timeout_s)
        except queue.Empty:
            return None

    def task_done(self) -> None:
        """Mark one dequeued request finished (resolves its accounting)."""
        with self._accounting:
            if self._unfinished <= 0:
                raise ServerError("task_done() without a matching request")
            self._unfinished -= 1

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (shutdown path).

        The removed requests are taken off the :attr:`unfinished`
        accounting here — the caller resolves their futures, no worker
        will ever ``task_done`` them.
        """
        pending: list[Request] = []
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except queue.Empty:
                break
        if pending:
            with self._accounting:
                self._unfinished -= len(pending)
        return pending
