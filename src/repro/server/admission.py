"""Bounded admission for the PXQL server: requests, futures, the queue.

Admission control is the server's backpressure story: the queue between
:meth:`PXQLServer.submit` and the worker pool is **bounded**, and a full
queue answers with a typed :class:`~repro.errors.Overloaded` instead of
growing without limit.  Callers see exactly three terminal shapes for a
submission — a result, a typed error (``Overloaded`` at admission,
``BudgetExceeded``/``PXMLError`` from execution), or a wait timeout —
never a silently dropped request.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.errors import Overloaded, ServerError
from repro.resilience.budget import Budget


class PendingResult:
    """A write-once future for one admitted request.

    The submitting thread waits on :meth:`result`; the worker that
    executes the request resolves it exactly once with either a value
    or an exception.  Thread-safe by construction (one event, one
    writer).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """Whether the request has been resolved (value or error)."""
        return self._event.is_set()

    def set_result(self, value: object) -> None:
        """Resolve with a value (worker side; first resolution wins)."""
        if not self._event.is_set():
            self._value = value
            self._event.set()

    def set_error(self, error: BaseException) -> None:
        """Resolve with an exception (worker side; first resolution wins)."""
        if not self._event.is_set():
            self._error = error
            self._event.set()

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until resolved (or ``timeout_s``); whether it resolved."""
        return self._event.wait(timeout_s)

    def error(self, timeout_s: float | None = None) -> BaseException | None:
        """The resolving exception, or ``None`` for a value resolution."""
        if not self._event.wait(timeout_s):
            raise ServerError(
                f"request did not complete within {timeout_s:g}s"
                if timeout_s is not None
                else "request did not complete"
            )
        return self._error

    def result(self, timeout_s: float | None = None) -> object:
        """The request's outcome: returns its value or raises its error.

        Raises :class:`~repro.errors.ServerError` when the request is
        still unresolved after ``timeout_s`` (the request itself keeps
        running; use a :class:`~repro.resilience.budget.Budget` to bound
        the execution, not just the wait).
        """
        error = self.error(timeout_s)
        if error is not None:
            raise error
        return self._value


@dataclass
class Request:
    """One admitted unit of work waiting for (or on) a worker.

    Attributes:
        text: the PXQL statement to execute.
        result: the future the submitter is waiting on.
        context: the submitter's :mod:`contextvars` snapshot — the
            worker runs the request inside it, so ambient installations
            (fault injector, budget, tracer) made by the submitting
            thread reach the worker thread.
        budget: optional per-request execution budget.
        submitted_at: monotonic admission time (queue-wait metric).
    """

    text: str
    result: PendingResult = field(default_factory=PendingResult)
    context: contextvars.Context = field(
        default_factory=contextvars.copy_context
    )
    budget: Budget | None = None
    submitted_at: float = field(default_factory=time.monotonic)


class AdmissionQueue:
    """A bounded handoff between submitters and the worker pool.

    ``maxsize`` is the backpressure knob: :meth:`put` on a full queue
    raises :class:`~repro.errors.Overloaded` (``reason="queue_full"``)
    immediately — admission never blocks and the queue never grows
    beyond its bound.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ServerError("admission queue needs maxsize >= 1")
        self.maxsize = maxsize
        self._queue: queue.Queue[Request] = queue.Queue(maxsize=maxsize)

    @property
    def depth(self) -> int:
        """Requests currently waiting (approximate under concurrency)."""
        return self._queue.qsize()

    def put(self, request: Request) -> None:
        """Admit a request, or raise :class:`Overloaded` when full."""
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise Overloaded(
                f"admission queue full ({self.maxsize} waiting); retry later",
                reason="queue_full",
            ) from None

    def get(self, timeout_s: float) -> Request | None:
        """The next request, or ``None`` after ``timeout_s`` of silence."""
        try:
            return self._queue.get(timeout=timeout_s)
        except queue.Empty:
            return None

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (shutdown path)."""
        pending: list[Request] = []
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except queue.Empty:
                return pending
