"""Sharded multi-process PXQL serving: router, shard workers, scatter-gather.

The single-process :class:`~repro.server.server.PXQLServer` is correct
but GIL-bound.  This module scales it across *processes*:

* :class:`ShardConfig` — the picklable description of one shard: its
  catalog subdirectory, worker-pool shape, and (for chaos testing) the
  fault specs the shard installs in its own process — ContextVar-based
  injectors cannot cross a process boundary, so each shard re-creates
  its injector from the specs and a derived seed;
* ``_shard_main`` — the shard process entry point: a ``PXQLServer``
  thread pool over a shard-local :class:`Database` directory, driven by
  a small duplex-pipe RPC loop (execute / fetch / store / discard /
  names / health / metrics / drain / stop);
* :class:`ShardedServer` — the router: spawns N shard processes
  (``spawn`` start method — no fork-plus-threads hazards, and closing
  the child pipe end makes shard death visible as EOF), routes instance
  names to shards by consistent hashing over a vnode ring, keeps a
  *placement overlay* for derived results that live off their hash-home
  shard, and runs cross-shard ``PRODUCT`` as a scatter-gather step:
  fetch both serialized operands from their owning shards in parallel,
  combine with :func:`~repro.algebra.product.cartesian_product` in the
  router, store the product on the target name's shard.

**Error transport.**  Exceptions cross the pipe by *description* (type
name, message, and the structured attributes the router knows how to
rebuild), never by pickling live exception objects — a shard can
therefore never send the router something it cannot decode.  Known
types (``Overloaded``, ``BudgetExceeded``, ``DatabaseError``,
``FaultError``, ``LockTimeout``, ``ServerError``) are reconstructed
natively; everything else becomes a typed
:class:`~repro.errors.RemoteExecutionError`.  A dead shard answers
every in-flight and future request with
:class:`~repro.errors.ShardUnavailable` until
:meth:`ShardedServer.restart_shard` brings it back.

**Cache coherence.**  Each shard's engine caches key on the catalog's
``catalog.generation`` counter (see ``Engine.cache_key``): a shard
restarted over the same directory reuses whatever is still valid and
recomputes what another process invalidated — no router-coordinated
invalidation protocol is needed.

See ``docs/SERVER.md`` ("Sharding and the async front door").
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from pathlib import Path

from repro.errors import (
    BudgetExceeded,
    FaultError,
    LockTimeout,
    Overloaded,
    PXMLError,
    RebalanceError,
    RebalanceInProgress,
    RemoteExecutionError,
    ServerError,
    ShardConfigError,
    ShardUnavailable,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.pxql import ast
from repro.pxql.interpreter import Result
from repro.pxql.parser import parse
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.server.admission import PendingResult
from repro.server.rebalance import (
    MANIFEST_NAME,
    Move,
    Rebalancer,
    RebalanceStatus,
    ShardManifest,
    build_ring,
    hash_position,
    plan_rebalance,
    read_manifest,
    resume_rebalance,
    ring_owner,
    write_manifest,
)
from repro.storage.database import Database, DatabaseError

__all__ = ["MANIFEST_NAME", "ShardConfig", "ShardedServer"]

#: Errors the router rebuilds natively from a shard's description.
_DECODABLE: dict[str, type[PXMLError]] = {
    "Overloaded": Overloaded,
    "BudgetExceeded": BudgetExceeded,
    "DatabaseError": DatabaseError,
    "FaultError": FaultError,
    "LockTimeout": LockTimeout,
    "RebalanceError": RebalanceError,
    "ServerError": ServerError,
}

#: Default watchdog backoff: 5 restart attempts per outage episode,
#: 100 ms doubling to a 5 s ceiling, deterministic (chaos tests replay).
DEFAULT_WATCHDOG_BACKOFF = RetryPolicy(
    attempts=5, base_delay_s=0.1, max_delay_s=5.0, jitter=0.0
)

#: Statements that mutate the catalog entry they name; the router
#: fences these on keys whose migration copy is in flight.
_MUTATORS = (ast.DropStatement, ast.SaveStatement, ast.LoadStatement)

#: Wrapper statements that are unwrapped for routing analysis.
_WRAPPERS = (
    ast.ExplainStatement,
    ast.CheckStatement,
    ast.ProfileStatement,
    ast.TimeoutStatement,
)


@dataclass(frozen=True)
class ShardConfig:
    """The picklable recipe one shard process is built from.

    Attributes:
        index: the shard's position in the ring (stable across restarts).
        directory: the shard-local catalog directory.
        workers: worker-thread count of the shard's ``PXQLServer``.
        queue_size: the shard's admission-queue bound.
        poll_s: the shard pool's idle-poll interval.
        default_deadline_s: default per-request deadline budget
            (``None`` = unbudgeted unless the request carries one).
        fault_specs: fault specs the shard installs in its own process
            (the router's ambient injector cannot cross ``spawn``).
        fault_seed: base seed; the shard derives ``fault_seed + index``
            so different shards see different—but reproducible—schedules.
    """

    index: int
    directory: str
    workers: int = 2
    queue_size: int = 16
    poll_s: float = 0.005
    default_deadline_s: float | None = None
    fault_specs: tuple[FaultSpec, ...] = ()
    fault_seed: int = 0


def _encode_error(exc: BaseException) -> dict[str, object]:
    """Describe an exception for pipe transport (never pickles it)."""
    payload: dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("reason", "limit", "where"):
        value = getattr(exc, attr, None)
        if isinstance(value, str) and value:
            payload[attr] = value
    return payload


def _decode_error(payload: dict[str, object], shard: int) -> PXMLError:
    """Rebuild a shard's error description as a typed exception."""
    type_name = str(payload.get("type", "Exception"))
    message = str(payload.get("message", ""))
    if type_name == "Overloaded":
        reason = payload.get("reason")
        return Overloaded(
            message, reason=reason if isinstance(reason, str) else "queue_full"
        )
    if type_name == "BudgetExceeded":
        limit = payload.get("limit")
        where = payload.get("where")
        return BudgetExceeded(
            message,
            limit=limit if isinstance(limit, str) else "",
            where=where if isinstance(where, str) else "",
        )
    known = _DECODABLE.get(type_name)
    if known is not None:
        return known(message)
    return RemoteExecutionError(
        f"shard {shard} raised {type_name}: {message}", remote_type=type_name
    )


def _encode_result(result: Result) -> dict[str, object]:
    return {
        "value": result.value,
        "instance_name": result.instance_name,
        "text": result.text,
    }


def _decode_result(payload: dict[str, object]) -> Result:
    name = payload.get("instance_name")
    return Result(
        payload.get("value"),
        name if isinstance(name, str) else None,
        str(payload.get("text", "")),
    )


# ----------------------------------------------------------------------
# Shard process
# ----------------------------------------------------------------------
class _ShardRuntime:
    """The serving loop living inside one shard process."""

    def __init__(self, config: ShardConfig, conn: Connection) -> None:
        from repro.server.server import PXQLServer

        self.config = config
        self.conn = conn
        self.database = Database(config.directory)
        budget_factory: Callable[[], Budget] | None = None
        if config.default_deadline_s is not None:
            deadline = config.default_deadline_s
            budget_factory = lambda: Budget(deadline_s=deadline)  # noqa: E731
        self.server = PXQLServer(
            database=self.database,
            workers=config.workers,
            queue_size=config.queue_size,
            budget_factory=budget_factory,
            poll_s=config.poll_s,
            name=f"shard{config.index}",
        )
        self._send_lock = threading.Lock()

    def _send(self, message: dict[str, object]) -> None:
        """Send one response; pickling failures degrade to text form.

        A ``Result`` whose value is not picklable (a span tree, a live
        instance with exotic content) must not kill the shard loop —
        the textual rendering is re-sent in its place.
        """
        try:
            with self._send_lock:
                self.conn.send(message)
        except (OSError, EOFError):
            pass  # router is gone; the shard loop will see EOF and exit
        except Exception:  # noqa: BLE001 - unpicklable payloads
            fallback = dict(message)
            value = fallback.get("value")
            if isinstance(value, dict) and "text" in value:
                value = dict(value)
                value["value"] = value.get("text")
                fallback["value"] = value
            else:
                fallback["value"] = repr(value)
            try:
                with self._send_lock:
                    self.conn.send(fallback)
            except Exception:  # noqa: BLE001 - router gone mid-fallback
                pass

    def _on_execute(self, ident: int, message: dict[str, object]) -> None:
        text = str(message.get("text", ""))
        deadline = message.get("deadline_s")
        budget = (
            Budget(deadline_s=float(deadline))
            if isinstance(deadline, (int, float))
            else None
        )
        try:
            future = self.server.submit(text, budget=budget)
        except Exception as exc:  # noqa: BLE001 - transported, typed
            self._send({"id": ident, "ok": False, "error": _encode_error(exc)})
            return

        def _resolved(pending: PendingResult) -> None:
            error = pending.error(0.0)
            if error is not None:
                self._send(
                    {"id": ident, "ok": False, "error": _encode_error(error)}
                )
                return
            value = pending.result(0.0)
            if isinstance(value, Result):
                encoded: dict[str, object] = _encode_result(value)
            else:  # pragma: no cover - defended in PXQLServer.execute too
                encoded = {"value": None, "instance_name": None,
                           "text": repr(value)}
            self._send({"id": ident, "ok": True, "value": encoded})

        future.add_done_callback(_resolved)

    def _handle(self, message: dict[str, object]) -> bool:
        """Dispatch one request; returns whether to keep serving."""
        ident = message.get("id")
        if not isinstance(ident, int):
            return True
        op = message.get("op")
        if op == "execute":
            self._on_execute(ident, message)
            return True
        try:
            value = self._call(op, message)
        except Exception as exc:  # noqa: BLE001 - transported, typed
            self._send({"id": ident, "ok": False, "error": _encode_error(exc)})
            return op != "stop"
        self._send({"id": ident, "ok": True, "value": value})
        return op != "stop"

    def _call(self, op: object, message: dict[str, object]) -> object:
        from repro.io.json_codec import dumps, loads

        if op == "fetch":
            name = str(message.get("name", ""))
            return dumps(self.database.get(name))
        if op == "store":
            name = str(message.get("name", ""))
            instance = loads(str(message.get("payload", "")))
            self.database.register(name, instance, replace=True)
            if bool(message.get("save", False)):
                self.database.save(name)
            return name
        if op == "discard":
            name = str(message.get("name", ""))
            self.database.drop(name)
            return name
        if op == "names":
            return self.database.names()
        if op == "health":
            health = self.server.health()
            health["shard"] = self.config.index
            health["generation"] = self.database.generation()
            return health
        if op == "metrics":
            return self.server.metrics.as_dict()
        if op == "drain":
            timeout = message.get("timeout_s")
            return self.server.drain(
                float(timeout) if isinstance(timeout, (int, float)) else 30.0
            )
        if op == "stop":
            drain = bool(message.get("drain", True))
            timeout = message.get("timeout_s")
            return self.server.stop(
                drain=drain,
                timeout_s=(
                    float(timeout)
                    if isinstance(timeout, (int, float))
                    else 30.0
                ),
            )
        raise ServerError(f"shard {self.config.index}: unknown op {op!r}")

    def serve(self) -> None:
        self.server.start()
        try:
            while True:
                try:
                    message = self.conn.recv()
                except (EOFError, OSError):
                    break  # router gone: drain what we can, then exit
                if not isinstance(message, dict):
                    continue
                if not self._handle(message):
                    break
        finally:
            self.server.stop(drain=False, timeout_s=5.0)
            try:
                self.conn.close()
            except OSError:
                pass


def _shard_main(config: ShardConfig, conn: Connection) -> None:
    """Shard process entry point (must be a module-level name: ``spawn``
    imports it by reference in the fresh interpreter)."""
    injector = (
        FaultInjector(*config.fault_specs,
                      seed=config.fault_seed + config.index)
        if config.fault_specs
        else None
    )
    runtime = _ShardRuntime(config, conn)
    if injector is not None:
        # Installed in the shard's main thread: submissions snapshot the
        # ambient context, so every worker replays the injector.
        with injector:
            runtime.serve()
    else:
        runtime.serve()


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class _ShardHandle:
    """The router's connection to one shard process."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.index = config.index
        self._context = multiprocessing.get_context("spawn")
        self._process: BaseProcess | None = None
        self._conn: Connection | None = None
        self._reader: threading.Thread | None = None
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, PendingResult] = {}
        self._next_id = 0
        self._dead = True

    def start(self) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_shard_main,
            args=(self.config, child_conn),
            name=f"pxql-shard-{self.index}",
            daemon=True,
        )
        process.start()
        # Close the router's copy of the child end: otherwise the pipe
        # stays open after the shard dies and EOF never arrives.
        child_conn.close()
        self._process = process
        self._conn = parent_conn
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"pxql-shard-{self.index}-reader",
            daemon=True,
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        process = self._process
        return (
            not self._dead
            and process is not None
            and process.is_alive()
        )

    def _read_loop(self) -> None:
        conn = self._conn
        assert conn is not None
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict):
                continue
            ident = message.get("id")
            if not isinstance(ident, int):
                continue
            with self._pending_lock:
                pending = self._pending.pop(ident, None)
            if pending is not None:
                pending.set_result(message)
        # The shard is gone: answer everything still in flight.
        with self._pending_lock:
            self._dead = True
            orphaned = list(self._pending.values())
            self._pending.clear()
        for pending in orphaned:
            pending.set_error(
                ShardUnavailable(
                    f"shard {self.index} died with the request in flight",
                    shard=self.index,
                )
            )

    def request(self, payload: dict[str, object]) -> PendingResult:
        """Send one RPC; the future resolves with the raw response dict.

        Raises :class:`ShardUnavailable` when the shard is already dead
        (in-flight requests at death are resolved with the same error
        by the reader thread — no request is ever silently dropped).
        """
        with self._pending_lock:
            if self._dead:
                raise ShardUnavailable(
                    f"shard {self.index} is not running", shard=self.index
                )
            self._next_id += 1
            ident = self._next_id
            future = PendingResult()
            self._pending[ident] = future
        conn = self._conn
        assert conn is not None
        try:
            with self._send_lock:
                conn.send({**payload, "id": ident})
        except (OSError, ValueError, EOFError) as exc:
            with self._pending_lock:
                self._pending.pop(ident, None)
            raise ShardUnavailable(
                f"shard {self.index} is unreachable: {exc}", shard=self.index
            ) from exc
        return future

    def call(
        self, payload: dict[str, object], timeout_s: float = 30.0
    ) -> object:
        """Synchronous RPC: returns the value or raises the typed error."""
        response = self.request(payload).result(timeout_s)
        assert isinstance(response, dict)
        if response.get("ok"):
            return response.get("value")
        error = response.get("error")
        raise _decode_error(
            error if isinstance(error, dict) else {}, self.index
        )

    def kill(self) -> None:
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=10.0)
        # The reader thread observes EOF and fails in-flight requests.

    def join(self, timeout_s: float) -> bool:
        process = self._process
        if process is None:
            return True
        process.join(timeout=timeout_s)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
            return False
        return True

    def close(self) -> None:
        conn = self._conn
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass


class ShardedServer:
    """N shard processes behind a consistent-hash router.

    Args:
        directory: the root catalog directory; shard ``i`` owns the
            ``shard-i/`` subdirectory (a full ``Database`` directory
            with its own lock and generation counter).
        shards: shard-process count.
        workers_per_shard: worker-thread count inside each shard.
        queue_size: each shard's admission bound.
        poll_s: each shard pool's idle-poll interval.
        default_deadline_s: default per-request deadline applied by the
            shards (``None`` = unbudgeted).
        fault_specs: fault specs each shard installs in its own process
            (chaos testing; the router's ambient injector cannot cross
            the ``spawn`` boundary).
        fault_seed: base fault seed (shard ``i`` uses ``seed + i``).
        vnodes: virtual nodes per shard on the hash ring.
        metrics: the router's registry (own instance if omitted).
        tracer: the router's span collector (own instance if omitted).
        watchdog_interval_s: poll interval of the self-healing watchdog
            thread that auto-restarts EOF-dead shard processes
            (``None`` = watchdog off; chaos tests drive restarts by
            hand).
        watchdog_backoff: capped exponential backoff between restart
            attempts of one outage episode
            (:data:`DEFAULT_WATCHDOG_BACKOFF` if omitted); after
            ``attempts`` failed restarts the watchdog gives up on that
            shard until it is seen alive again
            (``router.watchdog_gave_up``).

    **Routing.**  An instance name's home shard is found by consistent
    hashing (SHA-256 positions, ``vnodes`` per shard).  Statements are
    routed to the home shard of their source instance; ``LIST`` is a
    broadcast-and-merge; a cross-shard ``PRODUCT`` is a scatter-gather
    run by the router.  Derived results (``AS`` targets, fresh names)
    are created on the shard that executed the statement, which may not
    be the name's hash home — the router records these in a *placement
    overlay* consulted before the ring, rebuilt from the shards' actual
    catalogs on start/restart, so later statements find them.
    """

    def __init__(
        self,
        directory: str | Path,
        shards: int = 2,
        workers_per_shard: int = 2,
        queue_size: int = 16,
        poll_s: float = 0.005,
        default_deadline_s: float | None = None,
        fault_specs: Sequence[FaultSpec] = (),
        fault_seed: int = 0,
        vnodes: int = 64,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        name: str = "pxql-shards",
        watchdog_interval_s: float | None = None,
        watchdog_backoff: RetryPolicy | None = None,
    ) -> None:
        if shards < 1:
            raise ServerError("a sharded server needs at least one shard")
        self.directory = Path(directory)
        self.shards = shards
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._workers_per_shard = workers_per_shard
        self._queue_size = queue_size
        self._poll_s = poll_s
        self._default_deadline_s = default_deadline_s
        self._fault_specs = tuple(fault_specs)
        self._fault_seed = fault_seed
        self._handles: list[_ShardHandle] = [
            _ShardHandle(self._shard_config(index)) for index in range(shards)
        ]
        self._vnodes = vnodes
        self._layout_epoch = 0
        self._ring_positions, self._ring_owners = build_ring(shards, vnodes)
        #: Derived-result placements that differ from the ring's answer.
        self._overlay: dict[str, int] = {}
        self._overlay_lock = threading.Lock()
        #: Per-key migration state during a live resize:
        #: name -> (move, phase); phase "pending"/"copying" route to the
        #: source, "committed" to the destination; "copying" also fences
        #: writes.  Cleared when the ring flips to the new layout.
        self._migration: dict[str, tuple[Move, str]] = {}
        self._migration_lock = threading.Lock()
        self._rebalance_lock = threading.Lock()
        self._rebalance_status = RebalanceStatus()
        self._counter = 0
        self._counter_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, shards), thread_name_prefix=f"{name}-router"
        )
        self._started = False
        self._stopping = False
        self._watchdog_interval_s = watchdog_interval_s
        self._watchdog_policy = (
            watchdog_backoff if watchdog_backoff is not None
            else DEFAULT_WATCHDOG_BACKOFF
        )
        self._watchdog_stop = threading.Event()
        self._watchdog: threading.Thread | None = None
        self._watchdog_state: dict[int, dict[str, float]] = {}
        #: Wait bound for the internal fetch/store legs of scatter-gather.
        self.scatter_timeout_s = 30.0

    def _shard_config(self, index: int) -> ShardConfig:
        return ShardConfig(
            index=index,
            directory=str(self.directory / f"shard-{index}"),
            workers=self._workers_per_shard,
            queue_size=self._queue_size,
            poll_s=self._poll_s,
            default_deadline_s=self._default_deadline_s,
            fault_specs=self._fault_specs,
            fault_seed=self._fault_seed,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedServer":
        """Spawn every shard process and rebuild the placement overlay.

        Before anything is spawned, an unfinished shard migration (a
        pending ``rebalance.journal`` left by a crash mid-``resize``)
        is *resumed* offline — committed cutovers keep their
        destination, uncommitted copies re-run from the
        still-authoritative source — so the manifest the count check
        reads is always a consistent layout.

        Raises :class:`~repro.errors.ShardConfigError` when the
        directory's ``shards.json`` manifest records a different shard
        count than this server was constructed with — names were placed
        by hashing over *that* ring, so reopening with another count
        would route them to the wrong shards (use :meth:`resize` to
        migrate to a new count).
        """
        if self._started:
            raise ServerError("sharded server already started")
        self.directory.mkdir(parents=True, exist_ok=True)
        self._resume_pending_rebalance()
        self._check_manifest()
        for handle in self._handles:
            handle.start()
        self._started = True
        self._stopping = False
        self._rebuild_overlay()
        self._adopt_root_catalog()
        if self._watchdog_interval_s is not None:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name=f"{self.name}-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        self.metrics.gauge("router.shards").set(float(self.shards))
        self.metrics.gauge("router.layout_epoch").set(
            float(self._layout_epoch)
        )
        return self

    def _resume_pending_rebalance(self) -> None:
        """Finish a torn migration before serving (offline, in-process)."""
        try:
            status = resume_rebalance(self.directory)
        except RebalanceError as exc:
            raise ShardConfigError(
                f"directory {self.directory} has an unresolvable pending "
                f"rebalance: {exc}",
                configured=self.shards,
            ) from exc
        if status is not None:
            self.metrics.counter("router.rebalances_resumed").inc()
            self.tracer.event(
                "router.rebalance_resumed",
                to_epoch=status.to_epoch,
                moves=status.total_moves,
            )

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop(drain=exc_type is None)

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Drain every live shard; whether all finished in time."""
        futures = []
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                futures.append(
                    handle.request({"op": "drain", "timeout_s": timeout_s})
                )
            except ShardUnavailable:
                continue
        drained = True
        for future in futures:
            try:
                response = future.result(timeout_s + 5.0)
            except PXMLError:
                drained = False
                continue
            assert isinstance(response, dict)
            drained = drained and bool(
                response.get("ok") and response.get("value")
            )
        return drained

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop every shard (drain first by default) and reap processes."""
        self._stopping = True
        watchdog = self._watchdog
        if watchdog is not None:
            self._watchdog_stop.set()
            watchdog.join(timeout=5.0)
            self._watchdog = None
        clean = True
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                handle.request(
                    {"op": "stop", "drain": drain, "timeout_s": timeout_s}
                )
            except ShardUnavailable:
                clean = False
        deadline = time.monotonic() + timeout_s
        for handle in self._handles:
            remaining = max(0.5, deadline - time.monotonic())
            clean = handle.join(remaining) and clean
            handle.close()
        self._pool.shutdown(wait=False)
        self.metrics.gauge("router.shards").set(0.0)
        return clean

    def kill_shard(self, index: int) -> None:
        """Hard-kill one shard process (chaos hook).

        In-flight requests to it resolve with
        :class:`~repro.errors.ShardUnavailable`; later submissions that
        route to it raise the same until :meth:`restart_shard`.
        """
        self._check_index(index)
        self._handles[index].kill()
        self.metrics.counter("router.shard_kills").inc()
        self.tracer.event("router.shard_killed", shard=index)

    def restart_shard(self, index: int) -> None:
        """Start a fresh process for one shard over its directory.

        The replacement re-opens the same catalog directory; its engine
        caches key on the directory's generation counter, so whatever
        survived the crash is reused and whatever changed is recomputed.
        """
        self._check_index(index)
        handle = self._handles[index]
        handle.kill()
        handle.close()
        replacement = _ShardHandle(handle.config)
        replacement.start()
        self._handles[index] = replacement
        self._refresh_overlay(index)
        self.metrics.counter("router.shard_restarts").inc()
        self.tracer.event("router.shard_restarted", shard=index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.shards:
            raise ServerError(f"no shard {index} (have {self.shards})")

    # ------------------------------------------------------------------
    # Self-healing watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Auto-restart EOF-dead shards with capped exponential backoff.

        One outage episode per shard: each failed (or immediately
        re-died) restart consumes an attempt and backs off per
        ``watchdog_backoff``; after the last attempt the watchdog gives
        up on that shard (``router.watchdog_gave_up``) until it is
        observed alive again — a manual :meth:`restart_shard` or a
        recovered process resets the episode.
        """
        interval = self._watchdog_interval_s
        assert interval is not None
        rng = random.Random(self._fault_seed)
        while not self._watchdog_stop.wait(interval):
            if not self._started or self._stopping:
                continue
            for index in range(min(self.shards, len(self._handles))):
                try:
                    handle = self._handles[index]
                except IndexError:  # racing a shrink
                    break
                state = self._watchdog_state.setdefault(
                    index, {"attempts": 0.0, "next": 0.0, "gave_up": 0.0}
                )
                if handle.alive:
                    state["attempts"] = 0.0
                    state["gave_up"] = 0.0
                    continue
                if state["gave_up"]:
                    continue
                if state["attempts"] >= self._watchdog_policy.attempts:
                    state["gave_up"] = 1.0
                    self.metrics.counter("router.watchdog_gave_up").inc()
                    self.tracer.event("router.watchdog_gave_up", shard=index)
                    continue
                now = time.monotonic()
                if now < state["next"]:
                    continue
                attempt = int(state["attempts"])
                state["attempts"] += 1.0
                state["next"] = now + self._watchdog_policy.delay_for(
                    attempt, rng
                )
                if self._stopping:
                    continue
                try:
                    self.restart_shard(index)
                except PXMLError:
                    continue  # next pass retries within the episode
                self.metrics.counter("router.watchdog_restarts").inc()
                self.tracer.event(
                    "router.watchdog_restarted", shard=index,
                    attempt=attempt + 1,
                )

    # ------------------------------------------------------------------
    # Live rebalancing
    # ------------------------------------------------------------------
    def resize(self, shards: int, timeout_s: float = 120.0) -> RebalanceStatus:
        """Migrate the catalog to ``shards`` shard processes, live.

        Serving continues throughout: each key is copied then cut over
        individually (reads follow the per-key migration state, writes
        to a key whose copy is in flight get a retryable
        :class:`~repro.errors.RebalanceInProgress`), and the whole
        migration is journaled so a crash at any instant is resumed —
        never restarted — by the next :meth:`start`.  On success the
        ring flips to the new layout and ``layout_epoch`` advances.

        Raises :class:`~repro.errors.RebalanceError` for an invalid
        target count or when a resize is already running.
        """
        if not self._started:
            raise ServerError("sharded server not started (call start())")
        if shards < 1:
            raise RebalanceError(
                f"cannot resize to {shards} shard(s): need at least one"
            )
        if not self._rebalance_lock.acquire(blocking=False):
            raise RebalanceError("a rebalance is already in progress")
        try:
            return self._resize_locked(shards, timeout_s)
        finally:
            self._rebalance_lock.release()

    def _resize_locked(
        self, shards: int, timeout_s: float
    ) -> RebalanceStatus:
        old = self.shards
        status = RebalanceStatus(
            state="planning",
            from_epoch=self._layout_epoch,
            to_epoch=self._layout_epoch,
            old_shards=old,
            new_shards=shards,
        )
        self._rebalance_status = status
        if shards == old:
            status.state = "done"
            return status
        # Grow first: destination processes must serve before any copy.
        for index in range(old, shards):
            handle = _ShardHandle(self._shard_config(index))
            handle.start()
            self._handles.append(handle)
        try:
            placements: dict[str, int] = {}
            for handle in self._handles[:old]:
                names = handle.call({"op": "names"}, timeout_s=10.0)
                if isinstance(names, list):
                    for name in names:
                        if isinstance(name, str):
                            placements[name] = handle.index
            plan = plan_rebalance(
                placements, old, shards,
                vnodes=self._vnodes, from_epoch=self._layout_epoch,
            )
            with self._migration_lock:
                self._migration = {
                    move.name: (move, "pending") for move in plan.moves
                }
            status.total_moves = len(plan.moves)
            rebalancer = Rebalancer(
                self.directory,
                _LiveShardAccess(self),
                on_phase=self._on_migration_phase,
                status=status,
            )
            with self.tracer.span(
                "router.rebalance", old_shards=old, new_shards=shards,
                moves=len(plan.moves), to_epoch=plan.to_epoch,
            ):
                rebalancer.execute(plan)
        except BaseException as exc:
            status.state = "failed"
            status.error = str(exc)
            # Committed cutovers keep routing to their destination (the
            # source copy may already be gone); everything earlier
            # reverts to plain routing and is writable again.  The
            # journal still holds the pending plan, so the next
            # start() finishes the migration offline.
            with self._migration_lock:
                self._migration = {
                    name: entry
                    for name, entry in self._migration.items()
                    if entry[1] == "committed"
                }
            self.metrics.counter("router.rebalances_failed").inc()
            raise
        # Flip the ring: the new layout owns every key; committed-move
        # routing and the fences retire with the migration map.
        self._ring_positions, self._ring_owners = build_ring(
            shards, self._vnodes
        )
        self.shards = shards
        self._layout_epoch = plan.to_epoch
        with self._migration_lock:
            self._migration = {}
        if shards < old:
            retired = self._handles[shards:]
            del self._handles[shards:]
            for handle in retired:
                self._watchdog_state.pop(handle.index, None)
                try:
                    handle.request(
                        {"op": "stop", "drain": True, "timeout_s": timeout_s}
                    )
                except ShardUnavailable:
                    pass
                handle.join(timeout_s)
                handle.close()
        self._rebuild_overlay()
        self.metrics.gauge("router.shards").set(float(self.shards))
        self.metrics.gauge("router.layout_epoch").set(
            float(self._layout_epoch)
        )
        self.metrics.counter("router.rebalances").inc()
        self.tracer.event(
            "router.rebalanced",
            old_shards=old, new_shards=shards,
            moves=status.total_moves, layout_epoch=self._layout_epoch,
        )
        return status

    def _on_migration_phase(self, name: str, phase: str) -> None:
        """Flip one key's routing exactly at its durable cutover."""
        with self._migration_lock:
            entry = self._migration.get(name)
            if entry is None:
                return
            move = entry[0]
            if phase == "done":
                # Keep routing to the destination until the ring flips.
                self._migration[name] = (move, "committed")
            else:
                self._migration[name] = (move, phase)

    def rebalance_status(self) -> dict[str, object]:
        """The last/current migration's progress, plus the live layout."""
        snapshot = self._rebalance_status.as_dict()
        snapshot["layout_epoch"] = self._layout_epoch
        snapshot["shards"] = self.shards
        return snapshot

    def _check_manifest(self) -> None:
        """Write ``shards.json`` on first init; refuse a count mismatch.

        Reopening with a different shard count is an error, never a
        silent rehash — names were placed over the recorded ring.  Use
        :meth:`resize` (which migrates and bumps the layout epoch) to
        change the count.  The recorded vnode count and layout epoch
        are adopted, so a server constructed before a rebalance bumped
        the epoch still reports the durable one.
        """
        try:
            manifest = read_manifest(self.directory)
        except RebalanceError as exc:
            raise ShardConfigError(
                str(exc), configured=self.shards
            ) from exc
        if manifest is None:
            write_manifest(
                self.directory,
                ShardManifest(
                    shards=self.shards,
                    vnodes=self._vnodes,
                    layout_epoch=0,
                ),
            )
            self._layout_epoch = 0
            return
        if manifest.shards != self.shards:
            raise ShardConfigError(
                f"directory {self.directory} was sharded with "
                f"{manifest.shards} shard(s) but this server is "
                f"configured for {self.shards}; reopen with the recorded "
                "count, then resize(n) to migrate live",
                configured=self.shards,
                recorded=manifest.shards,
            )
        if manifest.vnodes != self._vnodes:
            self._vnodes = manifest.vnodes
            self._ring_positions, self._ring_owners = build_ring(
                self.shards, self._vnodes
            )
        self._layout_epoch = manifest.layout_epoch

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def owner(self, name: str) -> int:
        """The shard an instance name is *served* by, right now.

        Consulted in order: the per-key migration state (a committed
        cutover owns the name at its destination, anything earlier
        still at its source), the placement overlay, then the ring.
        """
        with self._migration_lock:
            entry = self._migration.get(name)
        if entry is not None:
            move, phase = entry
            return move.dest if phase == "committed" else move.source
        with self._overlay_lock:
            placed = self._overlay.get(name)
        if placed is not None:
            return placed
        return ring_owner(self._ring_positions, self._ring_owners, name)

    def _record_placement(self, name: str, shard: int) -> None:
        home = ring_owner(self._ring_positions, self._ring_owners, name)
        with self._overlay_lock:
            if home == shard:
                self._overlay.pop(name, None)
            else:
                self._overlay[name] = shard

    def _forget_placement(self, name: str) -> None:
        with self._overlay_lock:
            self._overlay.pop(name, None)

    def _rebuild_overlay(self) -> None:
        with self._overlay_lock:
            self._overlay.clear()
        for handle in self._handles:
            self._refresh_overlay(handle.index)

    def _refresh_overlay(self, index: int) -> None:
        """Re-learn which names actually live on shard ``index``."""
        handle = self._handles[index]
        with self._overlay_lock:
            stale = [
                name for name, shard in self._overlay.items()
                if shard == index
            ]
            for name in stale:
                del self._overlay[name]
        if not handle.alive:
            return
        try:
            names = handle.call({"op": "names"}, timeout_s=10.0)
        except PXMLError:
            return
        if isinstance(names, list):
            for name in names:
                if isinstance(name, str):
                    self._record_placement(name, index)

    def _adopt_root_catalog(self) -> None:
        """Import loose instances from the root directory onto their
        home shards (first start over a pre-sharding catalog).

        Pointing ``--shards N`` at a directory previously served by a
        single-process server must not silently serve an empty catalog:
        instances sitting at the root are placed (and saved) on their
        hash-home shards.  Names some shard already serves are skipped,
        so a restart never overwrites newer shard-local versions; the
        root files are left in place as the pre-migration originals.
        """
        from repro.io.json_codec import dumps

        try:
            root = Database(self.directory)
            loose = root.names()
        except PXMLError:
            return
        if not loose:
            return
        served: set[str] = set()
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                names = handle.call({"op": "names"}, timeout_s=10.0)
            except PXMLError:
                continue
            if isinstance(names, list):
                served.update(n for n in names if isinstance(n, str))
        adopted = 0
        for name in loose:
            if name in served:
                continue
            try:
                self.register_instance(name, dumps(root.get(name)))
            except PXMLError:
                continue  # a corrupt/racing root file never blocks startup
            adopted += 1
        if adopted:
            self.metrics.counter("router.adopted_instances").inc(adopted)
            self.tracer.event("router.adopted_instances", count=adopted)

    def _fresh_name(self) -> str:
        with self._counter_lock:
            self._counter += 1
            return f"_router_result{self._counter}"

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self, text: str, deadline_s: float | None = None
    ) -> PendingResult:
        """Route one statement; returns the future the router resolves.

        Mirrors :meth:`PXQLServer.submit`: admission problems raise
        :class:`~repro.errors.Overloaded` /
        :class:`~repro.errors.ShardUnavailable` synchronously, execution
        errors travel through the returned future as typed exceptions.
        """
        if not self._started:
            raise ServerError("sharded server not started (call start())")
        self.metrics.counter("router.submitted").inc()
        try:
            statement = parse(text)
        except PXMLError as exc:
            # Parse errors are execution errors, not admission errors:
            # surface them through the future like the thread server does.
            future = PendingResult()
            future.set_error(exc)
            self.metrics.counter("router.failed").inc()
            return future
        inner = statement
        while isinstance(inner, _WRAPPERS):
            inner = inner.statement
        fenced = self._fenced_write(inner)
        if fenced is not None:
            future = PendingResult()
            future.set_error(RebalanceInProgress(
                f"instance {fenced!r} is mid-migration (copy in flight); "
                "retry shortly",
                name=fenced,
            ))
            self.metrics.counter("router.writes_fenced").inc()
            self.metrics.counter("router.failed").inc()
            return future
        if isinstance(inner, ast.ProductStatement):
            left_owner = self.owner(inner.left)
            right_owner = self.owner(inner.right)
            if left_owner != right_owner:
                if not isinstance(
                    statement, (ast.ProductStatement, ast.TimeoutStatement)
                ):
                    future = PendingResult()
                    future.set_error(ServerError(
                        "cross-shard PRODUCT cannot run under "
                        f"{type(statement).__name__}: both operands must "
                        "live on one shard for wrapped statements"
                    ))
                    self.metrics.counter("router.failed").inc()
                    return future
                return self._submit_scatter_product(
                    inner, left_owner, right_owner, deadline_s
                )
        if isinstance(inner, ast.ListStatement):
            return self._submit_broadcast_list()
        shard = self._route(inner)
        return self._submit_to_shard(shard, text, deadline_s, inner)

    def execute(
        self,
        text: str,
        deadline_s: float | None = None,
        timeout_s: float | None = None,
    ) -> Result:
        """Submit and wait: the blocking convenience form of :meth:`submit`."""
        value = self.submit(text, deadline_s=deadline_s).result(timeout_s)
        if not isinstance(value, Result):
            raise ServerError(
                "internal type confusion: router resolved the request "
                f"with a non-Result {type(value).__name__!r}"
            )
        return value

    def _fenced_write(self, inner: ast.Statement) -> str | None:
        """The first mutated name whose migration copy is in flight.

        A write accepted on the source *after* the copy read it would
        silently vanish at cutover, so mutating statements (``DROP`` /
        ``SAVE`` / ``LOAD`` and any ``AS``-target derivation) on a key
        in its copy window are refused with the typed retryable
        :class:`~repro.errors.RebalanceInProgress` instead.  The window
        closes at the durable ``move-commit`` — typically milliseconds.
        """
        names: list[str] = []
        if isinstance(inner, _MUTATORS):
            names.append(inner.name)
        target = getattr(inner, "target", None)
        if isinstance(target, str):
            names.append(target)
        if not names:
            return None
        with self._migration_lock:
            for name in names:
                entry = self._migration.get(name)
                if entry is not None and entry[1] == "copying":
                    return name
        return None

    def _route(self, inner: ast.Statement) -> int:
        """The shard a (non-product, non-list) statement belongs on."""
        source = getattr(inner, "source", None)
        if isinstance(source, str):
            return self.owner(source)
        name = getattr(inner, "name", None)
        if isinstance(name, str):
            return self.owner(name)
        if isinstance(inner, ast.ProductStatement):
            return self.owner(inner.left)  # same-shard product
        # Sourceless statements (SET ...) go to shard 0.
        return 0

    def _submit_to_shard(
        self,
        shard: int,
        text: str,
        deadline_s: float | None,
        inner: ast.Statement,
        retried: bool = False,
    ) -> PendingResult:
        handle = self._handles[shard]
        outer = PendingResult()
        payload: dict[str, object] = {"op": "execute", "text": text}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        remote = handle.request(payload)  # raises ShardUnavailable when dead

        def _resolved(pending: PendingResult) -> None:
            error = pending.error(0.0)
            if error is not None:
                retry_shard = self._dual_check_shard(
                    inner, shard, error, retried
                )
                if retry_shard is not None:
                    self.metrics.counter("router.dual_check_retries").inc()
                    chained = self._submit_to_shard(
                        retry_shard, text, deadline_s, inner, retried=True
                    )

                    def _chain(p: PendingResult) -> None:
                        chained_error = p.error(0.0)
                        if chained_error is not None:
                            outer.set_error(chained_error)
                        else:
                            outer.set_result(p.result(0.0))

                    chained.add_done_callback(_chain)
                    return
                self.metrics.counter("router.failed").inc()
                outer.set_error(error)
                return
            response = pending.result(0.0)
            assert isinstance(response, dict)
            if not response.get("ok"):
                raw = response.get("error")
                decoded = _decode_error(
                    raw if isinstance(raw, dict) else {}, shard
                )
                retry_shard = self._dual_check_shard(
                    inner, shard, decoded, retried
                )
                if retry_shard is not None:
                    self.metrics.counter("router.dual_check_retries").inc()
                    chained = self._submit_to_shard(
                        retry_shard, text, deadline_s, inner, retried=True
                    )

                    def _chain(p: PendingResult) -> None:
                        chained_error = p.error(0.0)
                        if chained_error is not None:
                            outer.set_error(chained_error)
                        else:
                            outer.set_result(p.result(0.0))

                    chained.add_done_callback(_chain)
                    return
                self.metrics.counter("router.failed").inc()
                outer.set_error(decoded)
                return
            value = response.get("value")
            result = (
                _decode_result(value) if isinstance(value, dict)
                else Result(None, None, repr(value))
            )
            if result.instance_name is not None:
                self._record_placement(result.instance_name, shard)
            if isinstance(inner, ast.DropStatement):
                self._forget_placement(inner.name)
            self.metrics.counter("router.completed").inc()
            outer.set_result(result)

        remote.add_done_callback(_resolved)
        return outer

    def _dual_check_shard(
        self,
        inner: ast.Statement,
        shard: int,
        error: BaseException,
        retried: bool,
    ) -> int | None:
        """Where to retry a failed statement whose key moved mid-flight.

        During a migration a read routed to the source shard can lose
        the race with the cutover (the source copy is deleted right
        after ``move-commit``) and come back as an unknown-instance
        :class:`DatabaseError` — or as :class:`ShardUnavailable` when
        the source died.  If the statement's key is now owned by a
        different shard, the read is retried exactly once there; any
        other failure stays a failure.
        """
        if retried or not isinstance(
            error, (DatabaseError, ShardUnavailable)
        ):
            return None
        source = getattr(inner, "source", None)
        name = (
            source if isinstance(source, str)
            else getattr(inner, "name", None)
        )
        if not isinstance(name, str):
            return None
        current = self.owner(name)
        if current == shard or not 0 <= current < len(self._handles):
            return None
        return current

    def _submit_broadcast_list(self) -> PendingResult:
        """``LIST`` fans to every live shard; the union comes back."""
        outer = PendingResult()
        futures: list[tuple[int, PendingResult]] = []
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                futures.append(
                    (handle.index, handle.request({"op": "names"}))
                )
            except ShardUnavailable:
                continue

        def _gather() -> None:
            names: set[str] = set()
            try:
                for shard, future in futures:
                    response = future.result(self.scatter_timeout_s)
                    assert isinstance(response, dict)
                    if not response.get("ok"):
                        raw = response.get("error")
                        raise _decode_error(
                            raw if isinstance(raw, dict) else {}, shard
                        )
                    value = response.get("value")
                    if isinstance(value, list):
                        names.update(n for n in value if isinstance(n, str))
            except Exception as exc:  # noqa: BLE001 - typed via decode
                self.metrics.counter("router.failed").inc()
                outer.set_error(exc)
                return
            merged = sorted(names)
            self.metrics.counter("router.completed").inc()
            outer.set_result(
                Result(merged, None, "\n".join(merged) if merged else "(empty)")
            )

        self._pool.submit(_gather)
        return outer

    # ------------------------------------------------------------------
    # Scatter-gather product
    # ------------------------------------------------------------------
    def _submit_scatter_product(
        self,
        stmt: ast.ProductStatement,
        left_owner: int,
        right_owner: int,
        deadline_s: float | None,
    ) -> PendingResult:
        """Cross-shard ``PRODUCT``: fetch both operands in parallel,
        combine in the router, store on the target name's home shard."""
        outer = PendingResult()
        self.metrics.counter("router.scatter_products").inc()
        timeout = deadline_s if deadline_s is not None else self.scatter_timeout_s

        def _run() -> None:
            from repro.algebra.product import cartesian_product
            from repro.io.json_codec import dumps, loads

            try:
                with self.tracer.span(
                    "router.scatter_product",
                    left=stmt.left, right=stmt.right,
                    left_shard=left_owner, right_shard=right_owner,
                ):
                    left_handle = self._handles[left_owner]
                    right_handle = self._handles[right_owner]
                    # Scatter: both fetches in flight concurrently.
                    left_future = left_handle.request(
                        {"op": "fetch", "name": stmt.left}
                    )
                    right_future = right_handle.request(
                        {"op": "fetch", "name": stmt.right}
                    )
                    left_payload = self._gather_fetch(
                        left_future, left_owner, timeout
                    )
                    right_payload = self._gather_fetch(
                        right_future, right_owner, timeout
                    )
                    product = cartesian_product(
                        loads(left_payload),
                        loads(right_payload),
                        stmt.new_root,
                    )
                    target = (
                        stmt.target if stmt.target is not None
                        else self._fresh_name()
                    )
                    target_owner = self.owner(target)
                    self._handles[target_owner].call(
                        {
                            "op": "store",
                            "name": target,
                            "payload": dumps(product),
                        },
                        timeout_s=timeout,
                    )
                    self._record_placement(target, target_owner)
            except Exception as exc:  # noqa: BLE001 - typed transport
                self.metrics.counter("router.failed").inc()
                outer.set_error(
                    exc if isinstance(exc, PXMLError)
                    else ServerError(f"scatter-gather product failed: {exc}")
                )
                return
            self.metrics.counter("router.completed").inc()
            outer.set_result(
                Result(
                    product, target,
                    f"product of {stmt.left} and {stmt.right} -> {target} "
                    f"({len(product)} objects)",
                )
            )

        self._pool.submit(_run)
        return outer

    def _gather_fetch(
        self, future: PendingResult, shard: int, timeout_s: float
    ) -> str:
        response = future.result(timeout_s)
        assert isinstance(response, dict)
        if not response.get("ok"):
            raw = response.get("error")
            raise _decode_error(raw if isinstance(raw, dict) else {}, shard)
        value = response.get("value")
        if not isinstance(value, str):
            raise ServerError(
                f"shard {shard} answered a fetch with {type(value).__name__}"
            )
        return value

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    def register_instance(
        self, name: str, payload: str, save: bool = True
    ) -> int:
        """Place a serialized instance on its home shard; returns the shard.

        ``payload`` is the JSON text of
        :func:`repro.io.json_codec.dumps` — the router never holds live
        instances for routine placement, only their wire form.
        """
        shard = self.owner(name)
        self._handles[shard].call(
            {"op": "store", "name": name, "payload": payload, "save": save},
            timeout_s=self.scatter_timeout_s,
        )
        self._record_placement(name, shard)
        return shard

    def fetch_instance(self, name: str) -> str:
        """The serialized JSON of ``name`` from its owning shard."""
        value = self._handles[self.owner(name)].call(
            {"op": "fetch", "name": name}, timeout_s=self.scatter_timeout_s
        )
        if not isinstance(value, str):
            raise ServerError(
                f"fetch of {name!r} answered {type(value).__name__}"
            )
        return value

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def alive(self) -> bool:
        """Liveness: started and every shard process is running."""
        return self._started and all(h.alive for h in self._handles)

    def ready(self) -> bool:
        """Readiness: at least every shard is up (degrading routers are
        not ready — a request may route to the dead shard)."""
        return self.alive()

    def health(self) -> dict[str, object]:
        """Router counters plus each live shard's own health probe."""
        shard_health: list[dict[str, object]] = []
        for handle in self._handles:
            if not handle.alive:
                shard_health.append(
                    {"shard": handle.index, "state": "dead", "alive": False}
                )
                continue
            try:
                health = handle.call({"op": "health"}, timeout_s=5.0)
            except PXMLError as exc:
                shard_health.append(
                    {"shard": handle.index, "state": "unreachable",
                     "alive": False, "error": str(exc)}
                )
                continue
            shard_health.append(
                health if isinstance(health, dict)
                else {"shard": handle.index, "state": "unknown"}
            )
        with self._migration_lock:
            migrating = len(self._migration)
        return {
            "alive": self.alive(),
            "ready": self.ready(),
            "shards": self.shards,
            "shards_alive": sum(1 for h in self._handles if h.alive),
            "overlay_size": len(self._overlay),
            "layout_epoch": self._layout_epoch,
            "migrating_keys": migrating,
            "rebalance_state": self._rebalance_status.state,
            "submitted": self.metrics.value("router.submitted"),
            "completed": self.metrics.value("router.completed"),
            "failed": self.metrics.value("router.failed"),
            "scatter_products": self.metrics.value("router.scatter_products"),
            "shard_health": shard_health,
        }

    def metrics_snapshot(self) -> dict[str, dict[str, object]]:
        """Router metrics with each shard's counters mirrored in
        (``shard0.server.completed``, ...)."""
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                snapshot = handle.call({"op": "metrics"}, timeout_s=5.0)
            except PXMLError:
                continue
            if isinstance(snapshot, dict):
                self.metrics.import_snapshot(
                    f"shard{handle.index}",
                    {
                        str(key): value
                        for key, value in snapshot.items()
                        if isinstance(value, dict)
                    },
                )
        return self.metrics.as_dict()

    def shard_directories(self) -> list[Path]:
        """Each shard's catalog directory (for audits and tests)."""
        return [Path(h.config.directory) for h in self._handles]

    def __repr__(self) -> str:
        live = sum(1 for h in self._handles if h.alive)
        return (
            f"ShardedServer({self.name!r}, shards={live}/{self.shards}, "
            f"dir={str(self.directory)!r})"
        )


class _LiveShardAccess:
    """:class:`~repro.server.rebalance.ShardAccess` over live shard
    processes: the copy leg is a journaled ``store`` (with save) on the
    destination's own catalog, the delete leg a ``discard`` on the
    source — each individually crash-consistent in the shard that runs
    it."""

    def __init__(self, server: ShardedServer) -> None:
        self.server = server

    def fetch(self, shard: int, name: str) -> str:
        value = self.server._handles[shard].call(
            {"op": "fetch", "name": name},
            timeout_s=self.server.scatter_timeout_s,
        )
        if not isinstance(value, str):
            raise ServerError(
                f"shard {shard} answered a fetch with {type(value).__name__}"
            )
        return value

    def store(self, shard: int, name: str, payload: str) -> None:
        self.server._handles[shard].call(
            {"op": "store", "name": name, "payload": payload, "save": True},
            timeout_s=self.server.scatter_timeout_s,
        )

    def delete(self, shard: int, name: str) -> None:
        try:
            self.server._handles[shard].call(
                {"op": "discard", "name": name},
                timeout_s=self.server.scatter_timeout_s,
            )
        except DatabaseError:
            pass  # already gone: resume re-runs deletes idempotently


# Backward-compatible alias: the ring hash moved to repro.server.rebalance
# so offline tools (resume, fsck, the crash sweep) need no router import.
_hash = hash_position
