"""An asyncio HTTP/JSON front door for PXQL serving (stdlib only).

:class:`HttpFrontDoor` puts a small, dependency-free HTTP/1.1 endpoint
in front of any backend satisfying :class:`Backend` — the thread-pool
:class:`~repro.server.server.PXQLServer` and the multi-process
:class:`~repro.server.shard.ShardedServer` both do:

====================  ==================================================
route                 behavior
====================  ==================================================
``POST /execute``     ``{"statement": ..., "timeout_s"?: ...}`` —
                      blocking execute; 200 with the result, or a typed
                      JSON error (see the status map below)
``POST /submit``      non-blocking admission; 202 with ``{"id": ...}``
``GET /result/<id>``  200 with the result once done, 202 while pending,
                      404 for unknown ids, 410 for ids whose slot
                      expired unclaimed; results are delivered once
                      (the slot is freed on pickup)
``GET /health``       the backend's health snapshot; 200 when ready,
                      503 otherwise (a load-balancer-friendly probe)
``GET /metrics``      the metrics registry as JSON
``POST /rebalance``   ``{"shards": N}`` — start a live shard-layout
                      migration on a sharded backend; 202 with the
                      status snapshot (the migration runs in the
                      background), 409 if one is already in progress,
                      400 for backends that cannot resize
``GET /rebalance/status``  current migration status snapshot
====================  ==================================================

**Typed error translation.**  Execution and admission errors become
``{"error": {"type", "message", ...}}`` bodies with meaningful status
codes: ``Overloaded(queue_full)`` → 429, ``Overloaded(draining/
stopped)``, ``ShardUnavailable`` and ``RebalanceInProgress`` (a write
fenced off mid-migration; retryable) → 503, ``RebalanceError`` → 409,
``BudgetExceeded`` → 408, any other :class:`~repro.errors.PXMLError`
(parse errors, check failures, unknown instances) → 400, anything
unrecognized → 500.  Clients always see JSON, never a traceback.

**Pending-result retention.**  Submitted-but-never-claimed results used
to accumulate in the pending map forever — a slow leak under any client
that submits and walks away.  Slots now expire ``result_ttl_s`` seconds
after submission: a periodic sweep (and an opportunistic one on every
submit) frees them, counts each eviction in ``http.results_expired``,
and remembers the evicted ids so late pollers get an honest ``410
Gone`` instead of a 404.  The map is also hard-bounded at
``max_pending`` slots — when full, the oldest slots are evicted first
(counted the same way) so memory stays bounded even under a flood.

**Shutdown.**  :meth:`HttpFrontDoor.install_signal_handlers` arranges
drain-then-stop on ``SIGTERM``/``SIGINT``: admissions stop (503s),
shards drain, the listener closes, :meth:`serve_forever` returns.

Blocking backend calls run in the event loop's default executor, so
the loop itself never stalls on a slow statement.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from collections import OrderedDict
from typing import Protocol

from repro.errors import (
    BudgetExceeded,
    Overloaded,
    PXMLError,
    RebalanceError,
    RebalanceInProgress,
    ServerError,
    ShardUnavailable,
)
from repro.obs.metrics import MetricsRegistry
from repro.pxql.interpreter import Result
from repro.server.admission import PendingResult

#: Largest accepted request body (bytes); statements are small.
MAX_BODY_BYTES = 1 << 20

#: Default wait bound for ``POST /execute`` (seconds).
DEFAULT_EXECUTE_TIMEOUT_S = 60.0

#: How long an unclaimed ``/submit`` result is retained (seconds).
DEFAULT_RESULT_TTL_S = 300.0

#: Hard cap on simultaneously retained pending results.
DEFAULT_MAX_PENDING = 1024

#: How many evicted ids are remembered for 410 (vs 404) answers.
EXPIRED_ID_MEMORY = 4096


class Backend(Protocol):
    """What the front door needs from a serving backend."""

    metrics: MetricsRegistry

    def submit(self, text: str) -> PendingResult: ...

    def health(self) -> dict[str, object]: ...

    def alive(self) -> bool: ...

    def ready(self) -> bool: ...

    def drain(self, timeout_s: float = 30.0) -> bool: ...

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> bool: ...


def error_payload(exc: BaseException) -> tuple[int, dict[str, object]]:
    """``(http_status, json_body)`` for an execution/admission error."""
    body: dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("reason", "limit", "where", "shard", "remote_type"):
        value = getattr(exc, attr, None)
        if isinstance(value, (str, int)) and value != "":
            body[attr] = value
    if isinstance(exc, Overloaded):
        status = 429 if exc.reason == "queue_full" else 503
    elif isinstance(exc, (ShardUnavailable, RebalanceInProgress)):
        status = 503
    elif isinstance(exc, RebalanceError):
        status = 409
    elif isinstance(exc, BudgetExceeded):
        status = 408
    elif isinstance(exc, PXMLError):
        status = 400
    else:
        status = 500
    return status, {"error": body}


def _result_payload(result: Result) -> dict[str, object]:
    value = result.value
    if not isinstance(value, (str, int, float, bool, list, dict, type(None))):
        value = result.text  # non-JSON values degrade to their rendering
    return {
        "value": value,
        "instance_name": result.instance_name,
        "text": result.text,
    }


class _Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, path: str, body: bytes) -> None:
        self.method = method
        self.path = path
        self.body = body

    def json(self) -> dict[str, object]:
        if not self.body:
            return {}
        data = json.loads(self.body.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data


class HttpFrontDoor:
    """Serve a PXQL backend over HTTP/JSON on an asyncio event loop.

    Args:
        backend: the serving backend (thread server or sharded router).
        host: bind address.
        port: bind port (0 = ephemeral; see :attr:`bound_port`).
        execute_timeout_s: default wait bound for ``POST /execute``.
        result_ttl_s: how long an unclaimed submit result is retained
            before it is expired (and its id answers 410).
        max_pending: hard bound on retained pending results; oldest
            slots are evicted first when full.
    """

    def __init__(
        self,
        backend: Backend,
        host: str = "127.0.0.1",
        port: int = 8080,
        execute_timeout_s: float = DEFAULT_EXECUTE_TIMEOUT_S,
        result_ttl_s: float = DEFAULT_RESULT_TTL_S,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.execute_timeout_s = execute_timeout_s
        self.result_ttl_s = result_ttl_s
        self.max_pending = max_pending
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        self._pending_lock = threading.Lock()
        self._pending: OrderedDict[int, tuple[PendingResult, float]] = (
            OrderedDict()
        )
        self._expired_ids: OrderedDict[int, None] = OrderedDict()
        self._next_id = 0
        self._draining = False
        self._sweeper: asyncio.Task[None] | None = None

    @property
    def bound_port(self) -> int:
        """The actual listening port (after :meth:`start`)."""
        server = self._server
        if server is None or not server.sockets:
            return self.port
        port = server.sockets[0].getsockname()[1]
        return int(port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "HttpFrontDoor":
        """Bind the listener (idempotent-hostile: call once)."""
        if self._server is not None:
            raise ServerError("front door already started")
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._sweeper = asyncio.ensure_future(self._sweep_loop())
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a handled signal) fires."""
        if self._server is None or self._shutdown is None:
            raise ServerError("front door not started (call start())")
        await self._shutdown.wait()

    async def shutdown(self, drain_timeout_s: float = 30.0) -> None:
        """Drain the backend, stop it, close the listener."""
        self._draining = True
        sweeper = self._sweeper
        if sweeper is not None:
            sweeper.cancel()
            self._sweeper = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.backend.drain(drain_timeout_s)
        )
        await loop.run_in_executor(
            None, lambda: self.backend.stop(False, drain_timeout_s)
        )
        server = self._server
        if server is not None:
            server.close()
            await server.wait_closed()
        if self._shutdown is not None:
            self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Drain-then-stop on SIGTERM/SIGINT (main-thread loops only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(self.shutdown()),
            )

    # ------------------------------------------------------------------
    # Pending-result retention
    # ------------------------------------------------------------------
    def _remember_expired(self, ident: int) -> None:
        """Record an evicted id (bounded) so late polls get 410 not 404."""
        self._expired_ids[ident] = None
        while len(self._expired_ids) > EXPIRED_ID_MEMORY:
            self._expired_ids.popitem(last=False)

    def _expire_locked(self, ident: int) -> None:
        self._pending.pop(ident, None)
        self._remember_expired(ident)
        self.backend.metrics.counter("http.results_expired").inc()

    def sweep_pending(self) -> int:
        """Expire unclaimed results past their TTL; returns how many."""
        deadline = time.monotonic() - self.result_ttl_s
        with self._pending_lock:
            stale = [
                ident
                for ident, (_, created) in self._pending.items()
                if created <= deadline
            ]
            for ident in stale:
                self._expire_locked(ident)
        return len(stale)

    async def _sweep_loop(self) -> None:
        interval = min(max(self.result_ttl_s / 4.0, 0.05), 30.0)
        try:
            while True:
                await asyncio.sleep(interval)
                self.sweep_pending()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            status, body = await self._dispatch(request)
        except (ValueError, UnicodeDecodeError) as exc:
            status, body = 400, {
                "error": {"type": "BadRequest", "message": str(exc)}
            }
        except Exception as exc:  # noqa: BLE001 - last-resort JSON 500
            status, body = 500, {
                "error": {"type": type(exc).__name__, "message": str(exc)}
            }
        try:
            await self._write_response(writer, status, body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _Request | None:
        try:
            request_line = await reader.readline()
        except (OSError, ConnectionError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise ValueError("bad Content-Length header") from exc
        if content_length > MAX_BODY_BYTES:
            raise ValueError(
                f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return _Request(method, path, body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, object],
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   408: "Request Timeout", 409: "Conflict", 410: "Gone",
                   429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: _Request
    ) -> tuple[int, dict[str, object]]:
        if request.path == "/execute" and request.method == "POST":
            return await self._route_execute(request)
        if request.path == "/submit" and request.method == "POST":
            return await self._route_submit(request)
        if request.path.startswith("/result/") and request.method == "GET":
            return await self._route_result(request)
        if request.path == "/health" and request.method == "GET":
            return await self._route_health()
        if request.path == "/rebalance" and request.method == "POST":
            return await self._route_rebalance(request)
        if request.path == "/rebalance/status" and request.method == "GET":
            return self._route_rebalance_status()
        if request.path == "/metrics" and request.method == "GET":
            return 200, {"metrics": self.backend.metrics.as_dict()}
        return 404, {
            "error": {"type": "NotFound", "message": request.path}
        }

    def _statement_of(self, request: _Request) -> tuple[str, float]:
        data = request.json()
        statement = data.get("statement")
        if not isinstance(statement, str) or not statement.strip():
            raise ValueError('missing "statement" string')
        timeout = data.get("timeout_s")
        timeout_s = (
            float(timeout)
            if isinstance(timeout, (int, float)) and timeout > 0
            else self.execute_timeout_s
        )
        return statement, timeout_s

    async def _route_execute(
        self, request: _Request
    ) -> tuple[int, dict[str, object]]:
        statement, timeout_s = self._statement_of(request)
        if self._draining:
            return error_payload(
                Overloaded("front door is draining", reason="draining")
            )
        loop = asyncio.get_running_loop()

        def _call() -> Result:
            value = self.backend.submit(statement).result(timeout_s)
            if not isinstance(value, Result):
                raise ServerError(
                    "backend resolved the request with a non-Result "
                    f"{type(value).__name__!r}"
                )
            return value

        try:
            result = await loop.run_in_executor(None, _call)
        except Exception as exc:  # noqa: BLE001 - typed JSON transport
            return error_payload(exc)
        return 200, {"result": _result_payload(result)}

    async def _route_submit(
        self, request: _Request
    ) -> tuple[int, dict[str, object]]:
        statement, _ = self._statement_of(request)
        if self._draining:
            return error_payload(
                Overloaded("front door is draining", reason="draining")
            )
        try:
            future = self.backend.submit(statement)
        except Exception as exc:  # noqa: BLE001 - typed JSON transport
            return error_payload(exc)
        self.sweep_pending()
        with self._pending_lock:
            while len(self._pending) >= self.max_pending:
                oldest = next(iter(self._pending))
                self._expire_locked(oldest)
            self._next_id += 1
            ident = self._next_id
            self._pending[ident] = (future, time.monotonic())
        return 202, {"id": ident}

    async def _route_result(
        self, request: _Request
    ) -> tuple[int, dict[str, object]]:
        try:
            ident = int(request.path[len("/result/"):])
        except ValueError:
            return 404, {
                "error": {"type": "NotFound", "message": request.path}
            }
        with self._pending_lock:
            slot = self._pending.get(ident)
            expired = slot is None and ident in self._expired_ids
        if expired:
            return 410, {
                "error": {
                    "type": "Expired",
                    "message": (
                        f"result {ident} expired unclaimed after "
                        f"{self.result_ttl_s:g}s"
                    ),
                }
            }
        if slot is None:
            return 404, {
                "error": {"type": "NotFound", "message": f"no request {ident}"}
            }
        future = slot[0]
        if not future.done:
            return 202, {"id": ident, "done": False}
        with self._pending_lock:
            self._pending.pop(ident, None)
        error = future.error(0.0)
        if error is not None:
            return error_payload(error)
        value = future.result(0.0)
        if not isinstance(value, Result):
            return error_payload(
                ServerError(
                    "backend resolved the request with a non-Result "
                    f"{type(value).__name__!r}"
                )
            )
        return 200, {"result": _result_payload(value)}

    async def _route_health(self) -> tuple[int, dict[str, object]]:
        loop = asyncio.get_running_loop()
        health = await loop.run_in_executor(None, self.backend.health)
        ready = bool(health.get("ready")) and not self._draining
        return (200 if ready else 503), {"health": health}

    def _route_rebalance_status(self) -> tuple[int, dict[str, object]]:
        status_of = getattr(self.backend, "rebalance_status", None)
        if not callable(status_of):
            return 400, {
                "error": {
                    "type": "BadRequest",
                    "message": "backend does not support rebalancing",
                }
            }
        return 200, {"rebalance": status_of()}

    async def _route_rebalance(
        self, request: _Request
    ) -> tuple[int, dict[str, object]]:
        resize = getattr(self.backend, "resize", None)
        if not callable(resize):
            return 400, {
                "error": {
                    "type": "BadRequest",
                    "message": "backend does not support rebalancing",
                }
            }
        data = request.json()
        shards = data.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValueError('missing positive integer "shards"')
        if self._draining:
            return error_payload(
                Overloaded("front door is draining", reason="draining")
            )
        status_of = getattr(self.backend, "rebalance_status", None)
        snapshot: dict[str, object] = (
            dict(status_of()) if callable(status_of) else {}
        )
        if snapshot.get("state") in ("planning", "migrating", "finalizing"):
            return error_payload(
                RebalanceError("a rebalance is already in progress")
            )

        def _run() -> None:
            try:
                resize(shards)
            except Exception:  # noqa: BLE001 - surfaced via /rebalance/status
                pass  # the backend records failure in its status snapshot

        thread = threading.Thread(
            target=_run, name="http-rebalance", daemon=True
        )
        thread.start()
        snapshot["requested_shards"] = shards
        return 202, {"rebalance": snapshot}
