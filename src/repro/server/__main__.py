"""Run a PXQL server from the command line.

Usage::

    python -m repro.server --directory CATALOG_DIR [--shards N]
        [--workers M] [--host 127.0.0.1] [--port 8080]
        [--deadline-s SECONDS] [--threads-only]

With ``--shards N`` (default 2) the catalog is served by N worker
processes behind the consistent-hash router
(:class:`~repro.server.shard.ShardedServer`); ``--threads-only`` serves
it from a single-process thread pool instead
(:class:`~repro.server.server.PXQLServer` — the right choice for tiny
catalogs or debugging).  Either way the asyncio front door
(:mod:`repro.server.http`) listens for HTTP/JSON requests and drains
gracefully on SIGTERM/SIGINT.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ShardConfigError
from repro.server.http import Backend, HttpFrontDoor
from repro.server.server import PXQLServer
from repro.server.shard import ShardedServer
from repro.storage.database import Database


async def _serve(backend: Backend, host: str, port: int) -> None:
    door = HttpFrontDoor(backend, host=host, port=port)
    await door.start()
    door.install_signal_handlers()
    print(f"serving on http://{host}:{door.bound_port} "
          f"(POST /execute, GET /health)")
    await door.serve_forever()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a PXML catalog over HTTP/JSON.",
    )
    parser.add_argument("--directory", required=True,
                        help="catalog root directory")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard process count (default 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads per shard/process (default 2)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="admission queue bound (default 64)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="default per-request deadline (seconds)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--threads-only", action="store_true",
                        help="serve from one thread-pool process "
                             "instead of shards")
    args = parser.parse_args(argv)

    backend: Backend
    if args.threads_only:
        from repro.resilience.budget import Budget

        deadline = args.deadline_s
        backend = PXQLServer(
            database=Database(args.directory),
            workers=args.workers,
            queue_size=args.queue_size,
            budget_factory=(
                (lambda: Budget(deadline_s=deadline))
                if deadline is not None
                else None
            ),
        ).start()
    else:
        try:
            backend = ShardedServer(
                args.directory,
                shards=args.shards,
                workers_per_shard=args.workers,
                queue_size=args.queue_size,
                default_deadline_s=args.deadline_s,
            ).start()
        except ShardConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        asyncio.run(_serve(backend, args.host, args.port))
    except KeyboardInterrupt:
        backend.stop(drain=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
