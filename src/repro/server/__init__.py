"""Concurrent PXQL serving: worker pool, admission control, probes.

This package turns the interpreter into a long-running service:

* :class:`~repro.server.server.PXQLServer` — a supervised pool of
  worker threads executing PXQL against one shared thread-safe
  :class:`~repro.storage.database.Database`, with per-request
  :class:`~repro.resilience.budget.Budget` s, graceful drain-then-stop
  (including on ``SIGTERM``/``SIGINT``), and liveness/readiness probes
  backed by :mod:`repro.obs` metrics;
* :class:`~repro.server.admission.AdmissionQueue` /
  :class:`~repro.server.admission.PendingResult` — the bounded handoff
  and the write-once future behind every submission; a full queue is a
  typed :class:`~repro.errors.Overloaded`, never unbounded growth.

The cross-process half of the story (catalog lock file + generation
counter) lives in :mod:`repro.storage.locking`; the thread-safety of
the shared core (caches, metrics, tracer, breaker, database) is each
component's own contract.  ``docs/SERVER.md`` ties it together.
"""

from repro.errors import Overloaded, ServerError
from repro.server.admission import AdmissionQueue, PendingResult, Request
from repro.server.server import PXQLServer

__all__ = [
    "AdmissionQueue",
    "Overloaded",
    "PXQLServer",
    "PendingResult",
    "Request",
    "ServerError",
]
