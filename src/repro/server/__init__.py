"""Concurrent PXQL serving: worker pool, shards, admission, front door.

This package turns the interpreter into a long-running service:

* :class:`~repro.server.server.PXQLServer` — a supervised pool of
  worker threads executing PXQL against one shared thread-safe
  :class:`~repro.storage.database.Database`, with per-request
  :class:`~repro.resilience.budget.Budget` s, graceful drain-then-stop
  (including on ``SIGTERM``/``SIGINT``), and liveness/readiness probes
  backed by :mod:`repro.obs` metrics;
* :class:`~repro.server.shard.ShardedServer` — N worker *processes*
  (each a ``PXQLServer`` over a shard-local catalog directory) behind a
  consistent-hash router with scatter-gather cross-shard ``PRODUCT``,
  a placement overlay for derived results, and chaos hooks
  (``kill_shard`` / ``restart_shard``);
* :class:`~repro.server.http.HttpFrontDoor` — an asyncio HTTP/JSON
  endpoint (stdlib only) over either backend, translating typed errors
  to status codes and draining on SIGTERM;
* :class:`~repro.server.admission.AdmissionQueue` /
  :class:`~repro.server.admission.PendingResult` — the bounded handoff
  and the write-once future behind every submission; a full queue is a
  typed :class:`~repro.errors.Overloaded`, never unbounded growth.

The cross-process half of the story (catalog lock file + generation
counter, generation-keyed engine caches) lives in
:mod:`repro.storage.locking` and ``Engine.cache_key``.
``docs/SERVER.md`` ties it together.
"""

from repro.errors import (
    Overloaded,
    RebalanceError,
    RebalanceInProgress,
    RemoteExecutionError,
    ServerError,
    ShardUnavailable,
)
from repro.server.admission import AdmissionQueue, PendingResult, Request
from repro.server.http import HttpFrontDoor
from repro.server.rebalance import (
    RebalancePlan,
    Rebalancer,
    RebalanceStatus,
    ShardManifest,
    plan_rebalance,
    resume_rebalance,
)
from repro.server.server import PXQLServer
from repro.server.shard import ShardConfig, ShardedServer

__all__ = [
    "AdmissionQueue",
    "HttpFrontDoor",
    "Overloaded",
    "PXQLServer",
    "PendingResult",
    "RebalanceError",
    "RebalanceInProgress",
    "RebalancePlan",
    "RebalanceStatus",
    "Rebalancer",
    "RemoteExecutionError",
    "Request",
    "ServerError",
    "ShardConfig",
    "ShardManifest",
    "ShardUnavailable",
    "ShardedServer",
    "plan_rebalance",
    "resume_rebalance",
]
