"""Variable elimination (bucket elimination, Dechter 1996).

The inference routine the paper cites for generic query answering on the
Bayesian network induced by a probabilistic instance.  A greedy
min-degree ordering keeps intermediate factors small on the tree-like
networks PXML produces ("if the network is tree structured, the inference
will be linear in the number of nodes").
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.bayesnet.factors import Factor, VarName
from repro.bayesnet.network import BayesianNetwork
from repro.errors import QueryError


def _min_degree_order(
    factors: Sequence[Factor], eliminate: set[VarName]
) -> list[VarName]:
    """Greedy min-degree elimination ordering on the interaction graph."""
    neighbors: dict[VarName, set[VarName]] = {v: set() for v in eliminate}
    for factor in factors:
        scope = [v for v in factor.variables if v in eliminate]
        for var in scope:
            neighbors[var].update(u for u in factor.variables if u != var)
    order: list[VarName] = []
    remaining = set(eliminate)
    while remaining:
        var = min(remaining, key=lambda v: (len(neighbors[v] & remaining), v))
        order.append(var)
        remaining.discard(var)
        linked = neighbors[var] & remaining
        for u in linked:
            neighbors[u].update(linked - {u})
    return order


def eliminate_all(
    factors: Sequence[Factor], keep: set[VarName] | None = None
) -> Factor:
    """Multiply the factors, summing out every variable not in ``keep``."""
    keep = keep or set()
    working = list(factors)
    to_eliminate = {
        v for factor in working for v in factor.variables if v not in keep
    }
    for var in _min_degree_order(working, to_eliminate):
        bucket = [f for f in working if var in f.variables]
        working = [f for f in working if var not in f.variables]
        if not bucket:
            continue
        product = bucket[0]
        for factor in bucket[1:]:
            product = product.multiply(factor)
        working.append(product.sum_out(var))
    result = Factor.constant(1.0)
    for factor in working:
        result = result.multiply(factor)
    return result


def query(
    network: BayesianNetwork,
    targets: Sequence[VarName],
    evidence: Mapping[VarName, object] | None = None,
) -> Factor:
    """``P(targets | evidence)`` as a normalized factor over ``targets``."""
    evidence = dict(evidence or {})
    factors = [f.restrict(evidence) for f in network.factors()]
    joint = eliminate_all(factors, keep=set(targets))
    if not joint.table:
        raise QueryError("evidence has probability zero")
    return joint.normalize()


def event_probability(
    network: BayesianNetwork,
    indicators: Sequence[tuple[VarName, Callable[[object], bool]]],
    evidence: Mapping[VarName, object] | None = None,
) -> float:
    """The probability of a conjunction of per-variable predicates.

    Each indicator ``(variable, predicate)`` multiplies in a 0/1 factor;
    the result is the total remaining mass (optionally conditioned on hard
    ``evidence``).
    """
    evidence = dict(evidence or {})
    factors = [f.restrict(evidence) for f in network.factors()]
    weighted: list[Factor] = []
    indicator_map: dict[VarName, list[Callable[[object], bool]]] = {}
    for variable, predicate in indicators:
        indicator_map.setdefault(variable, []).append(predicate)
    applied: set[VarName] = set()
    for factor in factors:
        for variable in factor.variables:
            if variable in indicator_map and variable not in applied:
                for predicate in indicator_map[variable]:
                    factor = factor.weight(predicate, variable)
                applied.add(variable)
        weighted.append(factor)
    missing = set(indicator_map) - applied
    if missing:
        raise QueryError(f"indicator variables not in any factor: {sorted(missing)}")
    numerator = eliminate_all(weighted).total()
    if evidence:
        denominator = eliminate_all(factors).total()
        if denominator <= 0.0:
            raise QueryError("evidence has probability zero")
        return numerator / denominator
    return numerator
