"""A minimal discrete Bayesian network with CPT factors.

The paper observes (Section 6) that "there is a mapping between a
probabilistic instance and a Bayesian network" and appeals to standard
inference.  This module is that substrate: variables with finite domains,
one CPT factor per variable, and enough structure for the variable
elimination engine in :mod:`repro.bayesnet.elimination`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.bayesnet.factors import Factor, VarName
from repro.errors import QueryError


class BayesianNetwork:
    """Variables, domains and one CPT factor per variable."""

    def __init__(self) -> None:
        self._domains: dict[VarName, tuple] = {}
        self._cpts: dict[VarName, Factor] = {}
        self._parents: dict[VarName, tuple[VarName, ...]] = {}

    # ------------------------------------------------------------------
    def add_variable(self, name: VarName, domain: Iterable) -> None:
        """Declare a variable with a finite domain."""
        values = tuple(domain)
        if not values:
            raise QueryError(f"variable {name!r} needs a nonempty domain")
        if name in self._domains:
            raise QueryError(f"variable {name!r} already declared")
        self._domains[name] = values

    def add_cpt(
        self,
        child: VarName,
        parents: Sequence[VarName],
        cpt: Mapping[tuple, Mapping[object, float]],
    ) -> None:
        """Attach ``P(child | parents)``.

        ``cpt`` maps each full parent assignment (a tuple following the
        order of ``parents``) to a distribution over the child's domain.
        Missing parent assignments are treated as impossible (their rows
        never arise given the rest of the network).
        """
        self._require(child)
        for parent in parents:
            self._require(parent)
        table: dict[tuple, float] = {}
        for parent_assignment, distribution in cpt.items():
            total = 0.0
            for value, probability in distribution.items():
                if value not in self._domains[child]:
                    raise QueryError(
                        f"value {value!r} outside the domain of {child!r}"
                    )
                total += probability
                if probability != 0.0:
                    table[tuple(parent_assignment) + (value,)] = probability
            if abs(total - 1.0) > 1e-9:
                raise QueryError(
                    f"CPT row {parent_assignment!r} of {child!r} sums to {total!r}"
                )
        self._cpts[child] = Factor(tuple(parents) + (child,), table)
        self._parents[child] = tuple(parents)

    # ------------------------------------------------------------------
    def domain(self, name: VarName) -> tuple:
        """The domain of a variable."""
        self._require(name)
        return self._domains[name]

    def variables(self) -> list[VarName]:
        """All declared variables."""
        return list(self._domains)

    def parents(self, name: VarName) -> tuple[VarName, ...]:
        """The CPT parents of a variable (empty for priors)."""
        return self._parents.get(name, ())

    def cpt(self, name: VarName) -> Factor:
        """The CPT factor of a variable."""
        if name not in self._cpts:
            raise QueryError(f"variable {name!r} has no CPT")
        return self._cpts[name]

    def factors(self) -> list[Factor]:
        """All CPT factors (the joint's factorization)."""
        missing = [v for v in self._domains if v not in self._cpts]
        if missing:
            raise QueryError(f"variables without CPTs: {missing}")
        return list(self._cpts.values())

    def copy(self) -> "BayesianNetwork":
        """A copy sharing the (immutable) CPT factors."""
        clone = BayesianNetwork()
        clone._domains = dict(self._domains)
        clone._cpts = dict(self._cpts)
        clone._parents = dict(self._parents)
        return clone

    def _require(self, name: VarName) -> None:
        if name not in self._domains:
            raise QueryError(f"unknown variable: {name!r}")

    def __len__(self) -> int:
        return len(self._domains)

    def __repr__(self) -> str:
        return f"BayesianNetwork({len(self._domains)} variables)"
