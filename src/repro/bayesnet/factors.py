"""Discrete factors for Bayesian-network inference.

A :class:`Factor` maps assignments of a tuple of named variables to
non-negative reals, stored sparsely (zero entries omitted).  Factors
support the three operations variable elimination needs: pointwise
product, summing a variable out, and restriction to evidence.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.errors import QueryError

Assignment = tuple
VarName = str


class Factor:
    """A sparse factor over named discrete variables."""

    __slots__ = ("variables", "table")

    def __init__(
        self, variables: Iterable[VarName], table: Mapping[Assignment, float]
    ) -> None:
        self.variables: tuple[VarName, ...] = tuple(variables)
        arity = len(self.variables)
        cleaned: dict[Assignment, float] = {}
        for assignment, value in table.items():
            if len(assignment) != arity:
                raise QueryError(
                    f"assignment {assignment!r} has arity {len(assignment)}, "
                    f"factor expects {arity}"
                )
            if value < 0.0:
                raise QueryError(f"negative factor entry {value!r}")
            if value != 0.0:
                cleaned[tuple(assignment)] = float(value)
        self.table = cleaned

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return f"Factor({self.variables!r}, {len(self.table)} entries)"

    @classmethod
    def constant(cls, value: float = 1.0) -> "Factor":
        """The zero-variable factor with a single entry."""
        return cls((), {(): value})

    def total(self) -> float:
        """The sum of all entries (the partition function when no
        variables remain)."""
        return sum(self.table.values())

    # ------------------------------------------------------------------
    def multiply(self, other: "Factor") -> "Factor":
        """The pointwise product, joining on shared variables."""
        shared = [v for v in self.variables if v in other.variables]
        self_shared_idx = [self.variables.index(v) for v in shared]
        other_shared_idx = [other.variables.index(v) for v in shared]
        other_extra_idx = [
            i for i, v in enumerate(other.variables) if v not in self.variables
        ]
        out_vars = self.variables + tuple(other.variables[i] for i in other_extra_idx)

        # Index the smaller operand's entries by their shared-variable key.
        index: dict[Assignment, list[tuple[Assignment, float]]] = {}
        for assignment, value in other.table.items():
            key = tuple(assignment[i] for i in other_shared_idx)
            index.setdefault(key, []).append((assignment, value))

        out: dict[Assignment, float] = {}
        for assignment, value in self.table.items():
            key = tuple(assignment[i] for i in self_shared_idx)
            for other_assignment, other_value in index.get(key, ()):
                extra = tuple(other_assignment[i] for i in other_extra_idx)
                out_assignment = assignment + extra
                out[out_assignment] = (
                    out.get(out_assignment, 0.0) + value * other_value
                )
        return Factor(out_vars, out)

    def sum_out(self, variable: VarName) -> "Factor":
        """Marginalize ``variable`` away."""
        if variable not in self.variables:
            return self
        index = self.variables.index(variable)
        out_vars = tuple(v for v in self.variables if v != variable)
        out: dict[Assignment, float] = {}
        for assignment, value in self.table.items():
            reduced = assignment[:index] + assignment[index + 1:]
            out[reduced] = out.get(reduced, 0.0) + value
        return Factor(out_vars, out)

    def restrict(self, evidence: Mapping[VarName, object]) -> "Factor":
        """Drop entries inconsistent with ``evidence`` and project the
        evidence variables away."""
        positions = [
            (i, evidence[v]) for i, v in enumerate(self.variables) if v in evidence
        ]
        if not positions:
            return self
        keep_idx = [i for i, v in enumerate(self.variables) if v not in evidence]
        out_vars = tuple(self.variables[i] for i in keep_idx)
        out: dict[Assignment, float] = {}
        for assignment, value in self.table.items():
            if all(assignment[i] == wanted for i, wanted in positions):
                reduced = tuple(assignment[i] for i in keep_idx)
                out[reduced] = out.get(reduced, 0.0) + value
        return Factor(out_vars, out)

    def weight(self, predicate: Callable[[object], bool], variable: VarName) -> "Factor":
        """Zero out entries whose value of ``variable`` fails ``predicate``.

        Unlike :meth:`restrict` the variable stays in scope — this encodes
        soft/indicator evidence such as "child in C_parent".
        """
        index = self.variables.index(variable)
        kept = {
            assignment: value
            for assignment, value in self.table.items()
            if predicate(assignment[index])
        }
        return Factor(self.variables, kept)

    def normalize(self) -> "Factor":
        """Scale entries to total one."""
        mass = self.total()
        if mass <= 0.0:
            raise QueryError("cannot normalize a zero factor")
        return Factor(self.variables, {a: v / mass for a, v in self.table.items()})
