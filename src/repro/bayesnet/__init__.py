"""A discrete Bayesian-network substrate and the PXML mapping onto it."""

from repro.bayesnet.elimination import eliminate_all, event_probability, query
from repro.bayesnet.factors import Factor
from repro.bayesnet.mapping import (
    ABSENT,
    PXMLBayesianNetwork,
    choice_var,
    existence_var,
    value_var,
)
from repro.bayesnet.network import BayesianNetwork

__all__ = [
    "ABSENT",
    "BayesianNetwork",
    "Factor",
    "PXMLBayesianNetwork",
    "choice_var",
    "eliminate_all",
    "event_probability",
    "existence_var",
    "query",
    "value_var",
]
