"""The probabilistic-instance → Bayesian-network mapping (Section 6).

Theorem 1's product semantics is exactly a Bayesian-network
factorization; this module makes the mapping concrete:

* ``E:o`` — a boolean *existence* variable per object (the root exists
  with probability one).
* ``C:o`` — a *children-choice* variable per non-leaf object whose domain
  is the OPF's support plus an ``ABSENT`` sentinel; given ``E:o`` the
  choice follows the OPF, otherwise it is ``ABSENT``.
* ``E:o'`` of a non-root object is the deterministic OR "some potential
  parent's choice contains ``o'``".
* ``V:o`` — a *value* variable per valued leaf following the VPF.

Unlike the local algorithms of Section 6 (which require trees), inference
on this network is exact for **any acyclic** weak instance, so it serves
as the DAG-capable engine and as an independent cross-check.  Path
queries add deterministic *reach* variables ``R:i:o`` ("o is reached at
path level i") layer by layer along the path match.
"""

from __future__ import annotations

from itertools import product as iter_product

from repro.bayesnet.elimination import query as bn_query
from repro.bayesnet.network import BayesianNetwork
from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression, match_path

#: Sentinel value for "the object does not occur in this world".
ABSENT = "__absent__"


def existence_var(oid: Oid) -> str:
    """The name of the existence variable of ``oid``."""
    return f"E:{oid}"


def choice_var(oid: Oid) -> str:
    """The name of the children-choice variable of ``oid``."""
    return f"C:{oid}"


def value_var(oid: Oid) -> str:
    """The name of the value variable of ``oid``."""
    return f"V:{oid}"


def _reach_var(level: int, oid: Oid) -> str:
    return f"R:{level}:{oid}"


class PXMLBayesianNetwork:
    """A Bayesian network equivalent to a probabilistic instance."""

    def __init__(self, pi: ProbabilisticInstance) -> None:
        self.pi = pi
        self.network = BayesianNetwork()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        weak = self.pi.weak
        net = self.network
        graph = weak.graph()

        for oid in sorted(weak.objects):
            net.add_variable(existence_var(oid), (False, True))
        for oid in sorted(weak.non_leaves()):
            opf = self.pi.opf(oid)
            if opf is None:
                raise QueryError(f"non-leaf object {oid!r} has no OPF")
            support = sorted((c for c, _ in opf.support()), key=sorted)
            net.add_variable(choice_var(oid), (*support, ABSENT))
            net.add_cpt(
                choice_var(oid),
                (existence_var(oid),),
                {
                    (True,): {c: p for c, p in opf.support()},
                    (False,): {ABSENT: 1.0},
                },
            )
        for oid in sorted(weak.leaves()):
            vpf = self.pi.effective_vpf(oid)
            if vpf is None:
                continue
            values = sorted((v for v, _ in vpf.support()), key=repr)
            net.add_variable(value_var(oid), (*values, ABSENT))
            net.add_cpt(
                value_var(oid),
                (existence_var(oid),),
                {
                    (True,): {v: p for v, p in vpf.support()},
                    (False,): {ABSENT: 1.0},
                },
            )

        net.add_cpt(existence_var(weak.root), (), {(): {True: 1.0}})
        for oid in sorted(weak.objects):
            if oid == weak.root:
                continue
            parents = sorted(graph.parents(oid))
            parent_vars = tuple(choice_var(p) for p in parents)
            cpt: dict[tuple, dict[object, float]] = {}
            domains = [net.domain(v) for v in parent_vars]
            for assignment in iter_product(*domains):
                present = any(
                    choice != ABSENT and oid in choice for choice in assignment
                )
                cpt[assignment] = {present: 1.0}
            net.add_cpt(existence_var(oid), parent_vars, cpt)

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def prob_exists(self, oid: Oid) -> float:
        """``P(o occurs in a compatible world)``."""
        marginal = bn_query(self.network, [existence_var(oid)])
        return marginal.table.get((True,), 0.0)

    def prob_value(self, oid: Oid, value: object) -> float:
        """``P(o occurs and val(o) = value)``."""
        marginal = bn_query(self.network, [value_var(oid)])
        return marginal.table.get((value,), 0.0)

    def chain_probability(self, chain: list[Oid]) -> float:
        """``P(r.o1...on)`` via indicator evidence on the choice variables."""
        from repro.bayesnet.elimination import event_probability

        if not chain or chain[0] != self.pi.root:
            raise QueryError("chain must start at the instance root")
        indicators = []
        for parent, child in zip(chain, chain[1:]):
            indicators.append(
                (
                    choice_var(parent),
                    lambda c, _child=child: c != ABSENT and _child in c,
                )
            )
        return event_probability(self.network, indicators)

    def point_query(self, path: PathExpression | str, oid: Oid) -> float:
        """``P(o in p)`` — exact on any acyclic instance."""
        return self._reach_marginal(path, lambda matched: matched == oid)

    def existential_query(self, path: PathExpression | str) -> float:
        """``P(exists o: o in p)`` — exact on any acyclic instance."""
        return self._reach_marginal(path, lambda matched: True)

    # ------------------------------------------------------------------
    def _reach_marginal(self, path: PathExpression | str, is_goal) -> float:
        """Augment the network with reach variables and query the top OR.

        ``is_goal`` selects which matched (deepest-level) objects count;
        a predicate keeps the two public queries uniform.
        """
        if isinstance(path, str):
            path = PathExpression.parse(path)
        if path.root != self.pi.root:
            return 0.0
        weak = self.pi.weak
        match = match_path(weak.graph(), path)
        if match.is_empty:
            return 0.0
        depth = len(match.levels) - 1
        goal = sorted(o for o in match.levels[depth] if is_goal(o))
        if not goal:
            return 0.0

        net = self._network_with_reach_layer(match, depth)
        or_parents = tuple(
            _reach_var(depth, oid) if depth > 0 else existence_var(oid)
            for oid in goal
        )
        net.add_variable("R:any", (False, True))
        cpt: dict[tuple, dict[object, float]] = {}
        for assignment in iter_product(*[(False, True)] * len(or_parents)):
            cpt[assignment] = {any(assignment): 1.0}
        net.add_cpt("R:any", or_parents, cpt)
        marginal = bn_query(net, ["R:any"])
        return marginal.table.get((True,), 0.0)

    def _network_with_reach_layer(self, match, depth: int) -> BayesianNetwork:
        """A copy of the network extended with ``R:i:o`` reach variables."""
        net = self.network.copy()
        for level in range(1, depth + 1):
            edges = match.level_edges[level - 1]
            for oid in sorted(match.levels[level]):
                parents = sorted(src for src, dst in edges if dst == oid)
                parent_vars: list[str] = []
                for parent in parents:
                    reach_parent = (
                        _reach_var(level - 1, parent)
                        if level - 1 > 0
                        else existence_var(parent)
                    )
                    parent_vars.extend((reach_parent, choice_var(parent)))
                net.add_variable(_reach_var(level, oid), (False, True))
                domains = [net.domain(v) for v in parent_vars]
                cpt: dict[tuple, dict[object, float]] = {}
                for assignment in iter_product(*domains):
                    reached = False
                    for index in range(0, len(assignment), 2):
                        parent_reached = assignment[index]
                        choice = assignment[index + 1]
                        if parent_reached and choice != ABSENT and oid in choice:
                            reached = True
                            break
                    cpt[assignment] = {reached: 1.0}
                net.add_cpt(_reach_var(level, oid), tuple(parent_vars), cpt)
        return net
