"""The query engine: a planner, rewrite optimizer, and versioned cache.

The PXQL interpreter used to map each statement straight onto one
algebra call.  This package inserts a classical database engine between
the language and the algebra:

* :mod:`repro.engine.plan` — a logical plan IR (scan / project / select /
  product / query nodes) built from PXQL ASTs or programmatically;
* :mod:`repro.engine.cost` — size/entry/tree-ness estimates driving
  rewrite decisions and execution-strategy choice;
* :mod:`repro.engine.rewrite` — a rule-based optimizer (projection
  collapse, selection pushdown, product reordering, plus a second-stage
  pass lowering path navigation onto the :mod:`repro.index` columnar
  snapshots where the cost model prices it cheaper);
* :mod:`repro.engine.executor` — an instrumented executor producing
  per-node timings, cardinalities and cache status (``EXPLAIN ANALYZE``);
* :mod:`repro.engine.cache` — an LRU result cache keyed by canonical
  plan fingerprint plus the versions of every scanned instance.
"""

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.cost import CostModel, Estimate
from repro.engine.diskcache import DiskEntry, DiskResultCache
from repro.engine.executor import Engine, ExecutionResult, NodeStats
from repro.engine.plan import (
    IndexedPathStepNode,
    IndexedScanNode,
    PlanBuilder,
    PlanError,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    fingerprint,
    plan_statement,
    scan_names,
)
from repro.engine.rewrite import (
    DEFAULT_RULES,
    INDEX_RULES,
    RewriteRule,
    collapse_adjacent_projections,
    lower_projection_to_index,
    lower_query_to_index,
    optimize,
    push_selection_below_projection,
    reorder_product_by_size,
)

__all__ = [
    "CacheStats",
    "CostModel",
    "DEFAULT_RULES",
    "DiskEntry",
    "DiskResultCache",
    "Engine",
    "Estimate",
    "ExecutionResult",
    "INDEX_RULES",
    "IndexedPathStepNode",
    "IndexedScanNode",
    "LRUCache",
    "NodeStats",
    "PlanBuilder",
    "PlanError",
    "PlanNode",
    "ProductNode",
    "ProjectNode",
    "QueryNode",
    "RewriteRule",
    "ScanNode",
    "SelectNode",
    "collapse_adjacent_projections",
    "fingerprint",
    "lower_projection_to_index",
    "lower_query_to_index",
    "optimize",
    "plan_statement",
    "push_selection_below_projection",
    "reorder_product_by_size",
    "scan_names",
]
