"""Persistent, shared spill segment for the engine's result cache.

The in-memory result cache keys on *in-process* version counters, which
restart at zero in every process — so the engine's 20-40x warm-cache
speedup used to evaporate on every restart, and sibling shard processes
could never reuse each other's work.  This module gives cached results
a durable, *cross-process stable* identity instead:

    key = SHA-256( plan fingerprint,
                   sorted (name, sidecar checksum) of every scanned
                   instance )

The sidecar checksum is the content hash the storage layer already
maintains for every instance file (and that the write-ahead journal
keeps crash-consistent), so two processes looking at the same catalog
directory derive the same key for the same logical result — and any
change to any input file changes the key.  The catalog generation is
recorded per entry for observability, but validity comes entirely from
the content checksums.

Entries live in one JSON-lines segment (``cache/results.segment``
under the catalog directory), each line carrying a ``crc`` checksum —
corrupt or torn lines are skipped and counted, never an error, because
a cache is always allowed to miss.  Appends run under a dedicated
``cache/cache.lock`` (atomic whole-line appends); reads are lock-free
with a tail-refresh on lookup, so sibling shard processes see each
other's spills without coordination.  When the segment outgrows its
cap it is compacted (dedup by key, newest wins) under the lock.

Everything here is **fail-open**: any error — unreadable segment,
unencodable value, lock trouble — degrades to a miss or a skipped
spill, counted in ``engine.cache.disk_*`` metrics, and never fails a
query.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.instance import ProbabilisticInstance
from repro.io.json_codec import (
    decode_instance,
    encode_instance,
    replace_atomically,
)
from repro.storage.locking import shared_lock

#: Subdirectory of the catalog directory the cache lives in.
CACHE_DIR = "cache"

#: The spill segment file name.
SEGMENT_NAME = "results.segment"

#: Entries whose serialized form exceeds this are not spilled.
DEFAULT_MAX_ENTRY_BYTES = 1 << 20       # 1 MiB

#: Segment size that triggers a compaction after an append.
DEFAULT_MAX_SEGMENT_BYTES = 32 << 20    # 32 MiB


def _crc(fields: dict) -> str:
    canonical = json.dumps(
        {k: v for k, v in sorted(fields.items()) if k != "crc"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_key(
    plan_fingerprint: str, inputs: tuple[tuple[str, str], ...]
) -> str:
    """The content-addressed digest of a plan over concrete input bytes."""
    material = json.dumps(
        [plan_fingerprint, [[n, c] for n, c in inputs]],
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Value (de)serialization
# ----------------------------------------------------------------------
def encode_value(value: object) -> dict | None:
    """A JSON-ready form of a cacheable result; ``None`` = not spillable.

    Dict results (e.g. DIST outputs) are stored as key/value *pairs* so
    non-string keys (DIST's integer cardinalities) survive the JSON
    round-trip.
    """
    if isinstance(value, ProbabilisticInstance):
        return {"kind": "instance", "data": encode_instance(value)}
    if isinstance(value, dict):
        return {"kind": "pairs", "data": [[k, v] for k, v in value.items()]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "scalar", "data": value}
    return None


def decode_value(payload: dict) -> object:
    kind = payload.get("kind")
    if kind == "instance":
        return decode_instance(payload["data"])
    if kind == "pairs":
        return {k if not isinstance(k, list) else tuple(k): v
                for k, v in payload["data"]}
    if kind == "scalar":
        return payload["data"]
    raise ValueError(f"unknown cached value kind {kind!r}")


@dataclass
class DiskEntry:
    """One decoded spill entry (value decoded lazily by the engine)."""

    key: str
    generation: int
    inputs: tuple[tuple[str, str], ...]
    value: dict
    extra: dict
    stats: dict


class DiskResultCache:
    """The persistent result-cache segment of one catalog directory.

    Args:
        directory: the *catalog* directory; the segment lives under its
            ``cache/`` subdirectory.
        metrics: counter registry (``engine.cache.disk_*`` family).
        max_entry_bytes: skip spilling entries larger than this.
        max_segment_bytes: compact when the segment outgrows this.
    """

    def __init__(
        self,
        directory: str | Path,
        metrics,
        max_entry_bytes: int = DEFAULT_MAX_ENTRY_BYTES,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> None:
        self.directory = Path(directory) / CACHE_DIR
        self.path = self.directory / SEGMENT_NAME
        self.metrics = metrics
        self.max_entry_bytes = max_entry_bytes
        self.max_segment_bytes = max_segment_bytes
        self._lock = shared_lock(self.directory / "cache.lock")
        self._index: dict[str, DiskEntry] = {}
        self._offset = 0
        self.refresh()
        loaded = len(self._index)
        if loaded:
            self.metrics.counter("engine.cache.disk_loaded").inc(loaded)

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(f"engine.cache.disk_{name}").inc(n)

    def _parse_line(self, line: str) -> DiskEntry | None:
        try:
            fields = json.loads(line)
        except ValueError:
            return None
        if not isinstance(fields, dict):
            return None
        crc = fields.get("crc")
        if not isinstance(crc, str) or crc != _crc(fields):
            return None
        try:
            return DiskEntry(
                key=str(fields["key"]),
                generation=int(fields.get("generation", 0)),
                inputs=tuple(
                    (str(n), str(c)) for n, c in fields.get("inputs", [])
                ),
                value=fields["value"],
                extra=fields.get("extra", {}),
                stats=fields.get("stats", {}),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def refresh(self) -> None:
        """Fold any segment bytes appended since the last read into the
        in-memory index (how sibling processes' spills become visible).

        Lock-free: appends are whole fsynced lines, so the only
        unparsable content is a torn tail, which is left for the next
        refresh (or counted corrupt if it never completes).
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            self._offset = 0
            return
        if size < self._offset:
            # A sibling compacted the segment: re-read from scratch.
            self._index.clear()
            self._offset = 0
        if size == self._offset:
            return
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                raw = handle.read()
        except OSError:
            self._count("errors")
            return
        # Only consume complete lines; a trailing partial line is a
        # concurrent append still in flight.  Byte-level bookkeeping:
        # replacement decoding below changes string lengths.
        consumed = raw.rfind(b"\n") + 1
        if consumed == 0:
            return
        self._offset += consumed
        # Replacement decoding keeps a flipped byte local to its line
        # (that line fails its crc and is counted corrupt).
        chunk = raw[:consumed].decode("utf-8", errors="replace")
        for line in chunk.splitlines():
            if not line.strip():
                continue
            entry = self._parse_line(line)
            if entry is None:
                self._count("corrupt")
                continue
            self._index[entry.key] = entry
        try:
            self.metrics.gauge("engine.cache.disk_entries").set(
                len(self._index)
            )
        except Exception:
            pass

    # ------------------------------------------------------------------
    def lookup(
        self, key: str, inputs: tuple[tuple[str, str], ...]
    ) -> DiskEntry | None:
        """The entry for ``key``, or ``None`` (always counted).

        ``inputs`` is re-verified against the stored vector — a digest
        collision or a mangled entry is silently a miss.
        """
        entry = self._index.get(key)
        if entry is None:
            self.refresh()
            entry = self._index.get(key)
        if entry is None or entry.inputs != inputs:
            self._count("misses")
            return None
        self._count("hits")
        return entry

    def store(
        self,
        key: str,
        generation: int,
        inputs: tuple[tuple[str, str], ...],
        value: dict,
        extra: dict,
        stats: dict,
    ) -> bool:
        """Append one entry to the segment (fail-open; returns success)."""
        fields: dict = {
            "key": key,
            "generation": generation,
            "inputs": [[n, c] for n, c in inputs],
            "value": value,
            "extra": extra,
            "stats": stats,
        }
        try:
            fields["crc"] = _crc(fields)
            line = json.dumps(
                fields, sort_keys=True, separators=(",", ":")
            ) + "\n"
        except (TypeError, ValueError):
            self._count("skipped")
            return False
        if len(line) > self.max_entry_bytes:
            self._count("skipped")
            return False
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
                size = self.path.stat().st_size
                if size > self.max_segment_bytes:
                    self._compact()
        except Exception:
            self._count("errors")
            return False
        self._index[key] = DiskEntry(
            key=key, generation=generation, inputs=inputs,
            value=value, extra=extra, stats=stats,
        )
        self._count("spills")
        try:
            self.metrics.gauge("engine.cache.disk_entries").set(
                len(self._index)
            )
        except Exception:
            pass
        return True

    def _compact(self) -> None:
        """Rewrite the segment deduplicated (newest per key wins).

        Called under the cache lock.  Readers mid-refresh see either
        the old segment or the new one (atomic replace); a shrunken
        size makes them re-read from scratch.
        """
        self.refresh()  # fold the tail first so nothing is lost
        lines = []
        for entry in self._index.values():
            fields: dict = {
                "key": entry.key,
                "generation": entry.generation,
                "inputs": [[n, c] for n, c in entry.inputs],
                "value": entry.value,
                "extra": entry.extra,
                "stats": entry.stats,
            }
            fields["crc"] = _crc(fields)
            lines.append(
                json.dumps(fields, sort_keys=True, separators=(",", ":"))
            )
        payload = "\n".join(lines) + ("\n" if lines else "")
        replace_atomically(payload, self.path)
        self._offset = len(payload.encode("utf-8"))
        self._count("compactions")


__all__ = [
    "CACHE_DIR",
    "DEFAULT_MAX_ENTRY_BYTES",
    "DEFAULT_MAX_SEGMENT_BYTES",
    "DiskEntry",
    "DiskResultCache",
    "SEGMENT_NAME",
    "decode_value",
    "encode_value",
    "result_key",
]
