"""The logical plan IR for algebra expressions and probabilistic queries.

A plan is an immutable tree of dataclass nodes.  Leaves are
:class:`ScanNode` references into the :class:`~repro.storage.database.Database`
catalog; inner nodes are the algebra operators of Section 5 (ancestor /
descendant / single projection, chain selection, cartesian product); an
optional :class:`QueryNode` root turns the instance the plan produces
into a probability (point / exists / chain / prob / count / dist).

Plans come from two places:

* :func:`plan_statement` translates a parsed PXQL statement;
* :class:`PlanBuilder` is the programmatic fluent API::

      plan = (PlanBuilder.scan("bib")
              .project("R.book.author")
              .select("R.book.author", "A1")
              .point("R.book.author", "A1")
              .build())

Every node has a canonical, deterministic :func:`fingerprint` used as
the structural half of cache keys (the other half is the version of each
scanned instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import PXMLError
from repro.semistructured.paths import PathExpression

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pxql -> engine)
    from repro.pxql import ast


class PlanError(PXMLError):
    """Raised for malformed or untranslatable plans."""


class PlanNode:
    """Base class for logical plan nodes (frozen dataclasses only)."""

    __slots__ = ()

    def children(self) -> tuple["PlanNode", ...]:
        """The node's input plans, left to right."""
        return ()

    def with_children(self, children: tuple["PlanNode", ...]) -> "PlanNode":
        """A copy of this node over different inputs (same arity)."""
        if children:
            raise PlanError(f"{type(self).__name__} takes no inputs")
        return self

    def label(self) -> str:
        """The one-line rendering used by fingerprints and EXPLAIN."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A leaf: read a named instance from the catalog."""

    name: str

    def label(self) -> str:
        return f"Scan({self.name})"


@dataclass(frozen=True)
class IndexedScanNode(ScanNode):
    """A catalog scan whose consumer navigates via the columnar index.

    Subclasses :class:`ScanNode` (no extra fields) so version tracking,
    cache keys and lineage — all keyed off ``isinstance(node, ScanNode)``
    — treat it as the scan it is; only the label (and hence the
    fingerprint) differs, keeping indexed and walked results in separate
    cache entries.
    """

    def label(self) -> str:
        return f"IndexedScan({self.name})"


#: Path-navigation operations an :class:`IndexedPathStepNode` can run.
INDEXED_OPS = ("project-ancestor", "exists", "count", "dist", "point")


@dataclass(frozen=True)
class IndexedPathStepNode(PlanNode):
    """Path navigation lowered onto the columnar index.

    Produced by the lowering rewrite rules from an ancestor
    :class:`ProjectNode` or a path-shaped :class:`QueryNode` sitting
    directly over a tree catalog scan.  The executor matches the path on
    the :class:`~repro.index.columnar.ColumnarInstance` snapshot and
    feeds the identical :class:`~repro.semistructured.paths.PathMatch`
    to the same Section 6 algorithms the walked operators use — falling
    back to those operators at runtime if the snapshot turns out not to
    be a tree.
    """

    op: str                            # one of INDEXED_OPS
    path: PathExpression
    child: PlanNode
    oid: str | None = None

    def __post_init__(self) -> None:
        if self.op not in INDEXED_OPS:
            raise PlanError(f"unknown indexed path op {self.op!r}")
        if self.op == "point" and self.oid is None:
            raise PlanError("indexed point navigation needs a target oid")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "IndexedPathStepNode":
        (child,) = children
        return IndexedPathStepNode(self.op, self.path, child, self.oid)

    def label(self) -> str:
        if self.op == "point":
            return f"IndexedPathStep[point {self.path} : {self.oid}]"
        return f"IndexedPathStep[{self.op} {self.path}]"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Ancestor / descendant / single projection of a path expression."""

    kind: str                    # "ancestor" | "descendant" | "single"
    path: PathExpression
    child: PlanNode

    def __post_init__(self) -> None:
        if self.kind not in ("ancestor", "descendant", "single"):
            raise PlanError(f"unknown projection kind {self.kind!r}")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "ProjectNode":
        (child,) = children
        return ProjectNode(self.kind, self.path, child)

    def label(self) -> str:
        return f"Project[{self.kind}]({self.path})"


#: Comparison operators a probability guard may use.
PROB_GUARD_OPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """Chain selection ``p = o`` with optional value / cardinality clause.

    ``prob_op`` / ``prob_bound`` encode an optional *probability guard*
    (``AND PROB > 0.5`` in PXQL): an assertion that the selection's
    condition probability satisfies the comparison.  A violated guard
    raises :class:`~repro.errors.EmptyResultError` at execution time —
    and a statically unsatisfiable one (``PROB > 1.0``) is flagged by
    the plan checker before execution ever starts.
    """

    path: PathExpression
    oid: str
    child: PlanNode
    value: object = None
    card_label: str | None = None
    card_bounds: tuple[int, int] | None = None
    prob_op: str | None = None
    prob_bound: float | None = None

    def __post_init__(self) -> None:
        if self.prob_op is not None and self.prob_op not in PROB_GUARD_OPS:
            raise PlanError(f"unknown probability guard operator {self.prob_op!r}")
        if (self.prob_op is None) != (self.prob_bound is None):
            raise PlanError("probability guard needs both an operator and a bound")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "SelectNode":
        (child,) = children
        return SelectNode(
            self.path, self.oid, child, self.value, self.card_label,
            self.card_bounds, self.prob_op, self.prob_bound,
        )

    def label(self) -> str:
        parts = [f"{self.path} = {self.oid}"]
        if self.value is not None:
            parts.append(f"value = {self.value!r}")
        if self.card_label is not None:
            low, high = self.card_bounds
            parts.append(f"card({self.card_label}) in [{low}, {high}]")
        if self.prob_op is not None:
            parts.append(f"prob {self.prob_op} {self.prob_bound:g}")
        return f"Select[{' and '.join(parts)}]"


@dataclass(frozen=True)
class ProductNode(PlanNode):
    """Cartesian product of two instance-producing plans."""

    left: PlanNode
    right: PlanNode
    new_root: str | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[PlanNode, ...]) -> "ProductNode":
        left, right = children
        return ProductNode(left, right, self.new_root)

    def label(self) -> str:
        root = f" root={self.new_root}" if self.new_root is not None else ""
        return f"Product[{root.strip() or 'auto-root'}]"


#: Query kinds a :class:`QueryNode` can evaluate.
QUERY_KINDS = ("point", "exists", "chain", "prob", "count", "dist")


@dataclass(frozen=True)
class QueryNode(PlanNode):
    """Turn the child plan's instance into a probability / expectation."""

    kind: str                          # one of QUERY_KINDS
    child: PlanNode
    path: PathExpression | None = None
    oid: str | None = None
    chain: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise PlanError(f"unknown query kind {self.kind!r}")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "QueryNode":
        (child,) = children
        return QueryNode(self.kind, child, self.path, self.oid, self.chain)

    def label(self) -> str:
        if self.kind == "chain":
            return f"Query[chain {'.'.join(self.chain)}]"
        if self.kind == "prob":
            return f"Query[prob {self.oid}]"
        if self.kind == "point":
            return f"Query[point {self.path} : {self.oid}]"
        return f"Query[{self.kind} {self.path}]"


# ----------------------------------------------------------------------
# Traversal and fingerprints
# ----------------------------------------------------------------------
def walk(plan: PlanNode) -> Iterator[PlanNode]:
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def scan_names(plan: PlanNode) -> tuple[str, ...]:
    """The catalog names the plan reads, sorted and de-duplicated."""
    return tuple(sorted({
        node.name for node in walk(plan) if isinstance(node, ScanNode)
    }))


def fingerprint(plan: PlanNode) -> str:
    """A canonical structural key for a plan (versions live elsewhere).

    Two plans share a fingerprint iff they are the same operator tree
    over the same parameters — the structural half of the cache key.
    """
    parts = [plan.label()]
    children = plan.children()
    if children:
        parts.append("(")
        parts.append(",".join(fingerprint(child) for child in children))
        parts.append(")")
    return "".join(parts)


# ----------------------------------------------------------------------
# Translation from PXQL ASTs
# ----------------------------------------------------------------------
def _as_path(path: PathExpression | str) -> PathExpression:
    return PathExpression.parse(path) if isinstance(path, str) else path


def plan_statement(statement: "ast.Statement") -> PlanNode | None:
    """The logical plan of a plannable PXQL statement.

    Algebra statements (PROJECT / SELECT / PRODUCT) and query statements
    (POINT / EXISTS / CHAIN / PROB / COUNT / DIST) translate; catalog
    and inspection statements return ``None`` (the interpreter runs them
    eagerly as before).
    """
    from repro.pxql import ast

    if isinstance(statement, ast.ProjectStatement):
        return ProjectNode(statement.kind, statement.path, ScanNode(statement.source))
    if isinstance(statement, ast.SelectStatement):
        return SelectNode(
            statement.path, statement.oid, ScanNode(statement.source),
            statement.value, statement.card_label, statement.card_bounds,
            getattr(statement, "prob_op", None),
            getattr(statement, "prob_bound", None),
        )
    if isinstance(statement, ast.ProductStatement):
        return ProductNode(
            ScanNode(statement.left), ScanNode(statement.right),
            statement.new_root,
        )
    if isinstance(statement, ast.PointStatement):
        return QueryNode("point", ScanNode(statement.source),
                         path=statement.path, oid=statement.oid)
    if isinstance(statement, ast.ExistsStatement):
        return QueryNode("exists", ScanNode(statement.source), path=statement.path)
    if isinstance(statement, ast.ChainStatement):
        return QueryNode("chain", ScanNode(statement.source), chain=statement.chain)
    if isinstance(statement, ast.ProbStatement):
        return QueryNode("prob", ScanNode(statement.source), oid=statement.oid)
    if isinstance(statement, ast.CountStatement):
        return QueryNode("count", ScanNode(statement.source), path=statement.path)
    if isinstance(statement, ast.DistStatement):
        return QueryNode("dist", ScanNode(statement.source), path=statement.path)
    return None


# ----------------------------------------------------------------------
# Programmatic builder
# ----------------------------------------------------------------------
class PlanBuilder:
    """Fluent construction of plans, mirroring the algebra's composition."""

    def __init__(self, node: PlanNode) -> None:
        self._node = node

    @classmethod
    def scan(cls, name: str) -> "PlanBuilder":
        """Start from a catalog instance."""
        return cls(ScanNode(name))

    def project(
        self, path: PathExpression | str, kind: str = "ancestor"
    ) -> "PlanBuilder":
        """Apply a projection."""
        return PlanBuilder(ProjectNode(kind, _as_path(path), self._node))

    def select(
        self,
        path: PathExpression | str,
        oid: str,
        value: object = None,
        card_label: str | None = None,
        card_bounds: tuple[int, int] | None = None,
        prob_op: str | None = None,
        prob_bound: float | None = None,
    ) -> "PlanBuilder":
        """Apply a chain selection (optionally probability-guarded)."""
        return PlanBuilder(SelectNode(
            _as_path(path), oid, self._node, value, card_label, card_bounds,
            prob_op, prob_bound,
        ))

    def product(
        self, other: "PlanBuilder | PlanNode | str", new_root: str | None = None
    ) -> "PlanBuilder":
        """Cartesian product with another plan (or catalog name)."""
        if isinstance(other, str):
            right: PlanNode = ScanNode(other)
        elif isinstance(other, PlanBuilder):
            right = other._node
        else:
            right = other
        return PlanBuilder(ProductNode(self._node, right, new_root))

    def point(self, path: PathExpression | str, oid: str) -> "PlanBuilder":
        """Finish with a point query."""
        return PlanBuilder(QueryNode("point", self._node,
                                     path=_as_path(path), oid=oid))

    def exists(self, path: PathExpression | str) -> "PlanBuilder":
        """Finish with an existential query."""
        return PlanBuilder(QueryNode("exists", self._node, path=_as_path(path)))

    def chain(self, chain: tuple[str, ...] | list[str]) -> "PlanBuilder":
        """Finish with an explicit-chain query."""
        return PlanBuilder(QueryNode("chain", self._node, chain=tuple(chain)))

    def prob(self, oid: str) -> "PlanBuilder":
        """Finish with an object-existence query."""
        return PlanBuilder(QueryNode("prob", self._node, oid=oid))

    def count(self, path: PathExpression | str) -> "PlanBuilder":
        """Finish with an expected-match-count query."""
        return PlanBuilder(QueryNode("count", self._node, path=_as_path(path)))

    def build(self) -> PlanNode:
        """The constructed plan."""
        return self._node
