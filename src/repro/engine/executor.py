"""The instrumented plan executor.

:class:`Engine` ties the pieces together: it translates PXQL statements
into plans, inlines the lineage of previously computed results, runs the
rewrite optimizer, executes plans bottom-up with per-node wall-clock
timings / output cardinalities / cache status, and memoizes both
optimized plans and node results in versioned LRU caches.

Result caching is per *sub-plan*: a node's key is its canonical
fingerprint plus the current version of every instance it scans, so two
different statements that share a sub-expression share its result, and
re-registering or touching any input invalidates every dependent entry
implicitly (the key changes).

Since the observability PR the executor is span-backed: every plan node
execution opens a :class:`repro.obs.tracing.Span` on the engine's
tracer, and :class:`NodeStats` is a thin per-node view over those spans
(same wall times, same tree shape) kept for ``EXPLAIN ANALYZE``
compatibility.  The engine also owns a
:class:`repro.obs.metrics.MetricsRegistry` covering cache hit ratios,
operator latencies, and objects scanned; both are made *ambient* during
execution so the rewrite optimizer, the Section 6 query algorithms and
the world sampler report into the same trace and registry.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    # pxql -> engine, and check.absint -> engine.plan -> engine (this
    # module): the absint names appear only in annotations here; the
    # runtime imports live inside the methods that need them.
    from repro.check.absint import (
        CardInterval,
        NodeFacts,
        PlanCertificate,
        ProbInterval,
    )
    from repro.pxql import ast

from repro.algebra.product import cartesian_product
from repro.algebra.projection_more import (
    descendant_projection_local,
    single_projection_local,
)
from repro.algebra.projection_prob import ancestor_projection_local
from repro.algebra.projection_prob import epsilon_pass, instance_from_epsilon_pass
from repro.algebra.selection import (
    ObjectCardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    chain_to,
    select_local,
)
from repro.check.dataguide import DataGuideCache
from repro.core.cardinality import CardinalityInterval
from repro.core.instance import ProbabilisticInstance
from repro.engine.cache import LRUCache
from repro.engine.cost import CostModel
from repro.engine.diskcache import (
    DiskResultCache,
    decode_value,
    encode_value,
    result_key,
)
from repro.engine.plan import (
    IndexedPathStepNode,
    PlanError,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    fingerprint,
    plan_statement,
    scan_names,
    walk,
)
from repro.engine.rewrite import DEFAULT_RULES, INDEX_RULES, optimize
from repro.errors import AlgebraError, BudgetExceeded
from repro.index import IndexCache, PathIndex, match_path_indexed
from repro.index.columnar import ColumnarInstance
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Span, Tracer, use_tracer
from repro.queries.chain import chain_probability
from repro.queries.engine import QueryEngine
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import current_budget
from repro.resilience.faults import fault_point

_PROJECTION_OPERATORS = {
    "ancestor": ancestor_projection_local,
    "descendant": descendant_projection_local,
    "single": single_projection_local,
}

#: Constant results of the numeric query kinds when the dataguide proves
#: the path matches nothing with certainty (factories, so dict results
#: are never shared between statements).
_SKIP_RESULTS = {
    "exists": lambda: 0.0,
    "count": lambda: 0.0,
    "point": lambda: 0.0,
    "dist": lambda: {0: 1.0},
}

#: Maximum depth of lineage inlining (cycle / runaway guard).
_MAX_INLINE_DEPTH = 16


@dataclass
class NodeStats:
    """Measurements for one executed plan node.

    Since the observability PR this is a thin view over the span the
    executor opened for the node: ``wall_s`` is the span's wall time and
    :attr:`span` links back to the full record (CPU time, attributes,
    sub-operation spans).  On a cache hit the executor re-reports the
    cached subtree *as documentation of shape only*: every descendant
    is a deep copy marked ``cache="hit"`` with zero wall time, so
    ``EXPLAIN ANALYZE`` totals never double-count work that was not
    re-executed and callers can never mutate cached stats through a
    result.
    """

    label: str
    cache: str              # "hit" | "disk" | "miss" | "off" | "scan" | "skip"
    wall_s: float = 0.0
    objects: int | None = None
    strategy: str | None = None
    extra: dict = field(default_factory=dict)
    children: list["NodeStats"] = field(default_factory=list)
    span: Span | None = None

    def walk(self) -> Iterator["NodeStats"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()


#: ``extra`` keys that carry timings (zeroed when a cached subtree is
#: re-reported, so nothing is double-counted).
_TIMING_EXTRA_KEYS = ("operator_s", "wall_s")


def _zero_timing(extra: dict) -> dict:
    return {
        key: (0.0 if key in _TIMING_EXTRA_KEYS else value)
        for key, value in extra.items()
    }


def _hit_view(stats: "NodeStats") -> "NodeStats":
    """A frozen re-report of a cached subtree: zero time, ``cache="hit"``.

    Deep-copies the whole subtree so repeated hits never alias the
    cached (or each other's) stats objects.
    """
    return NodeStats(
        stats.label,
        cache="hit",
        wall_s=0.0,
        objects=stats.objects,
        strategy=stats.strategy,
        extra=_zero_timing(stats.extra),
        children=[_hit_view(child) for child in stats.children],
    )


def _copy_stats(stats: "NodeStats") -> "NodeStats":
    """A deep copy of a stats tree (cached entries must not alias the
    tree handed to the caller, who is free to mutate it)."""
    return NodeStats(
        stats.label,
        cache=stats.cache,
        wall_s=stats.wall_s,
        objects=stats.objects,
        strategy=stats.strategy,
        extra=copy.deepcopy(stats.extra),
        children=[_copy_stats(child) for child in stats.children],
        span=stats.span,
    )


@dataclass
class ExecutionResult:
    """The outcome of one plan execution."""

    value: object
    plan: PlanNode
    stats: NodeStats
    applied_rules: tuple[str, ...]
    #: The abstract-interpretation certificate of the prepared plan
    #: (None when the pass is off or failed; see ``Engine(absint=...)``).
    certificate: PlanCertificate | None = None
    #: Interval violations found by the runtime soundness check (only
    #: populated under ``EXPLAIN ANALYZE`` / ``PROFILE``; must stay empty).
    violations: tuple[str, ...] = ()

    def find(self, label: str) -> NodeStats | None:
        """The first (outermost) node stats with the given label."""
        for stats in self.stats.walk():
            if stats.label == label:
                return stats
        return None

    @property
    def condition_probability(self) -> float | None:
        """The outermost selection's condition probability, if any."""
        for stats in self.stats.walk():
            if "condition_probability" in stats.extra:
                return stats.extra["condition_probability"]
        return None


@dataclass
class _CacheEntry:
    value: object
    extra: dict
    stats: NodeStats


@dataclass
class _Lineage:
    plan: PlanNode
    registered_version: int
    input_versions: tuple[tuple[str, int], ...]


class Engine:
    """Planner + optimizer + instrumented, caching executor.

    Args:
        database: the catalog plans scan (must expose ``get`` and
            ``version``; :class:`repro.storage.database.Database` does).
        optimizer: apply the rewrite rules (off = execute plans as
            written, for A/B parity against the naive path).
        caching: keep a versioned result cache across executions.
        cache_size: LRU capacity of the plan and result caches.
        copy_on_hit: hand out copies of cached instances so callers can
            register/mutate them without corrupting the cache.
        samples: Monte-Carlo sample count for the ``sample`` strategy.
        seed: RNG seed for the ``sample`` strategy.
        inline_lineage: expand scans of engine-produced results into the
            plans that produced them (when their inputs are unchanged),
            turning statement sequences into multi-operator plans the
            rewrite rules can work across.
        use_index: lower path navigation onto the structural index
            (``repro.index``) where the cost model prices it cheaper.
            The lowering is an equivalence (runtime falls back to the
            walked operators when the snapshot is not a tree); off = the
            pre-index plans, for A/B parity and ablation.
        absint: run the abstract interpreter (:mod:`repro.check.absint`)
            over every prepared plan.  The certificate's cardinality
            intervals sharpen the cost model, ``EXPLAIN`` renders them
            as ``est_rows=[lo,hi] prob=[l,u]``, and plans whose result
            the certificate proves constant-empty short-circuit without
            touching an instance (counted in ``check.absint_skips``).
            The pass is advisory: any failure inside it falls back to
            normal execution (counted in ``check.absint_errors``).
        disk_cache: spill result-cache entries to a checksummed
            on-disk segment under the catalog directory
            (``cache/results.segment``), keyed by plan fingerprint +
            the content checksums of every scanned instance — a
            *cross-process stable* key, so cached results survive
            process restarts and are shared between sibling shard
            processes over the same directory.  ``None`` (default) =
            auto: on iff ``caching`` is on and the database is
            directory-backed.  Entirely fail-open: corruption, key
            mismatches and I/O trouble are silently misses, counted in
            the ``engine.cache.disk_*`` metrics family.
        breaker: circuit breaker over the optimizer/cache layer (own
            instance if omitted).  Rewrite-optimizer failures degrade
            that statement to the unoptimized plan and count against the
            breaker; cache get/put failures are isolated (treated as a
            miss / skipped) and count too.  Once tripped, plans run
            unoptimized and uncached — correct, just slower — until the
            cool-down elapses and a probe succeeds.
        tracer: span collector for executions (own instance if omitted;
            pass a shared one to join a larger trace, e.g. the PXQL
            interpreter's statement spans).
        metrics: metrics registry (own instance if omitted).  Cache
            counters, operator latency histograms, and objects-scanned
            totals land here; during execution it is also the ambient
            registry for the query algorithms and the sampler.
    """

    def __init__(
        self,
        database,
        optimizer: bool = True,
        caching: bool = True,
        cache_size: int = 256,
        copy_on_hit: bool = True,
        samples: int = 2000,
        seed: int | None = None,
        inline_lineage: bool = True,
        use_index: bool = True,
        absint: bool = True,
        disk_cache: bool | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.database = database
        self.optimizer = optimizer
        self.caching = caching
        self.copy_on_hit = copy_on_hit
        self.samples = samples
        self.seed = seed
        self.inline_lineage = inline_lineage
        self.use_index = use_index
        self.absint = absint
        #: When set (``EXPLAIN ANALYZE`` / ``PROFILE``), observed
        #: cardinalities and probabilities are checked against the
        #: certificate's intervals after every execution.
        self.absint_verify = False
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cost = CostModel(database)
        self.result_cache = LRUCache(
            cache_size, name="engine.cache.results", metrics=self.metrics
        )
        #: Persistent spill segment (None = disabled / unbacked catalog).
        self.disk_cache: DiskResultCache | None = None
        directory = getattr(database, "directory", None)
        enable_disk = (
            disk_cache if disk_cache is not None
            else (caching and directory is not None)
        )
        if enable_disk and directory is not None:
            try:
                self.disk_cache = DiskResultCache(
                    directory, metrics=self.metrics
                )
            except Exception:
                # Fail-open: a broken segment must never break queries.
                self.metrics.counter("engine.cache.disk_errors").inc()
                self.disk_cache = None
        self.plan_cache = LRUCache(
            cache_size, name="engine.cache.plans", metrics=self.metrics
        )
        self.rules = DEFAULT_RULES
        self.index_cache = IndexCache()
        self.path_index = PathIndex()
        self.absint_cache = LRUCache(
            cache_size, name="engine.cache.absint", metrics=self.metrics
        )
        self._guides = DataGuideCache()
        self.breaker = (
            breaker if breaker is not None
            else CircuitBreaker(name="engine.optimizer")
        )
        self._lineage: dict[str, _Lineage] = {}

    @contextmanager
    def _ambient(self):
        """Make this engine's tracer and registry ambient for a region."""
        with use_tracer(self.tracer), use_registry(self.metrics):
            yield

    # ------------------------------------------------------------------
    # Keys, versions, lineage
    # ------------------------------------------------------------------
    def versions_of(self, plan: PlanNode) -> tuple[tuple[str, int], ...]:
        """``(name, version)`` for every instance the plan scans."""
        return tuple(
            (name, self.database.version(name)) for name in scan_names(plan)
        )

    def cache_key(self, plan: PlanNode) -> tuple:
        """The versioned cache key of a (sub-)plan.

        Keyed on the in-process versions of every scanned instance
        *and* the catalog's on-disk generation counter: versions move
        on re-registration within this process, the generation moves
        when any process mutates the shared catalog directory.  The
        generation term is what lets shard processes restarted over the
        same directory (and engines in sibling processes) reuse or
        invalidate cached plans/results correctly — an in-memory
        database reports generation 0, so unbacked engines key exactly
        as before.
        """
        return (
            fingerprint(plan),
            self.versions_of(plan),
            self.database.generation(),
        )

    def record_lineage(self, name: str, plan: PlanNode,
                       input_versions: tuple[tuple[str, int], ...]) -> None:
        """Remember that ``name`` currently holds the result of ``plan``.

        ``input_versions`` must be the scan versions *at execution time*
        (before any re-registration of ``name`` itself).
        """
        self._lineage[name] = _Lineage(
            plan, self.database.version(name), input_versions
        )

    def _lineage_plan(self, name: str) -> PlanNode | None:
        entry = self._lineage.get(name)
        if entry is None:
            return None
        try:
            if self.database.version(name) != entry.registered_version:
                return None
            for input_name, version in entry.input_versions:
                if self.database.version(input_name) != version:
                    return None
        except Exception:
            return None
        return entry.plan

    def expand(self, plan: PlanNode, _depth: int = 0) -> PlanNode:
        """Inline valid lineage plans under every scan, recursively."""
        if not self.inline_lineage or _depth >= _MAX_INLINE_DEPTH:
            return plan
        if isinstance(plan, ScanNode):
            recorded = self._lineage_plan(plan.name)
            if recorded is not None:
                return self.expand(recorded, _depth + 1)
            return plan
        children = plan.children()
        if not children:
            return plan
        new_children = tuple(
            self.expand(child, _depth + 1) for child in children
        )
        if new_children != children:
            plan = plan.with_children(new_children)
        return plan

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_statement(self, statement: "ast.Statement") -> PlanNode | None:
        """The raw (un-expanded, un-optimized) plan of a statement."""
        return plan_statement(statement)

    def prepare(self, plan: PlanNode) -> tuple[PlanNode, tuple[str, ...]]:
        """Expand lineage and optimize; memoized in the plan cache.

        The optimizer/cache layer degrades rather than fails: a rewrite
        failure falls back to the unoptimized (still correct) plan and
        counts against :attr:`breaker`; with the breaker open the layer
        is skipped entirely until its cool-down elapses.
        """
        expanded = self.expand(plan)
        if not self.optimizer or not self.breaker.allow():
            return expanded, ()
        key = self.cache_key(expanded)
        if self.caching:
            cached = self._cache_get(self.plan_cache, key)
            if cached is not None:
                return cached
        try:
            optimized, applied = optimize(expanded, self.cost, self.rules)
            if self.use_index:
                # Second stage: lower path navigation onto the index.
                # Runs after the algebraic rules reach their fixpoint so
                # collapse/push still see the Project/Select/Scan shapes
                # the lowering would otherwise hide.
                optimized, lowered = optimize(optimized, self.cost, INDEX_RULES)
                applied = applied + lowered
            prepared = (optimized, applied)
        except Exception as exc:
            self.breaker.record_failure()
            self.metrics.counter("resilience.optimizer_errors").inc()
            self.tracer.event(
                "resilience.optimizer_error",
                error=f"{type(exc).__name__}: {exc}",
            )
            return expanded, ()
        self.breaker.record_success()
        if self.caching:
            self._cache_put(self.plan_cache, key, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Abstract interpretation (interval certificates)
    # ------------------------------------------------------------------
    def certify(self, prepared: PlanNode) -> PlanCertificate | None:
        """Abstract-interpret a prepared plan into an interval certificate.

        Memoized per versioned plan key (same discipline as the result
        cache: any input re-registration changes the key).  Advisory by
        construction — a failure inside the interpreter is counted and
        swallowed, never surfaced to the query.  Tight cardinality
        intervals are installed as cost-model hints as a side effect.
        """
        if not self.absint:
            return None
        from repro.check.absint import certify_plan

        key = self.cache_key(prepared)
        if self.caching:
            cached = self._cache_get(self.absint_cache, key)
            if cached is not None:
                self._install_hints(prepared, cached)
                return cached
        try:
            with self.tracer.span("check.absint.certify"):
                certificate = certify_plan(prepared, self.database, self._guides)
        except Exception as exc:
            self.metrics.counter("check.absint_errors").inc()
            self.tracer.event(
                "check.absint_error", error=f"{type(exc).__name__}: {exc}"
            )
            return None
        self._install_hints(prepared, certificate)
        if self.caching:
            self._cache_put(self.absint_cache, key, certificate)
        return certificate

    def _install_hints(
        self, prepared: PlanNode, certificate: PlanCertificate
    ) -> None:
        """Feed tight certified cardinalities to the cost model."""
        for node, facts in zip(walk(prepared), certificate.facts):
            if facts.kind != "instance":
                continue
            if not isinstance(node, (ProjectNode, SelectNode)):
                continue
            if facts.card.hi is not None and facts.card.is_tight():
                self.cost.note_hint(
                    fingerprint(node), facts.card.lo, facts.card.hi
                )

    def _index_skip_would_fire(self, prepared: PlanNode) -> bool:
        """Whether the indexed executor's own dataguide skip will handle
        this plan (it keeps its historical ``index.skipped_instances``
        accounting, so the absint short-circuit defers to it)."""
        if not (
            self.use_index
            and isinstance(prepared, IndexedPathStepNode)
            and prepared.op != "project-ancestor"
            and isinstance(prepared.child, ScanNode)
        ):
            return False
        try:
            return self.path_index.can_match(
                self.database, prepared.child.name, prepared.path
            ) is False
        except Exception:
            return False

    def _skip_execution(
        self, prepared: PlanNode, certificate: PlanCertificate
    ) -> tuple[object, NodeStats]:
        """Serve a certified constant-empty result without executing."""
        assert certificate.kind in _SKIP_RESULTS
        self.metrics.counter("check.absint_skips").inc()
        with self.tracer.span(
            f"engine.node.{prepared.label()}", cache="skip",
            strategy="absint",
        ) as span:
            value = _SKIP_RESULTS[certificate.kind]()
        stats = NodeStats(
            prepared.label(), cache="skip",
            wall_s=span.wall_s, strategy="absint",
            extra={"absint": "empty"}, span=span,
        )
        return value, stats

    def _verify_certificate(
        self,
        certificate: PlanCertificate | None,
        value: object,
        stats: NodeStats,
    ) -> tuple[str, ...]:
        """Runtime soundness check: observations must lie in intervals."""
        if certificate is None or not self.absint_verify:
            return ()
        from repro.check.absint import verify_execution

        try:
            violations = tuple(verify_execution(certificate, value, stats))
        except Exception as exc:
            self.metrics.counter("check.absint_errors").inc()
            self.tracer.event(
                "check.absint_error", error=f"{type(exc).__name__}: {exc}"
            )
            return ()
        for message in violations:
            self.metrics.counter("check.absint_violations").inc()
            self.tracer.event("check.absint_violation", message=message)
        return violations

    # ------------------------------------------------------------------
    # Isolated cache access
    # ------------------------------------------------------------------
    def _cache_error(self, op: str, cache: LRUCache, exc: Exception) -> None:
        self.metrics.counter("resilience.cache_errors").inc()
        self.tracer.event(
            "resilience.cache_error", cache=cache.name, op=op,
            error=f"{type(exc).__name__}: {exc}",
        )
        self.breaker.record_failure()

    def _cache_get(self, cache: LRUCache, key: tuple):
        """A cache lookup that can never fail a query (errors = miss)."""
        try:
            fault_point(f"{cache.name}.get")
            return cache.get(key)
        except Exception as exc:
            self._cache_error("get", cache, exc)
            return None

    def _cache_put(self, cache: LRUCache, key: tuple, value) -> None:
        """A cache insert that can never fail a query (errors = skip)."""
        try:
            fault_point(f"{cache.name}.put")
            cache.put(key, value)
        except Exception as exc:
            self._cache_error("put", cache, exc)

    # ------------------------------------------------------------------
    # Persistent result cache (fail-open, cross-process)
    # ------------------------------------------------------------------
    def _disk_inputs(
        self, node: PlanNode
    ) -> tuple[tuple[str, str], ...] | None:
        """``(name, content checksum)`` for every scanned instance.

        ``None`` when any input is not *clean on disk* — unbacked
        catalog, unsaved in-memory mutations, missing sidecar — in
        which case the persistent cache must stay out of the query: a
        divergent in-memory instance could otherwise be answered from
        another process's on-disk state.
        """
        clean = getattr(self.database, "clean_on_disk", None)
        sidecar = getattr(self.database, "sidecar_checksum", None)
        if clean is None or sidecar is None:
            return None
        inputs: list[tuple[str, str]] = []
        for name in scan_names(node):
            try:
                if not clean(name):
                    return None
                checksum = sidecar(name)
            except Exception:
                return None
            if checksum is None:
                return None
            inputs.append((name, checksum))
        return tuple(inputs)

    def _disk_get(
        self, key: str, inputs: tuple[tuple[str, str], ...]
    ) -> "_CacheEntry | None":
        """A persistent-cache lookup that can never fail a query."""
        if self.disk_cache is None:
            return None
        try:
            fault_point("engine.cache.disk.get")
            raw = self.disk_cache.lookup(key, inputs)
            if raw is None:
                return None
            value = decode_value(raw.value)
            info = raw.stats if isinstance(raw.stats, dict) else {}
            stats = NodeStats(
                str(info.get("label", "cached")),
                cache="disk",
                objects=info.get("objects"),
                strategy=info.get("strategy"),
                extra=dict(raw.extra),
            )
            return _CacheEntry(value, dict(raw.extra), stats)
        except Exception as exc:
            self.metrics.counter("engine.cache.disk_errors").inc()
            self.tracer.event(
                "engine.cache.disk_error", op="get",
                error=f"{type(exc).__name__}: {exc}",
            )
            return None

    def _disk_put(
        self,
        key: str,
        inputs: tuple[tuple[str, str], ...],
        value: object,
        extra: dict,
        stats: NodeStats,
    ) -> None:
        """A persistent-cache spill that can never fail a query."""
        if self.disk_cache is None:
            return
        try:
            fault_point("engine.cache.disk.put")
            payload = encode_value(value)
            if payload is None:
                self.metrics.counter("engine.cache.disk_skipped").inc()
                return
            self.disk_cache.store(
                key,
                self.database.generation(),
                inputs,
                payload,
                extra=dict(extra),
                stats={
                    "label": stats.label,
                    "objects": stats.objects,
                    "strategy": stats.strategy,
                },
            )
        except Exception as exc:
            self.metrics.counter("engine.cache.disk_errors").inc()
            self.tracer.event(
                "engine.cache.disk_error", op="put",
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_plan(self, plan: PlanNode) -> ExecutionResult:
        """Prepare and run a plan."""
        with self._ambient():
            with self.tracer.span("engine.execute_plan") as root:
                prepared, applied = self.prepare(plan)
                certificate = self.certify(prepared)
                if (
                    certificate is not None
                    and certificate.skippable
                    and not self._index_skip_would_fire(prepared)
                ):
                    value, stats = self._skip_execution(prepared, certificate)
                else:
                    value, _extra, stats = self._run(prepared)
                root.attributes["rewrites"] = len(applied)
            violations = self._verify_certificate(certificate, value, stats)
            self.metrics.counter("engine.executions").inc()
            self.metrics.histogram("engine.execute_s").observe(root.wall_s)
        return ExecutionResult(
            value, prepared, stats, applied,
            certificate=certificate, violations=violations,
        )

    def execute_statement(self, statement: "ast.Statement") -> ExecutionResult:
        """Plan and run a plannable PXQL statement."""
        plan = self.plan_statement(statement)
        if plan is None:
            raise PlanError(
                f"statement {type(statement).__name__} has no plan form"
            )
        return self.execute_plan(plan)

    def _run(self, node: PlanNode) -> tuple[object, dict, NodeStats]:
        budget = current_budget()
        if budget is not None:
            # Cooperative guardrail: deadline / node-evaluation limits
            # surface here, at plan-node boundaries, as BudgetExceeded.
            budget.tick_node(node.label())

        if isinstance(node, ScanNode):
            with self.tracer.span(
                f"engine.node.{node.label()}", cache="scan"
            ) as span:
                pi = self.database.get(node.name)
                span.attributes["objects"] = len(pi)
            self.metrics.counter("engine.objects_scanned").inc(len(pi))
            stats = NodeStats(
                node.label(), cache="scan",
                wall_s=span.wall_s, objects=len(pi), span=span,
            )
            return pi, {}, stats

        use_cache = self.caching and self.breaker.allow()
        disk_key: str | None = None
        disk_inputs: tuple[tuple[str, str], ...] | None = None
        if use_cache:
            key = self.cache_key(node)
            entry = self._cache_get(self.result_cache, key)
            if entry is not None:
                value, extra, stats = self._serve_hit(node, entry)
                if budget is not None and isinstance(
                    value, ProbabilisticInstance
                ):
                    budget.charge_objects(len(value), node.label())
                return value, extra, stats
            if self.disk_cache is not None:
                disk_inputs = self._disk_inputs(node)
                if disk_inputs is not None:
                    disk_key = result_key(fingerprint(node), disk_inputs)
                    entry = self._disk_get(disk_key, disk_inputs)
                    if entry is not None:
                        # Promote to the in-memory LRU so later hits
                        # skip the decode entirely.
                        self._cache_put(self.result_cache, key, entry)
                        value, extra, stats = self._serve_hit(
                            node, entry, origin="disk"
                        )
                        if budget is not None and isinstance(
                            value, ProbabilisticInstance
                        ):
                            budget.charge_objects(len(value), node.label())
                        return value, extra, stats

        with self.tracer.span(
            f"engine.node.{node.label()}",
            cache="miss" if use_cache else "off",
        ) as span:
            child_results = [self._run(child) for child in node.children()]
            inputs = [value for value, _extra, _stats in child_results]
            with self.tracer.span(
                "engine.apply", operator=type(node).__name__
            ) as apply_span:
                value, strategy, extra = self._apply(node, inputs)
            span.attributes["strategy"] = strategy
            if isinstance(value, ProbabilisticInstance):
                span.attributes["objects"] = len(value)
        self.metrics.histogram(
            f"engine.operator.{type(node).__name__}.wall_s"
        ).observe(apply_span.wall_s)
        if budget is not None and isinstance(value, ProbabilisticInstance):
            budget.charge_objects(len(value), node.label())
        stats = NodeStats(
            node.label(),
            cache="miss" if use_cache else "off",
            wall_s=span.wall_s,
            objects=len(value) if isinstance(value, ProbabilisticInstance) else None,
            strategy=strategy,
            extra=dict(extra),
            children=[child_stats for _v, _e, child_stats in child_results],
            span=span,
        )
        stats.extra.setdefault("operator_s", apply_span.wall_s)
        if use_cache:
            # Cache a deep copy of the stats tree: the caller owns the
            # returned one and may mutate it freely.
            self._cache_put(
                self.result_cache,
                key, _CacheEntry(value, dict(extra), _copy_stats(stats)),
            )
            if disk_key is not None and disk_inputs is not None:
                self._disk_put(disk_key, disk_inputs, value, extra, stats)
        return value, extra, stats

    def _serve_hit(
        self, node: PlanNode, entry: "_CacheEntry", origin: str = "hit"
    ) -> tuple[object, dict, NodeStats]:
        """Hand out a cached sub-plan result.

        The re-reported stats subtree is a deep copy with ``cache="hit"``
        and zero wall time on every descendant (nothing below this node
        re-executed, so re-reporting the original miss timings would
        double-count them — and sharing the live list would let every
        hit alias the same mutable stats objects).  Values are guarded
        the same way: instances are copied (``copy_on_hit``) and dict
        results are deep-copied symmetrically, so callers mutating a
        returned result can never corrupt subsequent hits.
        """
        with self.tracer.span(
            f"engine.node.{node.label()}", cache=origin
        ) as span:
            value = entry.value
            if self.copy_on_hit:
                if isinstance(value, ProbabilisticInstance):
                    value = value.copy()
                elif isinstance(value, dict):
                    value = copy.deepcopy(value)
        stats = NodeStats(
            entry.stats.label, cache=origin,
            wall_s=span.wall_s,
            objects=entry.stats.objects,
            strategy=entry.stats.strategy,
            extra=_zero_timing(entry.extra),
            children=[_hit_view(child) for child in entry.stats.children],
            span=span,
        )
        return value, dict(entry.extra), stats

    def _apply(
        self, node: PlanNode, inputs: list
    ) -> tuple[object, str, dict]:
        if isinstance(node, ProjectNode):
            (pi,) = inputs
            projected = _PROJECTION_OPERATORS[node.kind](pi, node.path)
            return projected, "local", {}
        if isinstance(node, SelectNode):
            (pi,) = inputs
            selection = select_local(pi, _condition_of(node))
            check_probability_guard(
                selection.probability, node.prob_op, node.prob_bound
            )
            return selection.instance, "local", {
                "condition_probability": selection.probability,
            }
        if isinstance(node, ProductNode):
            left, right = inputs
            product = cartesian_product(left, right, node.new_root)
            return product, "local", {}
        if isinstance(node, QueryNode):
            (pi,) = inputs
            return self._apply_query(node, pi)
        if isinstance(node, IndexedPathStepNode):
            (pi,) = inputs
            return self._apply_indexed(node, pi)
        raise PlanError(f"cannot execute {type(node).__name__}")

    def _apply_indexed(
        self, node: IndexedPathStepNode, pi: ProbabilisticInstance
    ) -> tuple[object, str, dict]:
        """Evaluate a lowered path step via the columnar index.

        Three exits, in order:

        1. *skip* — for numeric query ops, the catalog's dataguide proves
           the path has zero existence probability, so the answer is a
           constant and the instance is never matched at all;
        2. *indexed* — match on the columnar snapshot and feed the
           (identical) :class:`PathMatch` to the Section 6 algorithms;
        3. *fallback* — the snapshot cannot be built or is not a tree
           (the plan-time estimate was stale): run the walked operator
           the lowering replaced.  Correctness never depends on the
           plan-time guess.
        """
        name = node.child.name if isinstance(node.child, ScanNode) else None

        if name is not None and node.op != "project-ancestor":
            # Guide-based pruning is only sound for the numeric query
            # kinds: a project-ancestor result is an *instance* whose
            # bare-root skeleton the shortcut could not reproduce.
            if self.path_index.can_match(self.database, name, node.path) is False:
                self.metrics.counter("index.skipped_instances").inc()
                with self.tracer.span(
                    f"query.{node.op}", strategy="indexed", index="skipped"
                ) as qspan:
                    value = _SKIP_RESULTS[node.op]()
                self._record_indexed_query(node.op, qspan)
                return value, "indexed", {"index": "skipped"}

        col: ColumnarInstance | None = None
        if name is not None:
            try:
                col = self.index_cache.get(self.database, name, instance=pi)
            except Exception as exc:
                self.tracer.event(
                    "index.build_error", instance=name,
                    error=f"{type(exc).__name__}: {exc}",
                )
        if col is None or not col.is_tree:
            self.metrics.counter("index.fallbacks").inc()
            return self._apply_walked(node, pi)

        if node.op == "project-ancestor":
            with self.tracer.span(
                "index.match", path=str(node.path), instance=name or pi.root
            ) as span:
                match = match_path_indexed(col, node.path)
                span.attributes["matched"] = len(match.matched)
            sweep = epsilon_pass(pi, node.path, match=match, assume_tree=True)
            projected = instance_from_epsilon_pass(pi, node.path, sweep)
            return projected, "indexed", {"index": "columnar"}

        # Numeric query kinds keep their ``query.<kind>`` span and
        # counters (the contract the walked QueryEngine established), so
        # traces and PROFILE stay comparable across strategies.
        with self.tracer.span(
            f"query.{node.op}", strategy="indexed"
        ) as qspan:
            if node.op == "point":
                # A point query never needs the full match: the target's
                # root chain comes straight from the parent pointers.
                assert node.oid is not None
                try:
                    chain = chain_to(pi, node.path, node.oid,
                                     parent_of=col.parent_map())
                    value = chain_probability(pi, chain)
                except AlgebraError:
                    value = 0.0
            else:
                with self.tracer.span(
                    "index.match", path=str(node.path), instance=name or pi.root
                ) as span:
                    match = match_path_indexed(col, node.path)
                    span.attributes["matched"] = len(match.matched)
                if node.op == "exists":
                    sweep = epsilon_pass(
                        pi, node.path, match=match, assume_tree=True
                    )
                    value = sweep.root_epsilon
                elif node.op == "count":
                    parent_map = col.parent_map()
                    total = 0.0
                    for oid in sorted(match.matched):
                        try:
                            chain = chain_to(
                                pi, node.path, oid, parent_of=parent_map
                            )
                        except AlgebraError:
                            continue
                        total += chain_probability(pi, chain)
                    value = total
                else:  # "dist"
                    from repro.queries.aggregates import (
                        match_count_distribution,
                    )

                    value = match_count_distribution(pi, node.path, match=match)
        self._record_indexed_query(node.op, qspan)
        return value, "indexed", {"index": "columnar"}

    def _record_indexed_query(self, kind: str, qspan: Span) -> None:
        """Mirror ``QueryEngine._record``'s counters for indexed queries."""
        self.metrics.counter(f"query.{kind}").inc()
        self.metrics.histogram("query.wall_s").observe(qspan.wall_s)

    def _apply_walked(
        self, node: IndexedPathStepNode, pi: ProbabilisticInstance
    ) -> tuple[object, str, dict]:
        """Run the operator an indexed path step was lowered from."""
        if node.op == "project-ancestor":
            projected = _PROJECTION_OPERATORS["ancestor"](pi, node.path)
            return projected, "local", {"index": "fallback"}
        value, strategy, extra = self._apply_query(
            QueryNode(node.op, node.child, path=node.path, oid=node.oid), pi
        )
        extra = dict(extra)
        extra["index"] = "fallback"
        return value, strategy, extra

    def _apply_query(
        self, node: QueryNode, pi: ProbabilisticInstance
    ) -> tuple[object, str, dict]:
        if node.kind in ("count", "dist"):
            from repro.queries.aggregates import (
                expected_match_count,
                match_count_distribution,
            )

            if node.kind == "count":
                return expected_match_count(pi, node.path), "aggregate", {}
            return match_count_distribution(pi, node.path), "aggregate", {}

        strategy = self.cost.choose_strategy(self.cost.measure_instance(pi))
        engine = QueryEngine(
            pi, strategy=strategy, samples=self.samples, seed=self.seed
        )
        if node.kind == "point":
            value = engine.point(node.path, node.oid)
        elif node.kind == "exists":
            value = engine.exists(node.path)
        elif node.kind == "chain":
            value = engine.chain(list(node.chain))
        else:  # "prob"
            value = engine.object_exists(node.oid)
        return value, engine.strategy, dict(engine.stats)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction counters of both caches (plus the
        persistent segment's counters when it is enabled)."""
        stats = {
            "results": self.result_cache.stats.as_dict(),
            "plans": self.plan_cache.stats.as_dict(),
        }
        if self.disk_cache is not None:
            stats["disk"] = {
                "entries": len(self.disk_cache),
                "hits": self.metrics.value("engine.cache.disk_hits"),
                "misses": self.metrics.value("engine.cache.disk_misses"),
                "spills": self.metrics.value("engine.cache.disk_spills"),
            }
        return stats

    def explain(self, plan: PlanNode) -> str:
        """Render the optimized plan with estimates (no execution)."""
        prepared, applied = self.prepare(plan)
        certificate = self.certify(prepared)
        lines = _render_plan(prepared, self, certificate)
        lines.append(_rules_line(applied))
        if certificate is not None:
            lines.append(_certificate_line(certificate))
        return "\n".join(lines)

    def explain_analyze(self, result: ExecutionResult) -> str:
        """Render an executed plan with per-node measurements."""
        lines = _render_stats(result.stats)
        lines.append(_rules_line(result.applied_rules))
        lines.append(
            f"cache: results [{self.result_cache.stats}], "
            f"plans [{self.plan_cache.stats}]"
        )
        if result.certificate is not None:
            lines.append(_certificate_line(result.certificate))
            if self.absint_verify:
                lines.append(
                    "absint violations: "
                    + (", ".join(result.violations)
                       if result.violations else "none")
                )
        return "\n".join(lines)


_GUARD_COMPARATORS = {
    ">": lambda probability, bound: probability > bound,
    ">=": lambda probability, bound: probability >= bound,
    "<": lambda probability, bound: probability < bound,
    "<=": lambda probability, bound: probability <= bound,
}


def check_probability_guard(
    probability: float, prob_op: str | None, prob_bound: float | None
) -> None:
    """Enforce a selection's probability guard (``AND PROB > t``).

    Raises :class:`~repro.errors.EmptyResultError` when the computed
    condition probability does not satisfy the comparison.
    """
    if prob_op is None or prob_bound is None:
        return
    if not _GUARD_COMPARATORS[prob_op](probability, prob_bound):
        from repro.errors import EmptyResultError

        raise EmptyResultError(
            f"probability guard failed: condition probability "
            f"{probability:.6g} is not {prob_op} {prob_bound:g}"
        )


def _condition_of(node: SelectNode):
    if node.card_label is not None:
        low, high = node.card_bounds
        return ObjectCardinalityCondition(
            node.path, node.oid, node.card_label, CardinalityInterval(low, high)
        )
    if node.value is not None:
        return ObjectValueCondition(node.path, node.oid, node.value)
    return ObjectCondition(node.path, node.oid)


def _rules_line(applied: tuple[str, ...]) -> str:
    return f"rewrites: {', '.join(applied) if applied else 'none'}"


def _tree_lines(render_node, children_of, root) -> list[str]:
    lines = [render_node(root)]

    def recurse(node, prefix: str) -> None:
        children = children_of(node)
        for index, child in enumerate(children):
            last = index == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + render_node(child))
            recurse(child, prefix + ("   " if last else "│  "))

    recurse(root, "")
    return lines


def _card_text(card: CardInterval) -> str:
    hi = "inf" if card.hi is None else str(card.hi)
    return f"[{card.lo},{hi}]"


def _prob_text(prob: ProbInterval) -> str:
    return f"[{prob.lo:.4g},{prob.hi:.4g}]"


def _certificate_line(certificate: "PlanCertificate") -> str:
    parts = [f"kind={certificate.kind}"]
    if certificate.result is not None:
        lo, hi = certificate.result
        parts.append(f"result=[{lo:.4g},{hi:.4g}]")
    if certificate.empty:
        parts.append(
            "provably empty"
            + (" (skippable)" if certificate.skippable else "")
        )
    return "absint: " + ", ".join(parts)


def _render_plan(
    plan: PlanNode,
    engine: Engine,
    certificate: "PlanCertificate | None" = None,
) -> list[str]:
    facts_of: dict[int, NodeFacts] = {}
    if certificate is not None:
        for plan_node, facts in zip(walk(plan), certificate.facts):
            facts_of[id(plan_node)] = facts

    def render(node: PlanNode) -> str:
        estimate = engine.cost.estimate(node)
        details = [
            f"est. {estimate.objects} objects",
            f"{estimate.entries} entries",
            "tree" if estimate.is_tree else "dag",
        ]
        facts = facts_of.get(id(node))
        if facts is not None:
            details.append(f"est_rows={_card_text(facts.card)}")
            details.append(f"prob={_prob_text(facts.prob)}")
        if isinstance(node, QueryNode):
            details.append(f"strategy={engine.cost.choose_strategy(estimate)}")
        elif isinstance(node, IndexedPathStepNode):
            details.append("strategy=indexed")
            details.append(
                f"nav_cost={engine.cost.navigation_cost(estimate, indexed=True):.1f}"
                f" vs {engine.cost.navigation_cost(estimate, indexed=False):.1f}"
            )
        elif not isinstance(node, ScanNode):
            details.append("strategy=local")
        if not isinstance(node, ScanNode) and engine.caching:
            cached = engine.result_cache.peek(engine.cache_key(node))
            details.append("cache=warm" if cached else "cache=cold")
        return f"{node.label()}  ({', '.join(details)})"

    return _tree_lines(render, lambda node: node.children(), plan)


def _render_stats(stats: NodeStats) -> list[str]:
    def render(node: NodeStats) -> str:
        details = [f"{node.wall_s * 1e3:.3f} ms"]
        if node.objects is not None:
            details.append(f"{node.objects} objects")
        if node.strategy is not None:
            details.append(f"strategy={node.strategy}")
        details.append(f"cache={node.cache}")
        if "condition_probability" in node.extra:
            details.append(
                f"P(condition)={node.extra['condition_probability']:.6g}"
            )
        if "stderr" in node.extra:
            details.append(f"stderr={node.extra['stderr']:.3g}")
        return f"{node.label}  ({', '.join(details)})"

    return _tree_lines(render, lambda node: node.children, stats)
