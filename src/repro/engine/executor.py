"""The instrumented plan executor.

:class:`Engine` ties the pieces together: it translates PXQL statements
into plans, inlines the lineage of previously computed results, runs the
rewrite optimizer, executes plans bottom-up with per-node wall-clock
timings / output cardinalities / cache status, and memoizes both
optimized plans and node results in versioned LRU caches.

Result caching is per *sub-plan*: a node's key is its canonical
fingerprint plus the current version of every instance it scans, so two
different statements that share a sub-expression share its result, and
re-registering or touching any input invalidates every dependent entry
implicitly (the key changes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pxql -> engine)
    from repro.pxql import ast

from repro.algebra.product import cartesian_product
from repro.algebra.projection_more import (
    descendant_projection_local,
    single_projection_local,
)
from repro.algebra.projection_prob import ancestor_projection_local
from repro.algebra.selection import (
    ObjectCardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    select_local,
)
from repro.core.cardinality import CardinalityInterval
from repro.core.instance import ProbabilisticInstance
from repro.engine.cache import LRUCache
from repro.engine.cost import CostModel
from repro.engine.plan import (
    PlanError,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    fingerprint,
    plan_statement,
    scan_names,
)
from repro.engine.rewrite import DEFAULT_RULES, optimize
from repro.queries.engine import QueryEngine

_PROJECTION_OPERATORS = {
    "ancestor": ancestor_projection_local,
    "descendant": descendant_projection_local,
    "single": single_projection_local,
}

#: Maximum depth of lineage inlining (cycle / runaway guard).
_MAX_INLINE_DEPTH = 16


@dataclass
class NodeStats:
    """Measurements for one executed plan node."""

    label: str
    cache: str                      # "hit" | "miss" | "off" | "scan"
    wall_s: float = 0.0
    objects: int | None = None
    strategy: str | None = None
    extra: dict = field(default_factory=dict)
    children: list["NodeStats"] = field(default_factory=list)

    def walk(self) -> Iterator["NodeStats"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ExecutionResult:
    """The outcome of one plan execution."""

    value: object
    plan: PlanNode
    stats: NodeStats
    applied_rules: tuple[str, ...]

    def find(self, label: str) -> NodeStats | None:
        """The first (outermost) node stats with the given label."""
        for stats in self.stats.walk():
            if stats.label == label:
                return stats
        return None

    @property
    def condition_probability(self) -> float | None:
        """The outermost selection's condition probability, if any."""
        for stats in self.stats.walk():
            if "condition_probability" in stats.extra:
                return stats.extra["condition_probability"]
        return None


@dataclass
class _CacheEntry:
    value: object
    extra: dict
    stats: NodeStats


@dataclass
class _Lineage:
    plan: PlanNode
    registered_version: int
    input_versions: tuple[tuple[str, int], ...]


class Engine:
    """Planner + optimizer + instrumented, caching executor.

    Args:
        database: the catalog plans scan (must expose ``get`` and
            ``version``; :class:`repro.storage.database.Database` does).
        optimizer: apply the rewrite rules (off = execute plans as
            written, for A/B parity against the naive path).
        caching: keep a versioned result cache across executions.
        cache_size: LRU capacity of the plan and result caches.
        copy_on_hit: hand out copies of cached instances so callers can
            register/mutate them without corrupting the cache.
        samples: Monte-Carlo sample count for the ``sample`` strategy.
        seed: RNG seed for the ``sample`` strategy.
        inline_lineage: expand scans of engine-produced results into the
            plans that produced them (when their inputs are unchanged),
            turning statement sequences into multi-operator plans the
            rewrite rules can work across.
    """

    def __init__(
        self,
        database,
        optimizer: bool = True,
        caching: bool = True,
        cache_size: int = 256,
        copy_on_hit: bool = True,
        samples: int = 2000,
        seed: int | None = None,
        inline_lineage: bool = True,
    ) -> None:
        self.database = database
        self.optimizer = optimizer
        self.caching = caching
        self.copy_on_hit = copy_on_hit
        self.samples = samples
        self.seed = seed
        self.inline_lineage = inline_lineage
        self.cost = CostModel(database)
        self.result_cache = LRUCache(cache_size)
        self.plan_cache = LRUCache(cache_size)
        self.rules = DEFAULT_RULES
        self._lineage: dict[str, _Lineage] = {}

    # ------------------------------------------------------------------
    # Keys, versions, lineage
    # ------------------------------------------------------------------
    def versions_of(self, plan: PlanNode) -> tuple[tuple[str, int], ...]:
        """``(name, version)`` for every instance the plan scans."""
        return tuple(
            (name, self.database.version(name)) for name in scan_names(plan)
        )

    def cache_key(self, plan: PlanNode) -> tuple:
        """The versioned cache key of a (sub-)plan."""
        return (fingerprint(plan), self.versions_of(plan))

    def record_lineage(self, name: str, plan: PlanNode,
                       input_versions: tuple[tuple[str, int], ...]) -> None:
        """Remember that ``name`` currently holds the result of ``plan``.

        ``input_versions`` must be the scan versions *at execution time*
        (before any re-registration of ``name`` itself).
        """
        self._lineage[name] = _Lineage(
            plan, self.database.version(name), input_versions
        )

    def _lineage_plan(self, name: str) -> PlanNode | None:
        entry = self._lineage.get(name)
        if entry is None:
            return None
        try:
            if self.database.version(name) != entry.registered_version:
                return None
            for input_name, version in entry.input_versions:
                if self.database.version(input_name) != version:
                    return None
        except Exception:
            return None
        return entry.plan

    def expand(self, plan: PlanNode, _depth: int = 0) -> PlanNode:
        """Inline valid lineage plans under every scan, recursively."""
        if not self.inline_lineage or _depth >= _MAX_INLINE_DEPTH:
            return plan
        if isinstance(plan, ScanNode):
            recorded = self._lineage_plan(plan.name)
            if recorded is not None:
                return self.expand(recorded, _depth + 1)
            return plan
        children = plan.children()
        if not children:
            return plan
        new_children = tuple(
            self.expand(child, _depth + 1) for child in children
        )
        if new_children != children:
            plan = plan.with_children(new_children)
        return plan

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_statement(self, statement: "ast.Statement") -> PlanNode | None:
        """The raw (un-expanded, un-optimized) plan of a statement."""
        return plan_statement(statement)

    def prepare(self, plan: PlanNode) -> tuple[PlanNode, tuple[str, ...]]:
        """Expand lineage and optimize; memoized in the plan cache."""
        expanded = self.expand(plan)
        if not self.optimizer:
            return expanded, ()
        key = self.cache_key(expanded)
        if self.caching:
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached
        prepared = optimize(expanded, self.cost, self.rules)
        if self.caching:
            self.plan_cache.put(key, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_plan(self, plan: PlanNode) -> ExecutionResult:
        """Prepare and run a plan."""
        prepared, applied = self.prepare(plan)
        value, _extra, stats = self._run(prepared)
        return ExecutionResult(value, prepared, stats, applied)

    def execute_statement(self, statement: "ast.Statement") -> ExecutionResult:
        """Plan and run a plannable PXQL statement."""
        plan = self.plan_statement(statement)
        if plan is None:
            raise PlanError(
                f"statement {type(statement).__name__} has no plan form"
            )
        return self.execute_plan(plan)

    def _run(self, node: PlanNode) -> tuple[object, dict, NodeStats]:
        start = time.perf_counter()
        if isinstance(node, ScanNode):
            pi = self.database.get(node.name)
            stats = NodeStats(
                node.label(), cache="scan",
                wall_s=time.perf_counter() - start, objects=len(pi),
            )
            return pi, {}, stats

        if self.caching:
            key = self.cache_key(node)
            entry = self.result_cache.get(key)
            if entry is not None:
                value = entry.value
                if isinstance(value, ProbabilisticInstance) and self.copy_on_hit:
                    value = value.copy()
                elif isinstance(value, dict):
                    value = dict(value)
                stats = NodeStats(
                    entry.stats.label, cache="hit",
                    wall_s=time.perf_counter() - start,
                    objects=entry.stats.objects,
                    strategy=entry.stats.strategy,
                    extra=dict(entry.extra),
                    children=entry.stats.children,
                )
                return value, dict(entry.extra), stats

        child_results = [self._run(child) for child in node.children()]
        inputs = [value for value, _extra, _stats in child_results]
        apply_start = time.perf_counter()
        value, strategy, extra = self._apply(node, inputs)
        now = time.perf_counter()
        stats = NodeStats(
            node.label(),
            cache="miss" if self.caching else "off",
            wall_s=now - start,
            objects=len(value) if isinstance(value, ProbabilisticInstance) else None,
            strategy=strategy,
            extra=dict(extra),
            children=[child_stats for _v, _e, child_stats in child_results],
        )
        stats.extra.setdefault("operator_s", now - apply_start)
        if self.caching:
            self.result_cache.put(key, _CacheEntry(value, dict(extra), stats))
        return value, extra, stats

    def _apply(
        self, node: PlanNode, inputs: list
    ) -> tuple[object, str, dict]:
        if isinstance(node, ProjectNode):
            (pi,) = inputs
            projected = _PROJECTION_OPERATORS[node.kind](pi, node.path)
            return projected, "local", {}
        if isinstance(node, SelectNode):
            (pi,) = inputs
            selection = select_local(pi, _condition_of(node))
            check_probability_guard(
                selection.probability, node.prob_op, node.prob_bound
            )
            return selection.instance, "local", {
                "condition_probability": selection.probability,
            }
        if isinstance(node, ProductNode):
            left, right = inputs
            product = cartesian_product(left, right, node.new_root)
            return product, "local", {}
        if isinstance(node, QueryNode):
            (pi,) = inputs
            return self._apply_query(node, pi)
        raise PlanError(f"cannot execute {type(node).__name__}")

    def _apply_query(
        self, node: QueryNode, pi: ProbabilisticInstance
    ) -> tuple[object, str, dict]:
        if node.kind in ("count", "dist"):
            from repro.queries.aggregates import (
                expected_match_count,
                match_count_distribution,
            )

            if node.kind == "count":
                return expected_match_count(pi, node.path), "aggregate", {}
            return match_count_distribution(pi, node.path), "aggregate", {}

        strategy = self.cost.choose_strategy(self.cost.measure_instance(pi))
        engine = QueryEngine(
            pi, strategy=strategy, samples=self.samples, seed=self.seed
        )
        if node.kind == "point":
            value = engine.point(node.path, node.oid)
        elif node.kind == "exists":
            value = engine.exists(node.path)
        elif node.kind == "chain":
            value = engine.chain(list(node.chain))
        else:  # "prob"
            value = engine.object_exists(node.oid)
        return value, engine.strategy, dict(engine.stats)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction counters of both caches."""
        return {
            "results": self.result_cache.stats.as_dict(),
            "plans": self.plan_cache.stats.as_dict(),
        }

    def explain(self, plan: PlanNode) -> str:
        """Render the optimized plan with estimates (no execution)."""
        prepared, applied = self.prepare(plan)
        lines = _render_plan(prepared, self)
        lines.append(_rules_line(applied))
        return "\n".join(lines)

    def explain_analyze(self, result: ExecutionResult) -> str:
        """Render an executed plan with per-node measurements."""
        lines = _render_stats(result.stats)
        lines.append(_rules_line(result.applied_rules))
        lines.append(
            f"cache: results [{self.result_cache.stats}], "
            f"plans [{self.plan_cache.stats}]"
        )
        return "\n".join(lines)


_GUARD_COMPARATORS = {
    ">": lambda probability, bound: probability > bound,
    ">=": lambda probability, bound: probability >= bound,
    "<": lambda probability, bound: probability < bound,
    "<=": lambda probability, bound: probability <= bound,
}


def check_probability_guard(
    probability: float, prob_op: str | None, prob_bound: float | None
) -> None:
    """Enforce a selection's probability guard (``AND PROB > t``).

    Raises :class:`~repro.errors.EmptyResultError` when the computed
    condition probability does not satisfy the comparison.
    """
    if prob_op is None or prob_bound is None:
        return
    if not _GUARD_COMPARATORS[prob_op](probability, prob_bound):
        from repro.errors import EmptyResultError

        raise EmptyResultError(
            f"probability guard failed: condition probability "
            f"{probability:.6g} is not {prob_op} {prob_bound:g}"
        )


def _condition_of(node: SelectNode):
    if node.card_label is not None:
        low, high = node.card_bounds
        return ObjectCardinalityCondition(
            node.path, node.oid, node.card_label, CardinalityInterval(low, high)
        )
    if node.value is not None:
        return ObjectValueCondition(node.path, node.oid, node.value)
    return ObjectCondition(node.path, node.oid)


def _rules_line(applied: tuple[str, ...]) -> str:
    return f"rewrites: {', '.join(applied) if applied else 'none'}"


def _tree_lines(render_node, children_of, root) -> list[str]:
    lines = [render_node(root)]

    def recurse(node, prefix: str) -> None:
        children = children_of(node)
        for index, child in enumerate(children):
            last = index == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + render_node(child))
            recurse(child, prefix + ("   " if last else "│  "))

    recurse(root, "")
    return lines


def _render_plan(plan: PlanNode, engine: Engine) -> list[str]:
    def render(node: PlanNode) -> str:
        estimate = engine.cost.estimate(node)
        details = [
            f"est. {estimate.objects} objects",
            f"{estimate.entries} entries",
            "tree" if estimate.is_tree else "dag",
        ]
        if isinstance(node, QueryNode):
            details.append(f"strategy={engine.cost.choose_strategy(estimate)}")
        elif not isinstance(node, ScanNode):
            details.append("strategy=local")
        if not isinstance(node, ScanNode) and engine.caching:
            cached = engine.result_cache.peek(engine.cache_key(node))
            details.append("cache=warm" if cached else "cache=cold")
        return f"{node.label()}  ({', '.join(details)})"

    return _tree_lines(render, lambda node: node.children(), plan)


def _render_stats(stats: NodeStats) -> list[str]:
    def render(node: NodeStats) -> str:
        details = [f"{node.wall_s * 1e3:.3f} ms"]
        if node.objects is not None:
            details.append(f"{node.objects} objects")
        if node.strategy is not None:
            details.append(f"strategy={node.strategy}")
        details.append(f"cache={node.cache}")
        if "condition_probability" in node.extra:
            details.append(
                f"P(condition)={node.extra['condition_probability']:.6g}"
            )
        if "stderr" in node.extra:
            details.append(f"stderr={node.extra['stderr']:.3g}")
        return f"{node.label}  ({', '.join(details)})"

    return _tree_lines(render, lambda node: node.children, stats)
