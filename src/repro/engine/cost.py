"""A simple cost model over logical plans.

The model tracks three quantities per sub-plan — estimated object count,
estimated total OPF/VPF entries (the paper's Section 7 cost parameter),
and whether the result is tree-structured — plus the root object id the
sub-plan will produce.  Scans are measured exactly from the catalog
(memoized per instance version); operators propagate:

* projection and selection keep the structure (upper bound: same size);
* product sums sizes (minus the two merged roots) and multiplies the
  roots' OPF entry counts;
* tree-ness is preserved by every operator (product of trees is a tree).

The estimates drive two decisions: product input ordering in the rewrite
optimizer, and the ``local`` vs ``bayes`` vs ``sample`` execution
strategy per query node (Section 6's thesis: prefer per-object local
computation whenever the instance is a tree).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import ProbabilisticInstance
from repro.engine.plan import (
    IndexedPathStepNode,
    PlanError,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    fingerprint,
)

#: Above this many interpretation entries a non-tree instance is judged
#: too large for exact Bayesian-network elimination and sampled instead.
SAMPLE_ENTRY_THRESHOLD = 200_000

#: Abstract per-object cost of walked path navigation: every level-set
#: step scans the frontier's out-edges through per-node ``lch`` calls.
WALK_COST_PER_OBJECT = 1.0

#: Abstract per-object cost of indexed navigation: batched membership
#: tests over flat per-label edge arrays plus interval-range pruning.
INDEXED_COST_PER_OBJECT = 0.15

#: Amortized per-object share of building (or re-validating) the
#: columnar snapshot, which the index cache reuses across statements.
INDEX_BUILD_AMORTIZED_PER_OBJECT = 0.05


@dataclass(frozen=True)
class Estimate:
    """Predicted properties of a sub-plan's result instance."""

    objects: int
    entries: int
    is_tree: bool
    root: str


class CostModel:
    """Estimates plan properties against a catalog of instances.

    Args:
        catalog: any object with ``get(name) -> ProbabilisticInstance``
            and optionally ``version(name) -> int`` (used to memoize
            per-instance measurements; a missing ``version`` disables
            memoization-by-version and measures every time).
    """

    #: Hint tables are cleared wholesale past this size (cheap leak guard;
    #: hints are re-derivable from the next certification).
    MAX_HINTS = 4096

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self._measured: dict[tuple[str, int], Estimate] = {}
        self._hints: dict[str, tuple[int, int]] = {}
        #: How many estimates were sharpened by an absint hint.
        self.hint_hits = 0

    # ------------------------------------------------------------------
    def note_hint(self, key: str, lo: int, hi: int) -> None:
        """Install a certified cardinality interval for a plan fingerprint.

        The abstract interpreter (:mod:`repro.check.absint`) proves
        ``[lo, hi]`` bounds on a sub-plan's object count; when the
        interval is tight the midpoint beats the structural upper bound
        :meth:`estimate` would otherwise propagate.
        """
        if len(self._hints) > self.MAX_HINTS:
            self._hints.clear()
        self._hints[key] = (lo, hi)

    # ------------------------------------------------------------------
    def measure_instance(self, pi: ProbabilisticInstance) -> Estimate:
        """Exact properties of a concrete instance."""
        return Estimate(
            objects=len(pi),
            entries=pi.total_interpretation_entries(),
            is_tree=pi.weak.graph().is_tree(pi.root),
            root=pi.root,
        )

    def _scan(self, name: str) -> Estimate:
        version = getattr(self._catalog, "version", lambda _n: None)(name)
        if version is not None:
            cached = self._measured.get((name, version))
            if cached is not None:
                return cached
        estimate = self.measure_instance(self._catalog.get(name))
        if version is not None:
            self._measured[(name, version)] = estimate
        return estimate

    # ------------------------------------------------------------------
    def estimate(self, plan: PlanNode) -> Estimate:
        """Recursive estimate of the plan's result."""
        if isinstance(plan, ScanNode):
            return self._scan(plan.name)
        if isinstance(plan, (ProjectNode, SelectNode)):
            child = self.estimate(plan.child)
            hint = self._hints.get(fingerprint(plan))
            if hint is not None:
                lo, hi = hint
                objects = (lo + hi) // 2
                if objects != child.objects:
                    self.hint_hits += 1
                    scale = objects / child.objects if child.objects else 0.0
                    return Estimate(
                        objects=objects,
                        entries=int(round(child.entries * scale)),
                        is_tree=child.is_tree,
                        root=child.root,
                    )
            # Structure-preserving (selection) or shrinking (projection):
            # the child's size is a safe upper bound either way.
            return child
        if isinstance(plan, ProductNode):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            root = plan.new_root
            if root is None:
                root = f"{left.root}x{right.root}"
            return Estimate(
                objects=left.objects + right.objects - 1,
                entries=left.entries + right.entries,
                is_tree=left.is_tree and right.is_tree,
                root=root,
            )
        if isinstance(plan, QueryNode):
            return self.estimate(plan.child)
        if isinstance(plan, IndexedPathStepNode):
            # Navigation is a representation change, not a size change.
            return self.estimate(plan.child)
        raise PlanError(f"cannot estimate {type(plan).__name__}")

    # ------------------------------------------------------------------
    def navigation_cost(self, estimate: Estimate, indexed: bool) -> float:
        """Abstract cost of matching a path over an instance like this.

        Prices walked navigation (per-node ``lch`` graph walks) against
        indexed navigation (flat-array sweeps plus the amortized snapshot
        build).  The lowering rules only fire when the indexed side is
        strictly cheaper, so the constants — not hard-coded rule guards —
        decide when lowering pays off.
        """
        if indexed:
            return (
                INDEXED_COST_PER_OBJECT + INDEX_BUILD_AMORTIZED_PER_OBJECT
            ) * estimate.objects
        return WALK_COST_PER_OBJECT * estimate.objects

    # ------------------------------------------------------------------
    def choose_strategy(self, estimate: Estimate) -> str:
        """The execution strategy for a query over an instance like this.

        Trees use the Section 6 local algorithms; acyclic non-trees use
        exact Bayesian-network elimination while small enough, and fall
        back to Monte-Carlo sampling beyond ``SAMPLE_ENTRY_THRESHOLD``.
        """
        if estimate.is_tree:
            return "local"
        if estimate.entries <= SAMPLE_ENTRY_THRESHOLD:
            return "bayes"
        return "sample"
