"""Rule-based plan rewriting.

Each rule is a function ``rule(node, cost) -> PlanNode | None`` returning
a replacement for ``node`` (or ``None`` when it does not apply).  The
optimizer applies the rules bottom-up to a fixpoint.  Every rule is an
*equivalence* on the global semantics — the randomized parity suite
(``tests/test_engine_parity.py``) checks each one against the naive
eager path on generated instances.

The rules and their soundness arguments:

* :func:`collapse_adjacent_projections` — ancestor (and descendant)
  projection is idempotent: a path's matches are reached through chains
  the projection itself preserves, so re-matching the same path in the
  projected world finds exactly the same objects.  Single projection is
  only idempotent for one-label paths (longer paths cannot re-match the
  flattened result).

* :func:`push_selection_below_projection` — for a chain selection whose
  path equals the ancestor projection's path, the condition ``o in p``
  (and ``val(o) = v``) has the same truth value in a world and in its
  projection: the chain to a match survives projection, and nothing the
  condition inspects is removed.  Filtering then projecting therefore
  equals projecting then filtering.  Cardinality clauses are *not*
  pushable (a match's children do not survive an ancestor projection),
  and neither are selections on other paths.

* :func:`reorder_product_by_size` — the cartesian product merges the two
  roots symmetrically (children union, OPF product), so the operands
  commute; the rule canonicalizes the smaller estimated input to the
  left, which also normalizes ``A x B`` and ``B x A`` onto one cache
  fingerprint when an explicit root id is given.  The default root id is
  pinned from the original order first so the result is unchanged.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.engine.cost import CostModel, Estimate
from repro.engine.plan import (
    IndexedPathStepNode,
    IndexedScanNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
)
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer

RewriteRule = Callable[[PlanNode, Optional[CostModel]], Optional[PlanNode]]


def collapse_adjacent_projections(
    node: PlanNode, cost: CostModel | None = None
) -> PlanNode | None:
    """``Π_p(Π_p(I)) -> Π_p(I)`` for idempotent projection kinds."""
    if not (isinstance(node, ProjectNode) and isinstance(node.child, ProjectNode)):
        return None
    inner = node.child
    if node.kind != inner.kind or node.path != inner.path:
        return None
    if node.kind == "single" and len(node.path.labels) != 1:
        return None
    return inner


def push_selection_below_projection(
    node: PlanNode, cost: CostModel | None = None
) -> PlanNode | None:
    """``σ_{p=o}(Π^anc_p(I)) -> Π^anc_p(σ_{p=o}(I))``.

    Applies the paper's Section 6 thesis — do the conditioning as
    per-object local computation on the base instance — and exposes the
    bare selection as a shareable, cacheable sub-plan.  Guarded to the
    provably equivalent case: ancestor projection, selection path equal
    to the projection path, no cardinality clause.
    """
    if not (isinstance(node, SelectNode) and isinstance(node.child, ProjectNode)):
        return None
    projection = node.child
    if projection.kind != "ancestor" or projection.path != node.path:
        return None
    if node.card_label is not None:
        return None
    if node.prob_op is not None:
        # A probability guard asserts on the condition probability in the
        # selection's *input*; conservatively keep it above the projection.
        return None
    pushed = SelectNode(node.path, node.oid, projection.child, node.value)
    return ProjectNode(projection.kind, projection.path, pushed)


def reorder_product_by_size(
    node: PlanNode, cost: CostModel | None = None
) -> PlanNode | None:
    """Put the smaller estimated product operand first (canonical order)."""
    if not isinstance(node, ProductNode) or cost is None:
        return None
    left = cost.estimate(node.left)
    right = cost.estimate(node.right)
    if left.objects <= right.objects:
        return None
    new_root = node.new_root
    if new_root is None:
        # Pin the default root id so swapping does not rename the result.
        new_root = f"{left.root}x{right.root}"
    return ProductNode(node.right, node.left, new_root)


DEFAULT_RULES: tuple[RewriteRule, ...] = (
    collapse_adjacent_projections,
    push_selection_below_projection,
    reorder_product_by_size,
)


# ----------------------------------------------------------------------
# Index lowering (a separate rule set, applied after DEFAULT_RULES so
# the algebraic rules see the original Project/Select/Scan shapes).
# ----------------------------------------------------------------------
#: Query kinds whose path navigation the index can run.
INDEXABLE_QUERY_KINDS = ("exists", "count", "dist", "point")


def _indexable_scan(
    child: PlanNode, cost: CostModel | None
) -> "tuple[ScanNode, Estimate] | None":
    """The scan + estimate when lowering pays off, else ``None``.

    Guards: the child must be a plain catalog scan (``type`` check so an
    already-lowered :class:`IndexedScanNode` is never re-lowered), the
    instance must currently be a tree (the encoding's domain; the
    executor re-checks at runtime and falls back on mismatch), and the
    cost model must price indexed navigation strictly cheaper.
    """
    if cost is None or type(child) is not ScanNode:
        return None
    try:
        estimate = cost.estimate(child)
    except Exception:
        return None   # unknown catalog name: leave the plan alone
    if not estimate.is_tree:
        return None
    if cost.navigation_cost(estimate, indexed=True) >= cost.navigation_cost(
        estimate, indexed=False
    ):
        return None
    return child, estimate


def lower_projection_to_index(
    node: PlanNode, cost: CostModel | None = None
) -> PlanNode | None:
    """``Π^anc_p(Scan) -> IndexedPathStep[project-ancestor](IndexedScan)``.

    The indexed evaluator computes the identical backward-pruned
    :class:`~repro.semistructured.paths.PathMatch` (interval containment
    on a tree equals the edge-by-edge prune) and feeds it to the same
    Section 6.1 epsilon pass, so the result instance is unchanged.
    """
    if not (isinstance(node, ProjectNode) and node.kind == "ancestor"):
        return None
    lowered = _indexable_scan(node.child, cost)
    if lowered is None:
        return None
    scan, _estimate = lowered
    return IndexedPathStepNode(
        "project-ancestor", node.path, IndexedScanNode(scan.name)
    )


def lower_query_to_index(
    node: PlanNode, cost: CostModel | None = None
) -> PlanNode | None:
    """``Query[exists|count|dist|point](Scan) -> IndexedPathStep(IndexedScan)``.

    Same match-equivalence argument as :func:`lower_projection_to_index`;
    the numeric evaluators (existential epsilon, chain products, count
    convolutions) run on the indexed match unchanged.
    """
    if not (
        isinstance(node, QueryNode)
        and node.kind in INDEXABLE_QUERY_KINDS
        and node.path is not None
    ):
        return None
    lowered = _indexable_scan(node.child, cost)
    if lowered is None:
        return None
    scan, _estimate = lowered
    return IndexedPathStepNode(
        node.kind, node.path, IndexedScanNode(scan.name), node.oid
    )


#: The lowering rule set ``Engine.prepare`` applies after DEFAULT_RULES.
INDEX_RULES: tuple[RewriteRule, ...] = (
    lower_projection_to_index,
    lower_query_to_index,
)


def optimize(
    plan: PlanNode,
    cost: CostModel | None = None,
    rules: tuple[RewriteRule, ...] = DEFAULT_RULES,
    max_passes: int = 10,
    trace: list[tuple[str, PlanNode, PlanNode]] | None = None,
) -> tuple[PlanNode, tuple[str, ...]]:
    """Apply the rules bottom-up to a fixpoint.

    Returns the rewritten plan and the names of the rules that fired, in
    application order (possibly with repeats).  When a ``trace`` list is
    passed, every firing appends ``(rule_name, before, after)`` — the
    raw material for the static checker's machine-checkable soundness
    justifications (:mod:`repro.check.rewrites`).

    Observability: the whole fixpoint runs inside an
    ``engine.optimize`` span on the ambient tracer, each firing attaches
    an ``engine.rewrite.<rule>`` child span with the before/after
    labels, and the ambient metrics registry counts firings per rule
    (``engine.rewrite.rule.<rule>``) plus an ``engine.rewrite.optimize_s``
    latency histogram.
    """
    applied: list[str] = []
    tracer = current_tracer()
    registry = current_registry()

    def rewrite(node: PlanNode) -> PlanNode:
        children = node.children()
        if children:
            new_children = tuple(rewrite(child) for child in children)
            if new_children != children:
                node = node.with_children(new_children)
        changed = True
        while changed:
            changed = False
            for rule in rules:
                rule_start = time.perf_counter()
                replacement = rule(node, cost)
                rule_s = time.perf_counter() - rule_start
                if replacement is not None and replacement != node:
                    applied.append(rule.__name__)
                    tracer.event(
                        f"engine.rewrite.{rule.__name__}",
                        wall_s=rule_s,
                        before=node.label(),
                        after=replacement.label(),
                    )
                    registry.counter(
                        f"engine.rewrite.rule.{rule.__name__}"
                    ).inc()
                    if trace is not None:
                        trace.append((rule.__name__, node, replacement))
                    node = replacement
                    changed = True
        return node

    with tracer.span("engine.optimize") as span:
        for _ in range(max_passes):
            before = plan
            plan = rewrite(plan)
            if plan == before:
                break
        span.attributes["applied"] = len(applied)
    registry.histogram("engine.rewrite.optimize_s").observe(span.wall_s)
    return plan, tuple(applied)
