"""A small, thread-safe LRU cache with hit/miss/eviction counters.

The engine keeps two of these: one for optimized plans and one for
execution results.  Keys are ``(canonical plan fingerprint, instance
versions)`` tuples — the version half comes from
:meth:`repro.storage.database.Database.version`, which increases
monotonically whenever an instance is (re-)registered, reloaded or
touched, so stale entries can never be returned: a mutated input changes
the key, and the orphaned entry simply ages out of the LRU order.

When constructed with a ``name`` and a
:class:`~repro.obs.metrics.MetricsRegistry`, every hit/miss/eviction is
mirrored into ``<name>.hits`` / ``<name>.misses`` / ``<name>.evictions``
counters and a ``<name>.size`` gauge, so the registry view and
:attr:`LRUCache.stats` always agree.

Every operation (lookup, insert, eviction, counter update) happens under
one internal lock, so concurrent readers and writers can never tear an
entry or lose a counter increment: ``hits + misses == gets`` holds under
any interleaving.  The ``lock.cache`` / ``lock.<name>`` fault-point just
before the lock is a scheduling-fault site — a ``barrier`` or ``slow``
:class:`~repro.resilience.faults.FaultSpec` there piles threads up at
the lock boundary to amplify races in chaos tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.resilience.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


_MISSING = object()


@dataclass
class CacheStats:
    """Cumulative cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    gets: int = 0
    size: int = 0
    capacity: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "gets": self.gets,
            "size": self.size,
            "capacity": self.capacity,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions, {self.size}/{self.capacity} entries"
        )


class LRUCache:
    """Least-recently-used mapping with instrumentation (thread-safe)."""

    def __init__(
        self,
        capacity: int = 256,
        name: str | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._metrics = metrics if name is not None else None
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.gets = 0
        self._fault_site = f"lock.{name}" if name is not None else "lock.cache"

    def _count(self, event: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"{self.name}.{event}").inc(amount)

    def _track_size(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge(f"{self.name}.size").set(len(self._entries))

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default=None):
        """Look up ``key``, counting a hit or miss and refreshing recency."""
        fault_point(self._fault_site)
        with self._lock:
            self.gets += 1
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                self._count("misses")
                return default
            self.hits += 1
            self._count("hits")
            self._entries.move_to_end(key)
            return value

    def peek(self, key: Hashable) -> bool:
        """Whether ``key`` is cached, without touching any counter."""
        with self._lock:
            return key in self._entries

    def put(self, key: Hashable, value) -> None:
        """Insert or refresh an entry, evicting the oldest past capacity."""
        fault_point(self._fault_site)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
            self._track_size()

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._track_size()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters (taken under the lock)."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                gets=self.gets,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:
        return f"LRUCache({self.stats})"
