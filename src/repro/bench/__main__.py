"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench fig7a  [--quick] [--json OUT.json]
    python -m repro.bench fig7b  [--quick]
    python -m repro.bench fig7c  [--quick]
    python -m repro.bench engine [--quick] [--json OUT.json]
    python -m repro.bench engine --smoke [--metrics OUT.json]
    python -m repro.bench index  [--quick] [--json OUT.json]
    python -m repro.bench index  --smoke [--metrics OUT.json]
    python -m repro.bench absint [--quick] [--json OUT.json]
    python -m repro.bench absint --smoke [--metrics OUT.json]
    python -m repro.bench server [--quick] [--json OUT.json]
    python -m repro.bench server --smoke [--metrics OUT.json]
    python -m repro.bench server --rebalance [--smoke]
    python -m repro.bench gate   [--threshold 0.30]
    python -m repro.bench all    [--quick] [--json OUT.json]

``fig7a``/``fig7b`` share one ancestor-projection sweep (total time and
p-update time are two views of the same measurements); ``fig7c`` runs the
selection sweep; ``engine`` measures the query engine's optimizer and
cache effect (naive / optimized / cold-cache / warm-cache) on a
projection-selection-query pipeline; ``index`` compares indexed vs
walked path navigation (:mod:`repro.bench.index`); ``absint`` measures
the abstract interpreter's certification overhead and provably-empty
short-circuit win (:mod:`repro.bench.absint`); ``server`` measures
end-to-end serving throughput, single-process thread pool vs sharded
worker processes (:mod:`repro.bench.server`); ``gate`` checks the
recorded ratio metrics against their trajectory and exits non-zero on
a regression (:mod:`repro.bench.gate`).

``--smoke`` is the CI entry point: the quick grid with minimal repeats,
plus a :mod:`repro.obs` metrics dump (``--metrics``, default
``results/bench_metrics.json``) summarizing cache counters and operator
latencies across the run.  ``--append-records`` appends the raw records
to ``results/bench_records.json`` instead of requiring ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import (
    DEFAULT_GRID,
    QUICK_GRID,
    SweepConfig,
    format_series,
    records_to_dicts,
    run_projection_sweep,
    run_selection_sweep,
)


def _config(quick: bool, opf_kind: str = "tabular") -> SweepConfig:
    grid = dict(QUICK_GRID if quick else DEFAULT_GRID)
    if quick:
        return SweepConfig(grid=grid, instances_per_config=1,
                           queries_per_instance=3, opf_kind=opf_kind)
    return SweepConfig(grid=grid, opf_kind=opf_kind)


def _report(path: str) -> int:
    """Re-render the figure tables from previously saved raw records."""
    from repro.bench.runner import SweepRecord
    from repro.bench.timing import TimingBreakdown

    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    by_operation: dict[str, list[SweepRecord]] = {}
    for entry in raw:
        record = SweepRecord(
            operation=entry["operation"],
            labeling=entry["labeling"],
            branching=entry["branching"],
            depth=entry["depth"],
            objects=entry["objects"],
            entries=entry["entries"],
            queries=entry["queries"],
            timing=TimingBreakdown(
                copy=entry["copy_s"], locate=entry["locate_s"],
                structure=entry["structure_s"], update=entry["update_s"],
                write=entry["write_s"],
            ),
        )
        by_operation.setdefault(record.operation, []).append(record)
    if "projection" in by_operation:
        print("Figure 7(a): ancestor projection — total query time (ms)")
        print(format_series(by_operation["projection"], "total"))
        print()
        print("Figure 7(b): ancestor projection — update p time (ms)")
        print(format_series(by_operation["projection"], "update"))
        print()
    if "selection" in by_operation:
        print("Figure 7(c): selection — total query time (ms)")
        print(format_series(by_operation["selection"], "total"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the PXML paper's Figure 7 experiment series.",
    )
    parser.add_argument(
        "figure",
        choices=("fig7a", "fig7b", "fig7c", "engine", "index", "absint",
                 "server", "gate", "all", "report"),
    )
    parser.add_argument("--quick", action="store_true", help="use the small grid")
    parser.add_argument(
        "--independent", action="store_true",
        help="use compact independent OPFs instead of the paper's 2^b tables",
    )
    parser.add_argument("--json", metavar="PATH", help="also dump raw records")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke run: quick grid, minimal repeats, metrics dump",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="write the shared metrics registry as JSON "
             "(default with --smoke: results/bench_metrics.json)",
    )
    parser.add_argument(
        "--append-records", action="store_true",
        help="append raw records to results/bench_records.json",
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="gate: maximum tolerated relative drop of a ratio metric "
             "(default 0.30)",
    )
    parser.add_argument(
        "--rebalance", action="store_true",
        help="server: also measure throughput during a live 2 -> 3 "
             "shard migration (and the migration's wall time)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.quick = True

    if args.figure == "gate":
        from repro.bench.gate import DEFAULT_THRESHOLD, run_gate

        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        return run_gate(threshold=threshold)

    if args.figure == "report":
        if not args.json:
            parser.error("report needs --json PATH pointing at saved records")
        return _report(args.json)

    config = _config(args.quick, "independent" if args.independent else "tabular")
    all_records = []

    if args.figure in ("fig7a", "fig7b", "all"):
        records = run_projection_sweep(config)
        all_records.extend(records_to_dicts(records))
        if args.figure in ("fig7a", "all"):
            print("Figure 7(a): ancestor projection — total query time (ms)")
            print(format_series(records, "total"))
            print()
        if args.figure in ("fig7b", "all"):
            print("Figure 7(b): ancestor projection — update p time (ms)")
            print(format_series(records, "update"))
            print()
    if args.figure in ("fig7c", "all"):
        records = run_selection_sweep(config)
        all_records.extend(records_to_dicts(records))
        print("Figure 7(c): selection — total query time (ms)")
        print(format_series(records, "total"))
        print()
        print("Figure 7(c) detail: selection — disk-write component (ms)")
        print(format_series(records, "write"))
        print()
    if args.figure in ("engine", "index", "absint", "server", "all"):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()

        if args.figure in ("engine", "all"):
            from repro.bench.engine import (
                format_engine_records,
                records_to_dicts as engine_records_to_dicts,
                run_engine_bench,
            )

            engine_records = run_engine_bench(
                quick=args.quick,
                repeats=2 if args.smoke else 5,
                metrics=registry,
            )
            all_records.extend(engine_records_to_dicts(engine_records))
            print("Engine: pipeline time per mode (ms)")
            print(format_engine_records(engine_records))
            print()

        if args.figure in ("index", "all"):
            from repro.bench.index import (
                format_index_records,
                records_to_dicts as index_records_to_dicts,
                run_index_bench,
            )

            index_records = run_index_bench(
                quick=args.quick,
                repeats=3 if args.smoke else 20,
                metrics=registry,
            )
            all_records.extend(index_records_to_dicts(index_records))
            print("Path index: mean per-query time per mode (ms)")
            print(format_index_records(index_records))
            print()

        if args.figure in ("absint", "all"):
            from repro.bench.absint import (
                format_absint_records,
                records_to_dicts as absint_records_to_dicts,
                run_absint_bench,
            )

            absint_records = run_absint_bench(
                quick=args.quick,
                repeats=3 if args.smoke else 20,
                metrics=registry,
            )
            all_records.extend(absint_records_to_dicts(absint_records))
            print("Absint: mean per-evaluation time per mode (ms)")
            print(format_absint_records(absint_records))
            print()

        if args.figure in ("server", "all"):
            from repro.bench.server import (
                format_server_records,
                records_to_dicts as server_records_to_dicts,
                run_server_bench,
            )

            server_records = run_server_bench(
                quick=args.quick,
                ops=48 if args.smoke else None,
                metrics=registry,
            )
            if args.rebalance:
                from repro.bench.server import run_rebalance_bench

                server_records.extend(run_rebalance_bench(
                    quick=args.quick,
                    ops=48 if args.smoke else None,
                    metrics=registry,
                ))
            all_records.extend(server_records_to_dicts(server_records))
            print("Server: end-to-end throughput per serving mode")
            print(format_server_records(server_records))
            print()

        metrics_path = args.metrics
        if metrics_path is None and args.smoke:
            metrics_path = "results/bench_metrics.json"
        if metrics_path is not None:
            from repro.obs.export import write_metrics_json

            write_metrics_json(registry, metrics_path)
            print(f"metrics written to {metrics_path}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(all_records, handle, indent=2)
        print(f"raw records written to {args.json}")
    if args.append_records:
        from repro.obs.export import append_bench_records

        path = append_bench_records(all_records)
        print(f"{len(all_records)} records appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
