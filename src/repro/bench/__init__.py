"""The Section 7 experiment harness: component timing and sweep runner."""

from repro.bench.runner import (
    DEFAULT_GRID,
    QUICK_GRID,
    SweepConfig,
    SweepRecord,
    format_series,
    records_to_dicts,
    run_projection_sweep,
    run_selection_sweep,
)
from repro.bench.timing import (
    TimingBreakdown,
    timed_ancestor_projection,
    timed_selection,
)

__all__ = [
    "DEFAULT_GRID",
    "QUICK_GRID",
    "SweepConfig",
    "SweepRecord",
    "TimingBreakdown",
    "format_series",
    "records_to_dicts",
    "run_projection_sweep",
    "run_selection_sweep",
    "timed_ancestor_projection",
    "timed_selection",
]
