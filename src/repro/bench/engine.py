"""Engine benchmark: optimizer and cache effect on a statement pipeline.

For each grid cell the benchmark builds the canonical three-operator
pipeline — ancestor projection, then a selection on the projected path,
then a point query — and measures it four ways:

* ``naive``     — optimizer off, caching off (the pre-engine eager path);
* ``optimized`` — optimizer on, caching off (rewrites only);
* ``cold``      — optimizer on, caching on, first execution;
* ``warm``      — optimizer on, caching on, repeated execution (every
  sub-plan served from the versioned result cache).

Each record carries the result-cache hit/miss counters observed in that
mode, so the ``warm`` speedup is attributable.  Records go to
``results/bench_records.json`` next to the Figure 7 sweeps (they are
distinguished by ``operation == "engine"``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.engine import Engine, PlanBuilder
from repro.obs.metrics import MetricsRegistry
from repro.semistructured.paths import match_path
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

#: (labeling, branching, depth) cells; sizes follow the Figure 7 shape.
DEFAULT_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 3), ("SL", 2, 5), ("SL", 2, 7),
    ("SL", 4, 3), ("SL", 4, 4),
    ("FR", 2, 5), ("FR", 4, 4),
)

QUICK_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 3), ("SL", 2, 5), ("FR", 4, 3),
)

MODES = ("naive", "optimized", "cold", "warm")


@dataclass
class EngineRecord:
    """One measured (cell, mode) combination."""

    labeling: str
    branching: int
    depth: int
    objects: int
    entries: int
    mode: str
    repeats: int
    total_s: float
    applied_rules: int
    cache_hits: int
    cache_misses: int

    def as_dict(self) -> dict:
        return {
            "operation": "engine",
            "labeling": self.labeling,
            "branching": self.branching,
            "depth": self.depth,
            "objects": self.objects,
            "entries": self.entries,
            "mode": self.mode,
            "repeats": self.repeats,
            "total_s": self.total_s,
            "applied_rules": self.applied_rules,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def pipeline_plan(workload, rng: random.Random):
    """The benchmark pipeline: project, select on the path, point query."""
    path = random_projection_path(workload, rng)
    graph = workload.instance.weak.graph()
    oid = rng.choice(sorted(match_path(graph, path).matched))
    return (
        PlanBuilder.scan("base")
        .project(path)
        .select(path, oid)
        .point(path, oid)
        .build()
    )


def _engine_for(
    mode: str, database: Database, metrics: MetricsRegistry | None = None
) -> Engine:
    if mode == "naive":
        return Engine(database, optimizer=False, caching=False, metrics=metrics)
    if mode == "optimized":
        return Engine(database, optimizer=True, caching=False, metrics=metrics)
    return Engine(database, optimizer=True, caching=True, metrics=metrics)


def _measure_cell(
    labeling: str, branching: int, depth: int, seed: int, repeats: int,
    metrics: MetricsRegistry | None = None,
) -> list[EngineRecord]:
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=seed)
    )
    rng = random.Random(seed + 1)
    plan = pipeline_plan(workload, rng)

    records: list[EngineRecord] = []
    for mode in MODES:
        database = Database()
        database.register("base", workload.instance)
        engine = _engine_for(mode, database, metrics)
        if mode == "warm":  # populate the caches outside the clock
            engine.execute_plan(plan)
        before = engine.result_cache.stats
        elapsed = 0.0
        for _ in range(repeats):
            if mode == "cold":  # every repetition starts empty
                engine.result_cache.clear()
                engine.plan_cache.clear()
            start = time.perf_counter()
            result = engine.execute_plan(plan)
            elapsed += time.perf_counter() - start
        after = engine.result_cache.stats
        records.append(EngineRecord(
            labeling=labeling,
            branching=branching,
            depth=depth,
            objects=workload.num_objects,
            entries=workload.total_entries,
            mode=mode,
            repeats=repeats,
            total_s=elapsed / repeats,
            applied_rules=len(result.applied_rules),
            cache_hits=after.hits - before.hits,
            cache_misses=after.misses - before.misses,
        ))
    return records


def run_engine_bench(
    quick: bool = False, seed: int = 11, repeats: int = 5,
    metrics: MetricsRegistry | None = None,
) -> list[EngineRecord]:
    """Measure every (cell, mode) combination of the grid.

    When ``metrics`` is given, every benchmark engine reports into that
    shared registry (cache counters, operator latency histograms, ...),
    so a single ``repro.obs`` metrics dump summarizes the whole run.
    """
    grid = QUICK_GRID if quick else DEFAULT_GRID
    records: list[EngineRecord] = []
    for labeling, branching, depth in grid:
        records.extend(
            _measure_cell(labeling, branching, depth, seed, repeats, metrics)
        )
    return records


def format_engine_records(records: list[EngineRecord]) -> str:
    """An aligned per-cell table: one column per mode, times in ms."""
    cells: dict[tuple[str, int, int, int], dict[str, EngineRecord]] = {}
    for record in records:
        key = (record.labeling, record.branching, record.depth, record.objects)
        cells.setdefault(key, {})[record.mode] = record

    header = ["cell".ljust(16)] + [f"{mode:>12}" for mode in MODES] + [
        f"{'warm hits':>10}"
    ]
    lines = ["  ".join(header)]
    for key in sorted(cells):
        labeling, branching, depth, objects = key
        row = [f"{labeling} b={branching} d={depth}".ljust(16)]
        for mode in MODES:
            record = cells[key].get(mode)
            row.append(
                f"{record.total_s * 1e3:>12.3f}" if record else " " * 12
            )
        warm = cells[key].get("warm")
        row.append(f"{warm.cache_hits if warm else 0:>10}")
        lines.append("  ".join(row))
    return "\n".join(lines)


def records_to_dicts(records: list[EngineRecord]) -> list[dict]:
    """Machine-readable form, mergeable with the Figure 7 records."""
    return [record.as_dict() for record in records]
