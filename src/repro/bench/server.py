"""Server throughput benchmark: thread pool vs sharded processes.

One generated workload instance is registered under several names, a
mixed statement batch (``EXISTS`` probes and ``PROJECT ... AS``
derivations spread across those names) is driven through two serving
configurations, and end-to-end throughput is measured from first
submission to last resolved future:

* ``single``  — one :class:`~repro.server.server.PXQLServer` thread
  pool over one in-process :class:`~repro.storage.database.Database`;
* ``sharded`` — a :class:`~repro.server.shard.ShardedServer`: the same
  statements routed by consistent hashing to worker *processes*, each
  serving a shard-local catalog directory.

The ``sharded`` record carries ``speedup`` — sharded throughput over
single-process throughput — which is the trajectory metric the bench
gate watches.  On a single-core machine the honest expectation is a
ratio *below* one (pipe RPC and process scheduling cost real time and
there is no parallelism to buy back); the gate cares about the ratio
drifting, not its absolute value.  Records land in
``results/bench_records.json`` with ``operation == "server"``.

A third mode, ``warm-restart``, measures what the persistent result
cache (:mod:`repro.engine.diskcache`) buys across a process restart: a
directory-backed server answers a probe batch cold (populating the
disk segment), is torn down, and a *fresh* server over the same
directory answers the identical batch again.  Its ``speedup`` — warm
throughput over cold throughput — is expected **above** one (the warm
run reads results from the spilled segment instead of re-evaluating)
and joins the same gate trajectory.

``--rebalance`` (:func:`run_rebalance_bench`) measures the live
migration path: a 2-shard directory-backed server answers a probe
batch at rest (the baseline), then answers the same-sized batch *while*
``resize(3)`` migrates keys under it.  Two records join the gate:
``rebalance-serving`` (throughput during migration over baseline — how
much serving capacity the migration costs; expected near, and gated
against drifting far below, one) and ``rebalance-migration`` (the
migration's wall time, as the ratio of the baseline batch time over
it — a pure trajectory metric for migration cost).
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.io.json_codec import dumps
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.server.server import PXQLServer
from repro.server.shard import ShardedServer
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

#: (labeling, branching, depth) — one cell; the server bench measures
#: serving throughput, not algebra scaling, so a modest instance whose
#: per-statement cost (~1 ms) clearly exceeds the per-request routing
#: overhead is right.
DEFAULT_CELL: tuple[str, int, int] = ("SL", 2, 6)
#: The smoke run keeps the same cell: shrinking the instance would let
#: per-request routing overhead dominate and turn the ratio into an
#: RPC microbenchmark.  Smoke mode shrinks ``ops`` instead.
QUICK_CELL: tuple[str, int, int] = DEFAULT_CELL

#: Instance names the batch is spread across (and routed by).
INSTANCES = 4

MODES = (
    "single", "sharded", "warm-restart",
    "rebalance-serving", "rebalance-migration",
)


@dataclass
class ServerRecord:
    """One measured serving configuration."""

    labeling: str
    branching: int
    depth: int
    objects: int
    mode: str
    workers: int
    shards: int
    ops: int
    total_s: float                 # wall time, first submit → last result
    throughput: float              # statements per second
    speedup: float | None = None   # sharded/single ratio, on the sharded row

    def as_dict(self) -> dict:
        return {
            "operation": "server",
            "labeling": self.labeling,
            "branching": self.branching,
            "depth": self.depth,
            "objects": self.objects,
            "mode": self.mode,
            "workers": self.workers,
            "shards": self.shards,
            "ops": self.ops,
            "total_s": self.total_s,
            "throughput": self.throughput,
            "speedup": self.speedup,
        }


def _statement_batch(
    workload, ops: int, seed: int, tag: str
) -> list[str]:
    """A mixed batch: probes and ``AS``-target derivations, spread
    across the registered instance names (and therefore across shards).

    ``tag`` keeps the warmup and timed batches disjoint (different
    random paths, different target names): the timed run must measure
    real statement evaluation on every worker, not engine-cache hits —
    a hit-only run would reduce the comparison to routing overhead and
    hide the parallelism the sharded deployment exists to buy.
    """
    rng = random.Random(seed)
    statements: list[str] = []
    for index in range(ops):
        name = f"inst{index % INSTANCES}"
        path = random_projection_path(workload, rng)
        if index % 3 == 2:
            statements.append(
                f"PROJECT {path} FROM {name} AS {tag}_out{index % 8}"
            )
        else:
            statements.append(f"EXISTS {path} IN {name}")
    return statements


def _drive(submit, statements: list[str], timeout_s: float = 120.0) -> float:
    """Submit everything, wait for every future; the elapsed wall time."""
    start = time.perf_counter()
    futures = [submit(statement) for statement in statements]
    for future in futures:
        future.result(timeout_s)
    return time.perf_counter() - start


def _measure_single(
    instance, warmup: list[str], timed: list[str], workers: int
) -> float:
    database = Database()
    for index in range(INSTANCES):
        database.register(f"inst{index}", instance)
    server = PXQLServer(
        database=database, workers=workers,
        queue_size=max(64, len(timed)), poll_s=0.002,
    ).start()
    try:
        _drive(server.submit, warmup)
        return _drive(server.submit, timed)
    finally:
        server.stop(drain=True, timeout_s=30.0)


def _measure_sharded(
    instance, warmup: list[str], timed: list[str],
    shards: int, workers: int,
) -> float:
    payload = dumps(instance)
    with tempfile.TemporaryDirectory(prefix="pxml-bench-shards-") as root:
        server = ShardedServer(
            Path(root), shards=shards, workers_per_shard=workers,
            queue_size=max(64, len(timed)), poll_s=0.002,
        ).start()
        try:
            for index in range(INSTANCES):
                server.register_instance(
                    f"inst{index}", payload, save=False
                )
            _drive(server.submit, warmup)
            return _drive(server.submit, timed)
        finally:
            server.stop(drain=True, timeout_s=30.0)


def _probe_batch(workload, ops: int, seed: int) -> list[str]:
    """``EXISTS``-only probes for the warm-restart comparison.

    Probes over *saved* instances are exactly what the persistent
    result cache can serve after a restart; ``AS``-target derivations
    would register fresh (dirty, unsaved) results and re-execute on
    both sides, diluting the ratio into noise.
    """
    rng = random.Random(seed)
    return [
        f"EXISTS {random_projection_path(workload, rng)} "
        f"IN inst{index % INSTANCES}"
        for index in range(ops)
    ]


def _measure_warm_restart(
    instance, statements: list[str], workers: int
) -> tuple[float, float]:
    """``(cold_s, warm_s)`` for the same probe batch across a restart.

    The cold pass runs a fresh directory-backed server (spilling every
    result to the catalog's ``cache/results.segment``); the warm pass
    tears that server down and builds a **new** ``Database`` + server
    over the same directory — the process-restart simulation — so every
    in-memory cache starts empty and any reuse is the disk segment's.
    """
    with tempfile.TemporaryDirectory(prefix="pxml-bench-restart-") as root:
        directory = Path(root)
        queue = max(64, len(statements))

        database = Database(directory)
        for index in range(INSTANCES):
            name = f"inst{index}"
            database.register(name, instance)
            database.save(name)
        server = PXQLServer(
            database=database, workers=workers,
            queue_size=queue, poll_s=0.002,
        ).start()
        try:
            cold_s = _drive(server.submit, statements)
        finally:
            server.stop(drain=True, timeout_s=30.0)

        restarted = PXQLServer(
            database=Database(directory), workers=workers,
            queue_size=queue, poll_s=0.002,
        ).start()
        try:
            warm_s = _drive(restarted.submit, statements)
        finally:
            restarted.stop(drain=True, timeout_s=30.0)
    return cold_s, warm_s


def _measure_rebalance(
    instance, probes: list[str], warmup: list[str], workers: int,
) -> tuple[float, float, float, int]:
    """``(baseline_s, during_s, migration_s, moves)`` for one resize.

    A 2-shard directory-backed server (instances *saved*, so migration
    copies real files) answers the probe batch at rest, then answers it
    again while ``resize(3)`` runs in a background thread — the reads
    cross the migration's dual-check window and any fenced keys.
    """
    payload = dumps(instance)
    with tempfile.TemporaryDirectory(prefix="pxml-bench-rebalance-") as root:
        server = ShardedServer(
            Path(root), shards=2, workers_per_shard=workers,
            queue_size=max(64, len(probes)), poll_s=0.002,
        ).start()
        try:
            for index in range(INSTANCES):
                server.register_instance(f"inst{index}", payload, save=True)
            _drive(server.submit, warmup)
            baseline_s = _drive(server.submit, probes)
            migration: dict[str, float] = {}

            def _resize() -> None:
                start = time.perf_counter()
                server.resize(3)
                migration["s"] = time.perf_counter() - start

            mover = threading.Thread(target=_resize, name="bench-resize")
            mover.start()
            try:
                during_s = _drive(server.submit, probes)
            finally:
                mover.join(timeout=120.0)
            moves = int(server.rebalance_status().get("total_moves", 0))
            return baseline_s, during_s, migration.get("s", 0.0), moves
        finally:
            server.stop(drain=True, timeout_s=30.0)


def run_rebalance_bench(
    quick: bool = False, seed: int = 13, ops: int | None = None,
    workers: int = 2, metrics: MetricsRegistry | None = None,
) -> list[ServerRecord]:
    """Measure serving throughput during a live 2 → 3 resize."""
    labeling, branching, depth = QUICK_CELL if quick else DEFAULT_CELL
    if ops is None:
        ops = 48 if quick else 160
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=seed)
    )
    instance = workload.instance
    warmup = _probe_batch(workload, min(ops, 24), seed + 4)
    probes = _probe_batch(workload, ops, seed + 5)
    registry = metrics if metrics is not None else MetricsRegistry()
    with use_registry(registry):
        baseline_s, during_s, migration_s, moves = _measure_rebalance(
            instance, probes, warmup, workers
        )
    common = dict(
        labeling=labeling, branching=branching, depth=depth,
        objects=len(instance), ops=ops,
    )
    baseline_tp = ops / baseline_s if baseline_s > 0 else 0.0
    during_tp = ops / during_s if during_s > 0 else 0.0
    return [
        ServerRecord(mode="rebalance-serving", workers=workers, shards=3,
                     total_s=during_s, throughput=during_tp,
                     speedup=(
                         during_tp / baseline_tp if baseline_tp > 0 else None
                     ),
                     **common),
        ServerRecord(mode="rebalance-migration", workers=workers, shards=3,
                     total_s=migration_s,
                     throughput=(
                         moves / migration_s if migration_s > 0 else 0.0
                     ),
                     speedup=(
                         baseline_s / migration_s if migration_s > 0 else None
                     ),
                     **common),
    ]


def run_server_bench(
    quick: bool = False, seed: int = 13, ops: int | None = None,
    shards: int = 2, workers: int = 2,
    metrics: MetricsRegistry | None = None,
) -> list[ServerRecord]:
    """Measure both serving modes over one generated workload.

    ``workers`` is the thread count of the single-process pool *and* of
    each shard, so the sharded configuration has ``shards`` times the
    worker threads — that is the deployment the ratio is about.
    """
    labeling, branching, depth = QUICK_CELL if quick else DEFAULT_CELL
    if ops is None:
        ops = 48 if quick else 160
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=seed)
    )
    instance = workload.instance
    warmup = _statement_batch(workload, min(ops, 24), seed + 1, "warm")
    timed = _statement_batch(workload, ops, seed + 2, "bench")
    probes = _probe_batch(workload, ops, seed + 3)
    registry = metrics if metrics is not None else MetricsRegistry()
    with use_registry(registry):
        single_s = _measure_single(instance, warmup, timed, workers)
        sharded_s = _measure_sharded(
            instance, warmup, timed, shards, workers
        )
        cold_s, warm_s = _measure_warm_restart(instance, probes, workers)

    common = dict(
        labeling=labeling, branching=branching, depth=depth,
        objects=len(instance), ops=ops,
    )
    single_tp = ops / single_s if single_s > 0 else 0.0
    sharded_tp = ops / sharded_s if sharded_s > 0 else 0.0
    warm_tp = ops / warm_s if warm_s > 0 else 0.0
    return [
        ServerRecord(mode="single", workers=workers, shards=1,
                     total_s=single_s, throughput=single_tp, **common),
        ServerRecord(mode="sharded", workers=workers, shards=shards,
                     total_s=sharded_s, throughput=sharded_tp,
                     speedup=(
                         sharded_tp / single_tp if single_tp > 0 else None
                     ),
                     **common),
        ServerRecord(mode="warm-restart", workers=workers, shards=1,
                     total_s=warm_s, throughput=warm_tp,
                     speedup=cold_s / warm_s if warm_s > 0 else None,
                     **common),
    ]


def format_server_records(records: list[ServerRecord]) -> str:
    """An aligned table: per-mode wall time, throughput, ratio."""
    lines = [
        f"{'mode':<12}  {'shardsxworkers':>14}  {'ops':>5}  "
        f"{'total_s':>9}  {'ops/s':>8}  {'ratio':>6}"
    ]
    for record in records:
        shape = f"{record.shards}x{record.workers}"
        ratio = (
            f"{record.speedup:>5.2f}x" if record.speedup is not None
            else " " * 6
        )
        lines.append(
            f"{record.mode:<12}  {shape:>14}  {record.ops:>5}  "
            f"{record.total_s:>9.3f}  {record.throughput:>8.1f}  {ratio}"
        )
    return "\n".join(lines)


def records_to_dicts(records: list[ServerRecord]) -> list[dict]:
    """Machine-readable form, mergeable with the other sweeps."""
    return [record.as_dict() for record in records]


__all__ = [
    "DEFAULT_CELL",
    "QUICK_CELL",
    "ServerRecord",
    "format_server_records",
    "records_to_dicts",
    "run_rebalance_bench",
    "run_server_bench",
]
