"""Abstract-interpretation benchmark: certification overhead and the
provably-empty short-circuit win.

For each grid cell the benchmark generates a balanced workload, builds
one live query plan (a random path that matches) and one dead query
plan (the same path extended by a label no object carries, which the
dataguide proves has zero existence probability), and times:

* ``certify``  — one full :func:`~repro.check.absint.certify_plan` pass
  over the dead plan (what the planning pipeline pays per new plan);
* ``live_on`` / ``live_off`` — the live query with the absint pass on
  vs off: the steady-state planning overhead on plans that cannot
  short-circuit;
* ``dead_on`` / ``dead_off`` — the dead query with the pass on vs off:
  ``dead_on`` serves the certified constant without touching the
  instance (the ``check.absint_skips`` path), ``dead_off`` walks it.

Engines run with ``use_index=False`` (so the absint short-circuit, not
the structural index's own dataguide skip, serves the dead plan) and
``caching=False`` (so every evaluation is real work, not a cache hit).
The ``dead_on`` record carries its ``dead_off``-relative speedup; both
it and the answers' equality are also asserted by the test suite.
Records land in ``results/bench_records.json`` with
``operation == "absint"``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from repro.check.absint import certify_plan
from repro.check.dataguide import DataGuideCache
from repro.engine.executor import Engine
from repro.engine.plan import PlanNode, QueryNode, ScanNode
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

DEFAULT_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 5), ("SL", 2, 8), ("SL", 4, 5), ("SL", 4, 7),
)

QUICK_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 4), ("SL", 3, 4),
)

#: A label no workload generator ever emits: appending it to any live
#: path yields a provably dead path.
DEAD_LABEL = "never_a_label"

MODES = ("certify", "live_off", "live_on", "dead_off", "dead_on")


@dataclass
class AbsintRecord:
    """One measured (cell, mode) combination."""

    labeling: str
    branching: int
    depth: int
    objects: int
    mode: str
    repeats: int
    total_s: float                # mean seconds per evaluation
    speedup: float | None = None  # dead_off/dead_on ratio, on dead_on
    skips: int = 0                # check.absint_skips observed in the mode

    def as_dict(self) -> dict:
        return {
            "operation": "absint",
            "labeling": self.labeling,
            "branching": self.branching,
            "depth": self.depth,
            "objects": self.objects,
            "mode": self.mode,
            "repeats": self.repeats,
            "total_s": self.total_s,
            "speedup": self.speedup,
            "skips": self.skips,
        }


def _engine(database: Database, absint: bool) -> Engine:
    return Engine(
        database, use_index=False, caching=False, absint=absint,
        metrics=MetricsRegistry(),
    )


def _time_executions(
    engine: Engine, plan: PlanNode, repeats: int
) -> tuple[float, object]:
    value: object = None
    engine.execute_plan(plan)           # untimed warmup (guide build etc.)
    start = time.perf_counter()
    for _ in range(repeats):
        value = engine.execute_plan(plan).value
    return (time.perf_counter() - start) / repeats, value


def _measure_cell(
    labeling: str, branching: int, depth: int, seed: int, repeats: int,
) -> list[AbsintRecord]:
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=seed)
    )
    pi = workload.instance
    rng = random.Random(seed + 1)
    live_path = random_projection_path(workload, rng)
    dead_path = replace(live_path, labels=live_path.labels + (DEAD_LABEL,))

    database = Database()
    database.register("base", pi)
    live_plan = QueryNode("exists", ScanNode("base"), path=live_path)
    dead_plan = QueryNode("exists", ScanNode("base"), path=dead_path)

    guides = DataGuideCache()
    certify_plan(dead_plan, database, guides)   # untimed guide build
    certify_start = time.perf_counter()
    for _ in range(repeats):
        certify_plan(dead_plan, database, guides)
    certify_s = (time.perf_counter() - certify_start) / repeats

    on, off = _engine(database, absint=True), _engine(database, absint=False)
    live_on_s, live_on = _time_executions(on, live_plan, repeats)
    live_off_s, live_off = _time_executions(off, live_plan, repeats)
    dead_on_s, dead_on = _time_executions(on, dead_plan, repeats)
    dead_off_s, dead_off = _time_executions(off, dead_plan, repeats)
    if (live_on, dead_on) != (live_off, dead_off):
        raise AssertionError(
            f"absint changed an answer: live {live_on} vs {live_off}, "
            f"dead {dead_on} vs {dead_off}"
        )
    skips = int(on.metrics.counter("check.absint_skips").value)

    common = dict(
        labeling=labeling, branching=branching, depth=depth,
        objects=len(pi), repeats=repeats,
    )
    return [
        AbsintRecord(mode="certify", total_s=certify_s, **common),
        AbsintRecord(mode="live_off", total_s=live_off_s, **common),
        AbsintRecord(mode="live_on", total_s=live_on_s, **common),
        AbsintRecord(mode="dead_off", total_s=dead_off_s, **common),
        AbsintRecord(
            mode="dead_on", total_s=dead_on_s,
            speedup=dead_off_s / dead_on_s if dead_on_s > 0 else None,
            skips=skips, **common,
        ),
    ]


def run_absint_bench(
    quick: bool = False, seed: int = 29, repeats: int = 20,
    metrics: MetricsRegistry | None = None,
) -> list[AbsintRecord]:
    """Measure every (cell, mode) combination of the grid."""
    grid = QUICK_GRID if quick else DEFAULT_GRID
    registry = metrics if metrics is not None else MetricsRegistry()
    records: list[AbsintRecord] = []
    with use_registry(registry):
        for labeling, branching, depth in grid:
            records.extend(
                _measure_cell(labeling, branching, depth, seed, repeats)
            )
    return records


def format_absint_records(records: list[AbsintRecord]) -> str:
    """An aligned per-cell table: one column per mode, times in ms."""
    cells: dict[tuple[str, int, int, int], dict[str, AbsintRecord]] = {}
    for record in records:
        key = (record.labeling, record.branching, record.depth, record.objects)
        cells.setdefault(key, {})[record.mode] = record

    header = (
        ["cell".ljust(16), f"{'objects':>8}"]
        + [f"{mode:>12}" for mode in MODES]
        + [f"{'speedup':>8}"]
    )
    lines = ["  ".join(header)]
    for key in sorted(cells):
        labeling, branching, depth, objects = key
        row = [f"{labeling} b={branching} d={depth}".ljust(16), f"{objects:>8}"]
        for mode in MODES:
            record = cells[key].get(mode)
            row.append(
                f"{record.total_s * 1e3:>12.4f}" if record else " " * 12
            )
        dead_on = cells[key].get("dead_on")
        speedup = dead_on.speedup if dead_on else None
        row.append(f"{speedup:>7.1f}x" if speedup is not None else " " * 8)
        lines.append("  ".join(row))
    return "\n".join(lines)


def records_to_dicts(records: list[AbsintRecord]) -> list[dict]:
    """Machine-readable form, mergeable with the other sweeps."""
    return [record.as_dict() for record in records]


__all__ = [
    "DEFAULT_GRID",
    "QUICK_GRID",
    "AbsintRecord",
    "format_absint_records",
    "records_to_dicts",
    "run_absint_bench",
]
