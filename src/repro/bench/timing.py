"""Component-level timing for the Section 7 experiments.

The paper decomposes total query time into: copying the input instance,
locating the objects a path expression denotes, updating the instance
structure (projection only), updating the local interpretation ``p``, and
writing the result to disk.  :func:`timed_ancestor_projection` and
:func:`timed_selection` run one query with exactly that decomposition and
return a :class:`TimingBreakdown` alongside the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.algebra.projection_prob import epsilon_pass, instance_from_epsilon_pass
from repro.algebra.selection import chain_to, condition_on_chain
from repro.core.instance import ProbabilisticInstance
from repro.io.compact_codec import write_instance as write_compact
from repro.io.json_codec import write_instance
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression, match_path


@dataclass
class TimingBreakdown:
    """Per-component wall-clock seconds for one query."""

    copy: float = 0.0
    locate: float = 0.0
    structure: float = 0.0
    update: float = 0.0
    write: float = 0.0

    @property
    def total(self) -> float:
        """The paper's "total query time"."""
        return self.copy + self.locate + self.structure + self.update + self.write

    def add(self, other: "TimingBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.copy += other.copy
        self.locate += other.locate
        self.structure += other.structure
        self.update += other.update
        self.write += other.write

    def scaled(self, factor: float) -> "TimingBreakdown":
        """A copy with every component multiplied by ``factor``."""
        return TimingBreakdown(
            self.copy * factor,
            self.locate * factor,
            self.structure * factor,
            self.update * factor,
            self.write * factor,
        )


def timed_ancestor_projection(
    pi: ProbabilisticInstance,
    path: PathExpression,
    out_path: str | Path | None,
) -> tuple[ProbabilisticInstance, TimingBreakdown]:
    """Ancestor projection with the paper's five-component timing.

    Passing ``out_path=None`` skips the disk write (used when isolating
    the in-memory components).
    """
    timing = TimingBreakdown()

    start = time.perf_counter()
    working = pi.copy()
    timing.copy = time.perf_counter() - start

    start = time.perf_counter()
    match = match_path(working.weak.graph(), path)
    timing.locate = time.perf_counter() - start

    start = time.perf_counter()
    sweep = epsilon_pass(working, path, match)
    timing.update = time.perf_counter() - start

    start = time.perf_counter()
    result = instance_from_epsilon_pass(working, path, sweep)
    timing.structure = time.perf_counter() - start

    if out_path is not None:
        start = time.perf_counter()
        write_instance(result, out_path)
        timing.write = time.perf_counter() - start
    return result, timing


def timed_selection(
    pi: ProbabilisticInstance,
    path: PathExpression,
    oid: Oid,
    out_path: str | Path | None,
    codec: str = "json",
) -> tuple[ProbabilisticInstance, TimingBreakdown]:
    """Selection ``p = o`` with the paper's timing decomposition.

    The structure does not change, so the structure component is zero;
    only depth-many OPFs are conditioned, and — as the paper reports —
    the write of the (full-size) result dominates.  ``codec`` selects the
    output format (``"json"`` or the faster ``"compact"``; the codec
    ablation benchmark compares them).
    """
    timing = TimingBreakdown()

    start = time.perf_counter()
    working = pi.copy()
    timing.copy = time.perf_counter() - start

    start = time.perf_counter()
    chain = chain_to(working, path, oid)
    timing.locate = time.perf_counter() - start

    start = time.perf_counter()
    selection = condition_on_chain(working, chain, copy=False)
    timing.update = time.perf_counter() - start

    if out_path is not None:
        writer = write_instance if codec == "json" else write_compact
        start = time.perf_counter()
        writer(selection.instance, out_path)
        timing.write = time.perf_counter() - start
    return selection.instance, timing
