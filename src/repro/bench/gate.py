"""Benchmark trajectory gate: fail CI on performance regressions.

``results/bench_records.json`` is an append-only trajectory: every
``--append-records`` smoke run adds one batch of records.  The machines
differ run to run, so absolute times are useless as a gate — but the
*ratio* metrics (the ``speedup`` fields: indexed-vs-walked navigation,
absint-skip-vs-full-evaluation) are computed within one run on one
machine and stay comparable across the trajectory.

The gate groups every record carrying a non-null ``speedup`` by its
identity (``operation``, ``mode``, grid cell), takes the *last* record
of each group as the current run and the median of the earlier ones as
the baseline, and fails when the current speedup falls more than
``--threshold`` (default 30%) below that baseline::

    python -m repro.bench gate [--threshold 0.30] [--records PATH]

Groups with fewer than two records have no trajectory yet and are
reported as ``new``; a missing records file is an error (the gate is
meant to run right after a ``--smoke --append-records`` step).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Default trajectory location (shared with ``--append-records``).
RECORDS_PATH = "results/bench_records.json"

#: Maximum tolerated relative drop of a ratio metric vs its baseline.
DEFAULT_THRESHOLD = 0.30

#: Record fields that identify a measurement series across runs.
_GROUP_FIELDS = ("operation", "mode", "labeling", "branching", "depth")


def _group_key(record: dict) -> tuple:
    return tuple(record.get(field) for field in _GROUP_FIELDS)


def _label(key: tuple) -> str:
    operation, mode, labeling, branching, depth = key
    return f"{operation}/{mode} {labeling} b={branching} d={depth}"


def gate_records(
    records: list[dict], threshold: float = DEFAULT_THRESHOLD
) -> tuple[list[str], bool]:
    """Evaluate the trajectory; returns (report lines, any regression)."""
    groups: dict[tuple, list[float]] = {}
    for record in records:
        speedup = record.get("speedup")
        if isinstance(speedup, (int, float)) and speedup > 0:
            groups.setdefault(_group_key(record), []).append(float(speedup))

    lines = [
        f"{'series':<40}  {'baseline':>9}  {'current':>9}  {'change':>8}  status"
    ]
    regressed = False
    for key in sorted(groups, key=_label):
        series = groups[key]
        current = series[-1]
        history = series[:-1]
        if not history:
            lines.append(
                f"{_label(key):<40}  {'-':>9}  {current:>8.2f}x  {'-':>8}  new"
            )
            continue
        baseline = statistics.median(history)
        change = current / baseline - 1.0
        bad = current < baseline * (1.0 - threshold)
        regressed = regressed or bad
        status = "REGRESSION" if bad else "ok"
        lines.append(
            f"{_label(key):<40}  {baseline:>8.2f}x  {current:>8.2f}x  "
            f"{change:>+7.1%}  {status}"
        )
    if not groups:
        lines.append("no ratio metrics in the record file")
    return lines, regressed


def run_gate(
    records_path: str | Path = RECORDS_PATH,
    threshold: float = DEFAULT_THRESHOLD,
) -> int:
    """Load the trajectory, print the report, return the exit code."""
    path = Path(records_path)
    if not path.exists():
        print(f"gate: no record file at {path} — run a --append-records "
              "bench first")
        return 1
    try:
        records = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        print(f"gate: cannot parse {path}: {error}")
        return 1
    if not isinstance(records, list):
        print(f"gate: {path} does not hold a JSON array of bench records")
        return 1
    lines, regressed = gate_records(records, threshold)
    print("\n".join(lines))
    if regressed:
        print(f"gate: FAIL — a ratio metric dropped more than "
              f"{threshold:.0%} below its trajectory median")
        return 1
    print("gate: pass")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench gate",
        description="Fail when a ratio benchmark metric regresses against "
                    "its recorded trajectory.",
    )
    parser.add_argument("--records", default=RECORDS_PATH,
                        help=f"record trajectory file (default {RECORDS_PATH})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated relative drop "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)
    return run_gate(args.records, args.threshold)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "DEFAULT_THRESHOLD",
    "RECORDS_PATH",
    "gate_records",
    "main",
    "run_gate",
]
