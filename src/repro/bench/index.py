"""Path-index benchmark: indexed vs walked path navigation.

For each grid cell the benchmark generates a balanced workload, builds
the :class:`~repro.index.columnar.ColumnarInstance` snapshot once
through a real :class:`~repro.index.cache.IndexCache` (so the
``index.builds`` / ``index.hits`` counters in the metrics dump come from
the production cache, not the harness), draws a handful of random paths,
and times three things:

* ``walk``    — :func:`~repro.semistructured.paths.match_path` on the
  instance graph (per-node ``lch`` calls, the pre-index evaluator);
* ``match``   — :func:`~repro.index.columnar.match_path_indexed` with
  ``memo=False``: the cold vectorized matcher, every evaluation from
  scratch;
* ``indexed`` — the production indexed path (memo on): repeated
  queries against an unchanged snapshot hit the per-snapshot match
  memo, which is how the engine actually evaluates them;
* ``build``   — the one-time snapshot construction the cache amortizes.

Both ``match`` and ``indexed`` records carry their walk-relative
speedup; the acceptance target is >= 5x for indexed evaluation at the
largest default cell.  Records land in ``results/bench_records.json``
with ``operation == "path_index"``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.index.cache import IndexCache
from repro.index.columnar import match_path_indexed
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.semistructured.paths import PathExpression, match_path
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

#: (labeling, branching, depth) cells; the last is the acceptance cell
#: (branching 4, depth 7: ~21k objects).
DEFAULT_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 5), ("SL", 2, 8), ("SL", 4, 5), ("SL", 4, 7),
)

QUICK_GRID: tuple[tuple[str, int, int], ...] = (
    ("SL", 2, 4), ("SL", 3, 4),
)

#: Random paths drawn per cell; every mode times the same ones.
QUERIES_PER_CELL = 5

MODES = ("walk", "match", "indexed", "build")


@dataclass
class IndexRecord:
    """One measured (cell, mode) combination."""

    labeling: str
    branching: int
    depth: int
    objects: int
    edges: int
    mode: str
    repeats: int
    queries: int
    total_s: float              # mean seconds per query (or per build)
    speedup: float | None = None  # walk/indexed ratio, on the indexed row

    def as_dict(self) -> dict:
        return {
            "operation": "path_index",
            "labeling": self.labeling,
            "branching": self.branching,
            "depth": self.depth,
            "objects": self.objects,
            "edges": self.edges,
            "mode": self.mode,
            "repeats": self.repeats,
            "queries": self.queries,
            "total_s": self.total_s,
            "speedup": self.speedup,
        }


def _bench_paths(workload, rng: random.Random) -> list[PathExpression]:
    return [
        random_projection_path(workload, rng) for _ in range(QUERIES_PER_CELL)
    ]


def _measure_cell(
    labeling: str, branching: int, depth: int, seed: int, repeats: int,
) -> list[IndexRecord]:
    workload = generate_workload(
        WorkloadSpec(depth=depth, branching=branching, labeling=labeling,
                     seed=seed)
    )
    pi = workload.instance
    graph = pi.weak.graph()
    rng = random.Random(seed + 1)
    paths = _bench_paths(workload, rng)

    database = Database()
    database.register("base", pi)
    cache = IndexCache()

    build_start = time.perf_counter()
    col = cache.get(database, "base", instance=pi)
    build_s = time.perf_counter() - build_start
    cache.get(database, "base")      # warm-hit: lands on index.hits

    # Untimed warmup pass per mode: populates the snapshot's lazy
    # per-label adjacency and its match memo, and brings both
    # evaluators' working sets into cache, so the timed loops compare
    # steady-state costs.
    for path in paths:
        match_path(graph, path)
        match_path_indexed(col, path)

    walk_s = 0.0
    for _ in range(repeats):
        for path in paths:
            start = time.perf_counter()
            match_path(graph, path)
            walk_s += time.perf_counter() - start

    match_s = 0.0
    for _ in range(repeats):
        for path in paths:
            start = time.perf_counter()
            match_path_indexed(col, path, memo=False)
            match_s += time.perf_counter() - start

    indexed_s = 0.0
    for _ in range(repeats):
        for path in paths:
            start = time.perf_counter()
            match_path_indexed(col, path)
            indexed_s += time.perf_counter() - start

    evaluations = repeats * len(paths)
    common = dict(
        labeling=labeling, branching=branching, depth=depth,
        objects=len(pi), edges=col.num_edges, queries=len(paths),
    )
    return [
        IndexRecord(mode="walk", repeats=repeats,
                    total_s=walk_s / evaluations, **common),
        IndexRecord(mode="match", repeats=repeats,
                    total_s=match_s / evaluations,
                    speedup=walk_s / match_s if match_s > 0 else None,
                    **common),
        IndexRecord(mode="indexed", repeats=repeats,
                    total_s=indexed_s / evaluations,
                    speedup=walk_s / indexed_s if indexed_s > 0 else None,
                    **common),
        IndexRecord(mode="build", repeats=1, total_s=build_s, **common),
    ]


def run_index_bench(
    quick: bool = False, seed: int = 13, repeats: int = 20,
    metrics: MetricsRegistry | None = None,
) -> list[IndexRecord]:
    """Measure every (cell, mode) combination of the grid.

    When ``metrics`` is given it is made ambient for the run, so the
    production :class:`IndexCache` counters (``index.builds`` /
    ``index.hits`` / ``index.misses``) land there and the smoke-run
    metrics dump reflects real cache traffic.
    """
    grid = QUICK_GRID if quick else DEFAULT_GRID
    registry = metrics if metrics is not None else MetricsRegistry()
    records: list[IndexRecord] = []
    with use_registry(registry):
        for labeling, branching, depth in grid:
            records.extend(
                _measure_cell(labeling, branching, depth, seed, repeats)
            )
    return records


def format_index_records(records: list[IndexRecord]) -> str:
    """An aligned per-cell table: walk / indexed / build, speedup."""
    cells: dict[tuple[str, int, int, int], dict[str, IndexRecord]] = {}
    for record in records:
        key = (record.labeling, record.branching, record.depth, record.objects)
        cells.setdefault(key, {})[record.mode] = record

    header = (
        ["cell".ljust(16), f"{'objects':>8}"]
        + [f"{mode:>12}" for mode in MODES]
        + [f"{'speedup':>8}"]
    )
    lines = ["  ".join(header)]
    for key in sorted(cells):
        labeling, branching, depth, objects = key
        row = [f"{labeling} b={branching} d={depth}".ljust(16), f"{objects:>8}"]
        for mode in MODES:
            record = cells[key].get(mode)
            row.append(
                f"{record.total_s * 1e3:>12.4f}" if record else " " * 12
            )
        indexed = cells[key].get("indexed")
        speedup = indexed.speedup if indexed else None
        row.append(f"{speedup:>7.1f}x" if speedup is not None else " " * 8)
        lines.append("  ".join(row))
    return "\n".join(lines)


def records_to_dicts(records: list[IndexRecord]) -> list[dict]:
    """Machine-readable form, mergeable with the other sweeps."""
    return [record.as_dict() for record in records]


__all__ = [
    "DEFAULT_GRID",
    "QUICK_GRID",
    "IndexRecord",
    "format_index_records",
    "records_to_dicts",
    "run_index_bench",
]
