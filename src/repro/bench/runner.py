"""Sweep runner that regenerates the paper's Figure 7 series.

For every combination of branching factor, depth and labeling scheme the
runner generates ``instances_per_config`` random instances, draws
``queries_per_instance`` accepted queries per instance (as in Section
7.1), measures each query with the five-component decomposition of
:mod:`repro.bench.timing`, and averages.

Scale substitution (documented in DESIGN.md): the paper's C prototype
reached ~300k objects; this pure-Python sweep keeps the same grid shape
with instance sizes capped so the full sweep completes in minutes.  The
reported quantities (time vs object count, growth with branching factor,
SL vs FR ordering, which component dominates) are the figure's content.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.timing import (
    TimingBreakdown,
    timed_ancestor_projection,
    timed_selection,
)
from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)

#: The default sweep grid: branching factor -> depths.  The shape follows
#: the paper (branching 2-8, depth 3-9); depths are trimmed per branching
#: factor to keep pure-Python instance sizes tractable.
DEFAULT_GRID: dict[int, tuple[int, ...]] = {
    2: (3, 4, 5, 6, 7, 8, 9),
    4: (3, 4, 5, 6),
    6: (3, 4, 5),
    8: (3, 4),
}

#: A fast grid for smoke runs and pytest-benchmark.
QUICK_GRID: dict[int, tuple[int, ...]] = {
    2: (3, 5, 7),
    4: (3, 4),
    8: (3,),
}

LABELINGS = ("SL", "FR")


@dataclass
class SweepConfig:
    """Parameters of one experiment sweep."""

    grid: dict[int, tuple[int, ...]] = field(
        default_factory=lambda: dict(DEFAULT_GRID)
    )
    labelings: tuple[str, ...] = LABELINGS
    instances_per_config: int = 2
    queries_per_instance: int = 5
    seed: int = 7
    write_results: bool = True
    opf_kind: str = "tabular"


@dataclass
class SweepRecord:
    """The averaged measurement for one (operation, labeling, b, d) cell."""

    operation: str
    labeling: str
    branching: int
    depth: int
    objects: int
    entries: int
    queries: int
    timing: TimingBreakdown

    @property
    def total(self) -> float:
        """Average total query time (seconds)."""
        return self.timing.total

    @property
    def update(self) -> float:
        """Average local-interpretation update time (seconds)."""
        return self.timing.update


def _iter_workloads(config: SweepConfig, labeling: str, branching: int, depth: int):
    for index in range(config.instances_per_config):
        seed = hash((config.seed, labeling, branching, depth, index)) & 0x7FFFFFFF
        spec = WorkloadSpec(
            depth=depth, branching=branching, labeling=labeling, seed=seed,
            opf_kind=config.opf_kind,
        )
        yield generate_workload(spec)


def run_projection_sweep(config: SweepConfig | None = None) -> list[SweepRecord]:
    """The ancestor-projection sweep behind Figures 7(a) and 7(b)."""
    return _run_sweep("projection", config)


def run_selection_sweep(config: SweepConfig | None = None) -> list[SweepRecord]:
    """The selection sweep behind Figure 7(c)."""
    return _run_sweep("selection", config)


def _run_sweep(operation: str, config: SweepConfig | None) -> list[SweepRecord]:
    config = config or SweepConfig()
    records: list[SweepRecord] = []
    with tempfile.TemporaryDirectory(prefix="pxml-bench-") as tmp:
        out_path = Path(tmp) / "result.json" if config.write_results else None
        for labeling in config.labelings:
            for branching, depths in sorted(config.grid.items()):
                for depth in depths:
                    record = _measure_cell(
                        operation, config, labeling, branching, depth, out_path
                    )
                    records.append(record)
    return records


def _measure_cell(
    operation: str,
    config: SweepConfig,
    labeling: str,
    branching: int,
    depth: int,
    out_path: Path | None,
) -> SweepRecord:
    total = TimingBreakdown()
    queries = 0
    objects = 0
    entries = 0
    for workload in _iter_workloads(config, labeling, branching, depth):
        objects = workload.num_objects
        entries = workload.total_entries
        rng = random.Random(workload.spec.seed + 1)
        for _ in range(config.queries_per_instance):
            timing = _measure_query(operation, workload, rng, out_path)
            total.add(timing)
            queries += 1
    return SweepRecord(
        operation=operation,
        labeling=labeling,
        branching=branching,
        depth=depth,
        objects=objects,
        entries=entries,
        queries=queries,
        timing=total.scaled(1.0 / queries),
    )


def _measure_query(
    operation: str,
    workload: GeneratedWorkload,
    rng: random.Random,
    out_path: Path | None,
) -> TimingBreakdown:
    if operation == "projection":
        path = random_projection_path(workload, rng)
        _, timing = timed_ancestor_projection(workload.instance, path, out_path)
        return timing
    path, target = random_selection_target(workload, rng)
    _, timing = timed_selection(workload.instance, path, target, out_path)
    return timing


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_series(
    records: list[SweepRecord], component: str = "total", unit: float = 1e-3
) -> str:
    """Render one Figure 7 panel as an aligned text table.

    One row per (labeling, branching) series — the lines of the paper's
    log-log plots — with object counts as columns.  ``component`` selects
    the reported time ("total", "update", "copy", "locate", "structure",
    "write"); values are in milliseconds by default.
    """
    series: dict[tuple[str, int], dict[int, float]] = {}
    for record in records:
        value = (
            record.timing.total
            if component == "total"
            else getattr(record.timing, component)
        )
        series.setdefault((record.labeling, record.branching), {})[
            record.objects
        ] = value / unit

    all_sizes = sorted({size for cells in series.values() for size in cells})
    header = ["series".ljust(10)] + [f"{size:>10}" for size in all_sizes]
    lines = ["  ".join(header)]
    for (labeling, branching), cells in sorted(series.items()):
        row = [f"b={branching} {labeling}".ljust(10)]
        for size in all_sizes:
            value = cells.get(size)
            row.append(f"{value:>10.3f}" if value is not None else " " * 10)
        lines.append("  ".join(row))
    return "\n".join(lines)


def records_to_dicts(records: list[SweepRecord]) -> list[dict]:
    """Machine-readable form of the sweep results."""
    return [
        {
            "operation": r.operation,
            "labeling": r.labeling,
            "branching": r.branching,
            "depth": r.depth,
            "objects": r.objects,
            "entries": r.entries,
            "queries": r.queries,
            "copy_s": r.timing.copy,
            "locate_s": r.timing.locate,
            "structure_s": r.timing.structure,
            "update_s": r.timing.update,
            "write_s": r.timing.write,
            "total_s": r.timing.total,
        }
        for r in records
    ]
