"""Path expressions (Definition 5.1) and their evaluation.

A path expression ``p = r.l1.l2...ln`` is a root object id followed by a
(possibly empty) sequence of edge labels; it denotes the set of objects
reachable from ``r`` along edges labeled ``l1, ..., ln`` in order.

Besides plain evaluation this module computes the *level sets* and the
backward-pruned *matched levels* used by ancestor projection and by the
probabilistic point queries of Section 6: an object belongs to matched
level ``i`` iff it lies on level ``i`` of the path AND some continuation of
the remaining labels reaches a level-``n`` object through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PathSyntaxError
from repro.semistructured.graph import EdgeLabeledGraph, Label, Oid


@dataclass(frozen=True)
class PathExpression:
    """An object id followed by an edge-label sequence."""

    root: Oid
    labels: tuple[Label, ...] = ()

    def __post_init__(self) -> None:
        if not self.root:
            raise PathSyntaxError("path expression needs a nonempty root object id")
        if any(not label for label in self.labels):
            raise PathSyntaxError("path expression labels must be nonempty")

    @classmethod
    def parse(cls, text: str) -> "PathExpression":
        """Parse ``"R.book.author"`` into a :class:`PathExpression`.

        The first dot-separated component is the root object id; the rest
        are edge labels.  Components may not be empty.
        """
        parts = text.split(".")
        if not parts or any(part == "" for part in parts):
            raise PathSyntaxError(f"malformed path expression: {text!r}")
        return cls(parts[0], tuple(parts[1:]))

    def __len__(self) -> int:
        return len(self.labels)

    def __str__(self) -> str:
        return ".".join((self.root, *self.labels))

    def child(self, label: Label) -> "PathExpression":
        """The path extended by one label."""
        return PathExpression(self.root, (*self.labels, label))

    def prefix(self, length: int) -> "PathExpression":
        """The prefix with the first ``length`` labels."""
        return PathExpression(self.root, self.labels[:length])


def evaluate_path(graph: EdgeLabeledGraph, path: PathExpression) -> frozenset[Oid]:
    """The set of objects denoted by ``path`` (``o in p``).

    Returns the empty set when the path's root is not a vertex of the
    graph.  A zero-label path denotes ``{root}``.
    """
    levels = level_sets(graph, path)
    return levels[-1] if levels else frozenset()


def level_sets(graph: EdgeLabeledGraph, path: PathExpression) -> list[frozenset[Oid]]:
    """Forward level sets ``L_0 = {r}``, ``L_i = lch(L_{i-1}, l_i)``.

    Returns ``[]`` when the root is absent.  ``L_i`` may be empty, in which
    case all deeper levels are empty too.
    """
    if path.root not in graph:
        return []
    levels: list[frozenset[Oid]] = [frozenset({path.root})]
    for label in path.labels:
        next_level: set[Oid] = set()
        for oid in levels[-1]:
            next_level.update(graph.lch(oid, label))
        levels.append(frozenset(next_level))
    return levels


@dataclass(frozen=True)
class PathMatch:
    """The result of matching a path expression against a graph.

    Attributes:
        path: the matched path expression.
        levels: backward-pruned level sets ``M_0..M_n``; ``M_n`` is the set
            of objects satisfying the path and ``M_i`` contains the level-i
            objects with at least one matching continuation.
        edges: the edges ``(src, dst)`` connecting ``M_i`` to ``M_{i+1}``
            via the level's label, i.e. exactly the edges an ancestor
            projection keeps.
    """

    path: PathExpression
    levels: tuple[frozenset[Oid], ...]
    edges: frozenset[tuple[Oid, Oid]]
    level_edges: tuple[frozenset[tuple[Oid, Oid]], ...] = field(repr=False, default=())

    @property
    def matched(self) -> frozenset[Oid]:
        """The objects denoted by the path (``M_n``)."""
        return self.levels[-1] if self.levels else frozenset()

    @property
    def is_empty(self) -> bool:
        """True when no object satisfies the path."""
        return not self.matched

    def kept_objects(self) -> frozenset[Oid]:
        """All objects on some root-to-match path (union of the levels)."""
        kept: set[Oid] = set()
        for level in self.levels:
            kept.update(level)
        return frozenset(kept)

    def level_of(self) -> dict[Oid, list[int]]:
        """Map each kept object to the (sorted) levels it appears on.

        On tree-shaped graphs every object appears on at most one level;
        on DAGs an object can be reached at several depths.
        """
        membership: dict[Oid, list[int]] = {}
        for index, level in enumerate(self.levels):
            for oid in level:
                membership.setdefault(oid, []).append(index)
        return membership


def empty_match(path: PathExpression) -> PathMatch:
    """The canonical match of a path no object satisfies.

    Shared by :func:`match_path` and the columnar matcher
    (:func:`repro.index.columnar.match_path_indexed`) so the two agree
    exactly on the empty case's level-set shape.
    """
    empty_levels = tuple(frozenset() for _ in range(len(path.labels) + 1))
    return PathMatch(path, empty_levels, frozenset(), tuple(
        frozenset() for _ in range(len(path.labels))))


def match_path(graph: EdgeLabeledGraph, path: PathExpression) -> PathMatch:
    """Match ``path`` against ``graph``: forward sweep then backward prune.

    The forward sweep computes the level sets; the backward prune removes
    from level ``i`` every object without an edge (with the right label)
    into the pruned level ``i+1``.  The returned match also records the
    surviving level-to-level edges.
    """
    forward = level_sets(graph, path)
    if not forward or not forward[-1]:
        return empty_match(path)

    pruned: list[frozenset[Oid]] = [frozenset()] * len(forward)
    pruned[-1] = forward[-1]
    per_level_edges: list[frozenset[tuple[Oid, Oid]]] = [frozenset()] * len(path.labels)
    for index in range(len(path.labels) - 1, -1, -1):
        label = path.labels[index]
        survivors: set[Oid] = set()
        edges: set[tuple[Oid, Oid]] = set()
        for oid in forward[index]:
            hits = graph.lch(oid, label) & pruned[index + 1]
            if hits:
                survivors.add(oid)
                edges.update((oid, child) for child in hits)
        pruned[index] = frozenset(survivors)
        per_level_edges[index] = frozenset(edges)

    all_edges: set[tuple[Oid, Oid]] = set()
    for edges in per_level_edges:
        all_edges.update(edges)
    return PathMatch(path, tuple(pruned), frozenset(all_edges), tuple(per_level_edges))
