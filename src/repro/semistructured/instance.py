"""Semistructured instances (Definition 3.3).

A :class:`SemistructuredInstance` is a rooted, edge-labeled directed graph
in which each leaf object may carry a type ``tau(o)`` and a value
``val(o) in dom(tau(o))``.

The paper requires every leaf of a *source* instance to be typed and
valued; however the algebra can produce instances whose structural leaves
were internal objects of the input (e.g. the ``author`` objects after an
ancestor projection), so types and values are kept as partial maps here and
:meth:`validate` offers the strict check.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ModelError, TypeDomainError, UnknownObjectError
from repro.semistructured.graph import EdgeLabeledGraph, Label, Oid
from repro.semistructured.types import LeafType, Value


class SemistructuredInstance:
    """A rooted semistructured instance ``S = (V, E, l, tau, val)``."""

    __slots__ = ("_graph", "_root", "_tau", "_val")

    def __init__(self, root: Oid) -> None:
        self._graph = EdgeLabeledGraph()
        self._graph.add_vertex(root)
        self._root = root
        self._tau: dict[Oid, LeafType] = {}
        self._val: dict[Oid, Value] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_object(self, oid: Oid) -> None:
        """Add an (initially disconnected) object to ``V``."""
        self._graph.add_vertex(oid)

    def add_edge(self, src: Oid, dst: Oid, label: Label) -> None:
        """Add the labeled edge ``(src, dst)``, creating objects on demand."""
        self._graph.add_edge(src, dst, label)

    def set_type(self, oid: Oid, leaf_type: LeafType) -> None:
        """Associate type ``tau(oid)`` with a (leaf) object."""
        if oid not in self._graph:
            raise UnknownObjectError(oid)
        self._tau[oid] = leaf_type

    def set_value(self, oid: Oid, value: Value) -> None:
        """Associate value ``val(oid)``; checked against the type if known."""
        if oid not in self._graph:
            raise UnknownObjectError(oid)
        leaf_type = self._tau.get(oid)
        if leaf_type is not None:
            leaf_type.check(value)
        self._val[oid] = value

    def set_leaf(self, oid: Oid, leaf_type: LeafType, value: Value) -> None:
        """Set both type and value of a leaf object."""
        self.set_type(oid, leaf_type)
        self.set_value(oid, value)

    def remove_object(self, oid: Oid) -> None:
        """Remove an object, its incident edges, and its annotations."""
        self._graph.remove_vertex(oid)
        self._tau.pop(oid, None)
        self._val.pop(oid, None)

    def copy(self) -> "SemistructuredInstance":
        """Deep, independent copy."""
        clone = SemistructuredInstance.__new__(SemistructuredInstance)
        clone._graph = self._graph.copy()
        clone._root = self._root
        clone._tau = dict(self._tau)
        clone._val = dict(self._val)
        return clone

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Oid:
        """The root object id."""
        return self._root

    @property
    def graph(self) -> EdgeLabeledGraph:
        """The underlying edge-labeled graph (mutating it mutates ``self``)."""
        return self._graph

    @property
    def objects(self) -> frozenset[Oid]:
        """The object set ``V``."""
        return self._graph.vertices

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def children(self, oid: Oid) -> frozenset[Oid]:
        """``C(o)``."""
        return self._graph.children(oid)

    def parents(self, oid: Oid) -> frozenset[Oid]:
        """``parents(o)``."""
        return self._graph.parents(oid)

    def lch(self, oid: Oid, label: Label) -> frozenset[Oid]:
        """``lch(o, l)``."""
        return self._graph.lch(oid, label)

    def label(self, src: Oid, dst: Oid) -> Label:
        """The label on edge ``(src, dst)``."""
        return self._graph.label(src, dst)

    def edges(self) -> Iterator[tuple[Oid, Oid, Label]]:
        """Iterate over ``(src, dst, label)`` triples."""
        return self._graph.edges()

    def is_leaf(self, oid: Oid) -> bool:
        """Whether ``o`` is a leaf (no children)."""
        return self._graph.is_leaf(oid)

    def leaves(self) -> frozenset[Oid]:
        """All leaf objects."""
        return self._graph.leaves()

    def tau(self, oid: Oid) -> LeafType | None:
        """``tau(o)``, or ``None`` if the object is untyped."""
        if oid not in self._graph:
            raise UnknownObjectError(oid)
        return self._tau.get(oid)

    def val(self, oid: Oid) -> Value | None:
        """``val(o)``, or ``None`` if the object has no value."""
        if oid not in self._graph:
            raise UnknownObjectError(oid)
        return self._val.get(oid)

    def typed_leaves(self) -> Iterator[tuple[Oid, LeafType, Value]]:
        """Iterate ``(oid, tau(oid), val(oid))`` for every valued leaf."""
        for oid, leaf_type in self._tau.items():
            if oid in self._val:
                yield oid, leaf_type, self._val[oid]

    # ------------------------------------------------------------------
    # Validation / identity
    # ------------------------------------------------------------------
    def validate(self, strict_leaves: bool = True) -> None:
        """Check well-formedness.

        The instance must be rooted (every object reachable from the root)
        and, when ``strict_leaves`` is true, every leaf must carry a type
        and a value inside that type's domain (Definition 3.3).
        """
        reachable = self._graph.reachable_from(self._root)
        unreachable = self._graph.vertices - reachable
        if unreachable:
            raise ModelError(
                f"objects unreachable from root {self._root!r}: {sorted(unreachable)}"
            )
        if strict_leaves:
            for leaf in self._graph.leaves():
                if leaf == self._root and len(self._graph) == 1:
                    continue  # the degenerate root-only instance
                leaf_type = self._tau.get(leaf)
                if leaf_type is None:
                    raise TypeDomainError(f"leaf {leaf!r} has no type")
                if leaf not in self._val:
                    raise TypeDomainError(f"leaf {leaf!r} has no value")
                leaf_type.check(self._val[leaf])

    def canonical_form(self) -> tuple:
        """A hashable canonical form identifying the instance.

        Two instances are *identical* (for the algebra's probability-mass
        grouping, Definition 5.3) iff they have the same root, objects,
        labeled edges and leaf values.  Types participate via their names.
        """
        edges = tuple(sorted((src, dst, label) for src, dst, label in self._graph.edges()))
        values = tuple(
            sorted((oid, self._tau[oid].name if oid in self._tau else None, value)
                   for oid, value in self._val.items() if oid in self._graph)
        )
        return (self._root, tuple(sorted(self._graph.vertices)), edges, values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemistructuredInstance):
            return NotImplemented
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:
        return (
            f"SemistructuredInstance(root={self._root!r}, |V|={len(self._graph)}, "
            f"|E|={self._graph.num_edges()})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        root: Oid,
        edges: Iterable[tuple[Oid, Oid, Label]],
        leaves: Iterable[tuple[Oid, LeafType, Value]] = (),
    ) -> "SemistructuredInstance":
        """Build an instance from edge triples and leaf annotations."""
        instance = cls(root)
        for src, dst, label in edges:
            instance.add_edge(src, dst, label)
        for oid, leaf_type, value in leaves:
            instance.set_leaf(oid, leaf_type, value)
        return instance
