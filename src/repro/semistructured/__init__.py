"""The semistructured data (SD) substrate: graphs, instances, paths, types.

This package implements Section 3.1 of the paper — the OEM-style rooted
edge-labeled graph model — together with the path expressions of
Definition 5.1 that the algebra is built on.
"""

from repro.semistructured.diff import InstanceDiff, diff_instances
from repro.semistructured.graph import Edge, EdgeLabeledGraph, Label, Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.paths import (
    PathExpression,
    PathMatch,
    evaluate_path,
    level_sets,
    match_path,
)
from repro.semistructured.types import LeafType, TypeRegistry, Value

__all__ = [
    "Edge",
    "EdgeLabeledGraph",
    "InstanceDiff",
    "Label",
    "LeafType",
    "Oid",
    "PathExpression",
    "PathMatch",
    "SemistructuredInstance",
    "TypeRegistry",
    "Value",
    "diff_instances",
    "evaluate_path",
    "level_sets",
    "match_path",
]
