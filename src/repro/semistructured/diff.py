"""Structural diff between two semistructured instances.

Useful for comparing a projection result with its input, two worlds, or
two versions of a maintained database: reports added/removed objects,
added/removed/relabeled edges, and changed leaf annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semistructured.graph import Label, Oid
from repro.semistructured.instance import SemistructuredInstance


@dataclass(frozen=True)
class InstanceDiff:
    """The differences from ``old`` to ``new``."""

    added_objects: frozenset[Oid]
    removed_objects: frozenset[Oid]
    added_edges: frozenset[tuple[Oid, Oid, Label]]
    removed_edges: frozenset[tuple[Oid, Oid, Label]]
    relabeled_edges: frozenset[tuple[Oid, Oid, Label, Label]] = field(
        default_factory=frozenset
    )
    changed_values: frozenset[tuple[Oid, object, object]] = field(
        default_factory=frozenset
    )

    def is_empty(self) -> bool:
        """True when the instances are identical."""
        return not (
            self.added_objects or self.removed_objects or self.added_edges
            or self.removed_edges or self.relabeled_edges or self.changed_values
        )

    def summary(self) -> str:
        """A short human-readable report."""
        if self.is_empty():
            return "identical"
        parts = []
        if self.added_objects:
            parts.append(f"+{len(self.added_objects)} objects")
        if self.removed_objects:
            parts.append(f"-{len(self.removed_objects)} objects")
        if self.added_edges:
            parts.append(f"+{len(self.added_edges)} edges")
        if self.removed_edges:
            parts.append(f"-{len(self.removed_edges)} edges")
        if self.relabeled_edges:
            parts.append(f"~{len(self.relabeled_edges)} relabeled")
        if self.changed_values:
            parts.append(f"~{len(self.changed_values)} values")
        return ", ".join(parts)

    def format(self) -> str:
        """A full line-per-change report."""
        lines = []
        for oid in sorted(self.added_objects):
            lines.append(f"+ object {oid}")
        for oid in sorted(self.removed_objects):
            lines.append(f"- object {oid}")
        for src, dst, label in sorted(self.added_edges):
            lines.append(f"+ edge {src} --{label}--> {dst}")
        for src, dst, label in sorted(self.removed_edges):
            lines.append(f"- edge {src} --{label}--> {dst}")
        for src, dst, old, new in sorted(self.relabeled_edges):
            lines.append(f"~ edge {src} -> {dst}: label {old!r} -> {new!r}")
        for oid, old, new in sorted(self.changed_values, key=lambda t: t[0]):
            lines.append(f"~ value {oid}: {old!r} -> {new!r}")
        return "\n".join(lines) if lines else "identical"


def diff_instances(
    old: SemistructuredInstance, new: SemistructuredInstance
) -> InstanceDiff:
    """Compute the structural diff from ``old`` to ``new``."""
    old_objects = old.objects
    new_objects = new.objects

    old_edges = {(s, d): l for s, d, l in old.edges()}
    new_edges = {(s, d): l for s, d, l in new.edges()}
    added_edges = set()
    removed_edges = set()
    relabeled = set()
    for pair, label in new_edges.items():
        if pair not in old_edges:
            added_edges.add((*pair, label))
        elif old_edges[pair] != label:
            relabeled.add((*pair, old_edges[pair], label))
    for pair, label in old_edges.items():
        if pair not in new_edges:
            removed_edges.add((*pair, label))

    changed_values = set()
    for oid in old_objects & new_objects:
        old_value = old.val(oid)
        new_value = new.val(oid)
        if old_value != new_value:
            changed_values.add((oid, old_value, new_value))

    return InstanceDiff(
        added_objects=frozenset(new_objects - old_objects),
        removed_objects=frozenset(old_objects - new_objects),
        added_edges=frozenset(added_edges),
        removed_edges=frozenset(removed_edges),
        relabeled_edges=frozenset(relabeled),
        changed_values=frozenset(changed_values),
    )
