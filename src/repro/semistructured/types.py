"""Leaf types and their value domains.

Definition 3.3 associates a type ``tau(o)`` with each leaf object and a
value ``val(o)`` drawn from ``dom(tau(o))``.  A :class:`LeafType` is a named
finite domain of hashable values; a :class:`TypeRegistry` keeps the set
``T`` of types used by an instance and checks value membership.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import TypeDomainError

Value = Hashable


class LeafType:
    """A named type with a finite domain, e.g. ``title-type = {VQDB, Lore}``."""

    __slots__ = ("_name", "_domain")

    def __init__(self, name: str, domain: Iterable[Value]) -> None:
        values = tuple(domain)
        if not values:
            raise TypeDomainError(f"type {name!r} must have a nonempty domain")
        if len(set(values)) != len(values):
            raise TypeDomainError(f"type {name!r} has duplicate domain values")
        self._name = name
        self._domain = values

    @property
    def name(self) -> str:
        """The type's name."""
        return self._name

    @property
    def domain(self) -> tuple[Value, ...]:
        """``dom(type)`` as a tuple, in declaration order."""
        return self._domain

    def __contains__(self, value: Value) -> bool:
        return value in self._domain

    def __iter__(self) -> Iterator[Value]:
        return iter(self._domain)

    def __len__(self) -> int:
        return len(self._domain)

    def check(self, value: Value) -> None:
        """Raise :class:`TypeDomainError` unless ``value`` is in the domain."""
        if value not in self._domain:
            raise TypeDomainError(
                f"value {value!r} is not in dom({self._name}) = {self._domain!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeafType):
            return NotImplemented
        return self._name == other._name and set(self._domain) == set(other._domain)

    def __hash__(self) -> int:
        return hash((self._name, frozenset(self._domain)))

    def __repr__(self) -> str:
        return f"LeafType({self._name!r}, {list(self._domain)!r})"


class TypeRegistry:
    """The set ``T`` of types available to an instance, indexed by name."""

    __slots__ = ("_types",)

    def __init__(self, types: Iterable[LeafType] = ()) -> None:
        self._types: dict[str, LeafType] = {}
        for leaf_type in types:
            self.add(leaf_type)

    def add(self, leaf_type: LeafType) -> LeafType:
        """Register a type; re-registering an equal type is a no-op."""
        existing = self._types.get(leaf_type.name)
        if existing is not None and existing != leaf_type:
            raise TypeDomainError(
                f"type {leaf_type.name!r} already registered with a different domain"
            )
        self._types[leaf_type.name] = leaf_type
        return leaf_type

    def define(self, name: str, domain: Iterable[Value]) -> LeafType:
        """Create and register a type in one step."""
        return self.add(LeafType(name, domain))

    def __getitem__(self, name: str) -> LeafType:
        try:
            return self._types[name]
        except KeyError:
            raise TypeDomainError(f"unknown type: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[LeafType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> frozenset[str]:
        """The names of all registered types."""
        return frozenset(self._types)

    def __repr__(self) -> str:
        return f"TypeRegistry({sorted(self._types)!r})"
