"""Edge-labeled directed graphs (Definition 3.1) and graph concepts.

This module provides the graph substrate used by both ordinary
semistructured instances and the weak-instance graphs of the probabilistic
model.  It implements the vocabulary of Definition 3.2: children, parents,
descendants, non-descendants, label-restricted children ``lch(o, l)`` and
leaves — plus the acyclicity and reachability utilities the rest of the
library needs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import UnknownObjectError

Oid = str
Label = str
Edge = tuple[Oid, Oid]


class EdgeLabeledGraph:
    """A rooted, edge-labeled directed graph ``G = (V, E, l)``.

    Vertices are object ids (strings).  Each edge ``(o, o')`` carries exactly
    one label.  The graph may contain cycles in general (Definition 3.1
    permits them), but most of the library works with DAGs; use
    :meth:`is_acyclic` / :meth:`topological_order` for the restriction.
    """

    __slots__ = ("_vertices", "_out", "_in", "_labels")

    def __init__(self) -> None:
        self._vertices: set[Oid] = set()
        self._out: dict[Oid, dict[Oid, Label]] = {}
        self._in: dict[Oid, set[Oid]] = {}
        self._labels: set[Label] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, oid: Oid) -> None:
        """Add a vertex; adding an existing vertex is a no-op."""
        if oid not in self._vertices:
            self._vertices.add(oid)
            self._out[oid] = {}
            self._in[oid] = set()

    def add_edge(self, src: Oid, dst: Oid, label: Label) -> None:
        """Add an edge ``(src, dst)`` with the given label.

        Vertices are created on demand.  Re-adding an existing edge
        overwrites its label (``E subseteq V x V`` admits one edge per pair).
        """
        self.add_vertex(src)
        self.add_vertex(dst)
        self._out[src][dst] = label
        self._in[dst].add(src)
        self._labels.add(label)

    def remove_edge(self, src: Oid, dst: Oid) -> None:
        """Remove the edge ``(src, dst)``; missing edges raise ``KeyError``."""
        del self._out[src][dst]
        self._in[dst].discard(src)

    def remove_vertex(self, oid: Oid) -> None:
        """Remove a vertex together with all incident edges."""
        self._require(oid)
        for parent in list(self._in[oid]):
            del self._out[parent][oid]
        for child in list(self._out[oid]):
            self._in[child].discard(oid)
        del self._out[oid]
        del self._in[oid]
        self._vertices.discard(oid)

    def copy(self) -> "EdgeLabeledGraph":
        """Return a deep, independent copy of the graph."""
        clone = EdgeLabeledGraph()
        clone._vertices = set(self._vertices)
        clone._out = {o: dict(targets) for o, targets in self._out.items()}
        clone._in = {o: set(sources) for o, sources in self._in.items()}
        clone._labels = set(self._labels)
        return clone

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> frozenset[Oid]:
        """The vertex set ``V``."""
        return frozenset(self._vertices)

    @property
    def labels(self) -> frozenset[Label]:
        """All labels that appear on some edge."""
        return frozenset(self._labels)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        """The number of edges ``|E|``."""
        return sum(len(targets) for targets in self._out.values())

    def edges(self) -> Iterator[tuple[Oid, Oid, Label]]:
        """Iterate over ``(src, dst, label)`` triples."""
        for src, targets in self._out.items():
            for dst, label in targets.items():
                yield src, dst, label

    def has_edge(self, src: Oid, dst: Oid) -> bool:
        """Whether the edge ``(src, dst)`` exists."""
        return src in self._out and dst in self._out[src]

    def label(self, src: Oid, dst: Oid) -> Label:
        """The label of edge ``(src, dst)``; raises ``KeyError`` if absent."""
        return self._out[src][dst]

    # ------------------------------------------------------------------
    # Definition 3.2 vocabulary
    # ------------------------------------------------------------------
    def children(self, oid: Oid) -> frozenset[Oid]:
        """``C(o) = {o' | (o, o') in E}``."""
        self._require(oid)
        return frozenset(self._out[oid])

    def parents(self, oid: Oid) -> frozenset[Oid]:
        """``parents(o) = {o' | (o', o) in E}``."""
        self._require(oid)
        return frozenset(self._in[oid])

    def lch(self, oid: Oid, label: Label) -> frozenset[Oid]:
        """``lch(o, l)``: children of ``o`` reached by an ``l``-labeled edge."""
        self._require(oid)
        return frozenset(
            child for child, edge_label in self._out[oid].items() if edge_label == label
        )

    def out_labels(self, oid: Oid) -> frozenset[Label]:
        """The set of labels on edges leaving ``o``."""
        self._require(oid)
        return frozenset(self._out[oid].values())

    def is_leaf(self, oid: Oid) -> bool:
        """A vertex is a leaf iff ``C(o)`` is empty."""
        self._require(oid)
        return not self._out[oid]

    def leaves(self) -> frozenset[Oid]:
        """All leaf vertices."""
        return frozenset(o for o in self._vertices if not self._out[o])

    def descendants(self, oid: Oid) -> frozenset[Oid]:
        """``des(o)``: vertices reachable from ``o`` by a nonempty path."""
        self._require(oid)
        seen: set[Oid] = set()
        frontier = deque(self._out[oid])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._out[current])
        return frozenset(seen)

    def non_descendants(self, oid: Oid) -> frozenset[Oid]:
        """``non-des(o) = V - des(o) - {o}``."""
        return self.vertices - self.descendants(oid) - {oid}

    def ancestors(self, oid: Oid) -> frozenset[Oid]:
        """Vertices from which ``o`` is reachable by a nonempty path."""
        self._require(oid)
        seen: set[Oid] = set()
        frontier = deque(self._in[oid])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._in[current])
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def reachable_from(self, root: Oid) -> frozenset[Oid]:
        """``{root} union des(root)``."""
        return self.descendants(root) | {root}

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        return self.topological_order() is not None

    def topological_order(self) -> list[Oid] | None:
        """A topological order of the vertices, or ``None`` if cyclic."""
        in_degree = {o: len(self._in[o]) for o in self._vertices}
        ready = deque(sorted(o for o, deg in in_degree.items() if deg == 0))
        order: list[Oid] = []
        while ready:
            current = ready.popleft()
            order.append(current)
            for child in self._out[current]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._vertices):
            return None
        return order

    def is_tree(self, root: Oid) -> bool:
        """Whether the graph is a tree rooted at ``root``.

        Every vertex except the root must have exactly one parent, the root
        must have none, and all vertices must be reachable from the root.
        """
        self._require(root)
        if self._in[root]:
            return False
        for oid in self._vertices:
            if oid != root and len(self._in[oid]) != 1:
                return False
        return len(self.reachable_from(root)) == len(self._vertices)

    def roots(self) -> frozenset[Oid]:
        """Vertices with no incoming edges."""
        return frozenset(o for o in self._vertices if not self._in[o])

    def induced_subgraph(self, keep: Iterable[Oid]) -> "EdgeLabeledGraph":
        """The subgraph induced by ``keep`` (edges with both ends kept)."""
        kept = set(keep)
        sub = EdgeLabeledGraph()
        for oid in kept:
            self._require(oid)
            sub.add_vertex(oid)
        for src in kept:
            for dst, label in self._out[src].items():
                if dst in kept:
                    sub.add_edge(src, dst, label)
        return sub

    def _require(self, oid: Oid) -> None:
        if oid not in self._vertices:
            raise UnknownObjectError(oid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeLabeledGraph):
            return NotImplemented
        return self._vertices == other._vertices and self._out == other._out

    def __repr__(self) -> str:
        return f"EdgeLabeledGraph(|V|={len(self._vertices)}, |E|={self.num_edges()})"
