"""The probabilistic semistructured algebra (Sections 5-6)."""

from repro.algebra.extensions import (
    intersection_global,
    join,
    rename_objects,
    union_global,
)
from repro.algebra.product import cartesian_product
from repro.algebra.projection import (
    ancestor_projection,
    descendant_projection,
    single_projection,
)
from repro.algebra.projection_more import (
    descendant_projection_global,
    descendant_projection_local,
    single_projection_global,
    single_projection_local,
)
from repro.algebra.projection_prob import (
    EpsilonPass,
    ancestor_projection_global,
    ancestor_projection_local,
    epsilon_pass,
)
from repro.algebra.updates import (
    assert_child,
    insert_child,
    remove_object,
    retract_child,
    reweight_opf,
    set_value,
)
from repro.algebra.selection import (
    CardinalityCondition,
    ObjectCardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    SelectionCondition,
    SelectionResult,
    ValueCondition,
    chain_to,
    condition_on_chain,
    select_global,
    select_local,
)

__all__ = [
    "CardinalityCondition",
    "EpsilonPass",
    "ObjectCardinalityCondition",
    "ObjectCondition",
    "ObjectValueCondition",
    "SelectionCondition",
    "SelectionResult",
    "ValueCondition",
    "ancestor_projection",
    "assert_child",
    "ancestor_projection_global",
    "ancestor_projection_local",
    "cartesian_product",
    "chain_to",
    "condition_on_chain",
    "descendant_projection",
    "descendant_projection_global",
    "descendant_projection_local",
    "epsilon_pass",
    "insert_child",
    "intersection_global",
    "join",
    "remove_object",
    "rename_objects",
    "retract_child",
    "reweight_opf",
    "select_global",
    "select_local",
    "single_projection",
    "single_projection_global",
    "set_value",
    "single_projection_local",
    "union_global",
]
