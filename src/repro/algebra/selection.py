"""Selection on probabilistic instances (Sections 5.2 and 6).

Selection conditions locate worlds; the *global* semantics (Definition
5.6) keeps the satisfying worlds and renormalizes their probabilities.
The *local* algorithm, for tree-structured instances, conditions the OPFs
along the (unique) root-to-target chain instead — the structure of the
instance does not change, only depth-many local interpretations do, which
is why disk write dominates the paper's selection experiments.

Condition kinds (Definitions 5.4, 5.5, and the "other kinds ... work in a
similar way" remark):

* :class:`ObjectCondition` — ``p = o``: object ``o`` is reached via ``p``.
* :class:`ValueCondition` — ``val(p) = v``: *some* object reached via
  ``p`` has value ``v`` (existential; global engine only).
* :class:`ObjectValueCondition` — ``o`` is reached via ``p`` *and* has
  value ``v`` (the local engine's value-selection form).
* :class:`CardinalityCondition` — some object reached via ``p`` has a
  number of ``label``-children inside an interval (global engine only).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.cardinality import CardinalityInterval
from repro.core.distributions import TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.errors import AlgebraError, DistributionError, EmptyResultError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Label, Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.paths import PathExpression, evaluate_path


class SelectionCondition(ABC):
    """A predicate over semistructured worlds."""

    @abstractmethod
    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        """Whether the world satisfies the condition."""


@dataclass(frozen=True)
class ObjectCondition(SelectionCondition):
    """``p = o`` (Definition 5.4)."""

    path: PathExpression
    oid: Oid

    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        return self.oid in evaluate_path(world.graph, self.path)

    def __str__(self) -> str:
        return f"{self.path} = {self.oid}"


@dataclass(frozen=True)
class ValueCondition(SelectionCondition):
    """``val(p) = v`` (Definition 5.5), read existentially."""

    path: PathExpression
    value: object

    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        return any(
            world.val(oid) == self.value
            for oid in evaluate_path(world.graph, self.path)
        )

    def __str__(self) -> str:
        return f"val({self.path}) = {self.value!r}"


@dataclass(frozen=True)
class ObjectValueCondition(SelectionCondition):
    """``o in p  and  val(o) = v`` — the pinpointed value selection."""

    path: PathExpression
    oid: Oid
    value: object

    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        return (
            self.oid in evaluate_path(world.graph, self.path)
            and world.val(self.oid) == self.value
        )

    def __str__(self) -> str:
        return f"{self.path} = {self.oid} and val({self.oid}) = {self.value!r}"


@dataclass(frozen=True)
class ObjectCardinalityCondition(SelectionCondition):
    """``o in p  and  |lch(o, label)| in interval`` — pinpointed form.

    The "other kinds of selection conditions with comparisons based on
    cardinality ... work in a similar way" remark, made concrete with a
    specific target so the efficient chain algorithm applies.
    """

    path: PathExpression
    oid: Oid
    label: Label
    interval: CardinalityInterval

    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        return (
            self.oid in evaluate_path(world.graph, self.path)
            and len(world.lch(self.oid, self.label)) in self.interval
        )

    def __str__(self) -> str:
        return (
            f"{self.path} = {self.oid} and "
            f"|lch({self.oid}, {self.label})| in {self.interval}"
        )


@dataclass(frozen=True)
class CardinalityCondition(SelectionCondition):
    """Some object in ``p`` has a ``label``-child count within ``interval``."""

    path: PathExpression
    label: Label
    interval: CardinalityInterval

    def satisfied_by(self, world: SemistructuredInstance) -> bool:
        for oid in evaluate_path(world.graph, self.path):
            count = len(world.lch(oid, self.label))
            if count in self.interval:
                return True
        return False

    def __str__(self) -> str:
        return f"|lch({self.path}, {self.label})| in {self.interval}"


def select_global(
    pi: ProbabilisticInstance, condition: SelectionCondition
) -> GlobalInterpretation:
    """Definition 5.6 verbatim: filter worlds, renormalize."""
    interpretation = GlobalInterpretation.from_local(pi)
    return interpretation.condition(condition.satisfied_by)


@dataclass(frozen=True)
class SelectionResult:
    """The outcome of an efficient selection.

    Attributes:
        instance: the updated probabilistic instance (same structure,
            conditioned local interpretations along the target chain).
        probability: the prior probability of the selection condition —
            the normalizing constant of Definition 5.6.
    """

    instance: ProbabilisticInstance
    probability: float


def select_local(
    pi: ProbabilisticInstance, condition: SelectionCondition
) -> SelectionResult:
    """The efficient selection for tree-structured instances.

    Supports :class:`ObjectCondition` and :class:`ObjectValueCondition`
    (the forms with a pinpointed target object, whose root chain is unique
    in a tree).  The OPF of each object on the chain is conditioned on the
    next chain object being among its children; for a value condition the
    target's VPF is additionally conditioned on the value.  Only
    depth-many local probability functions change.

    Raises :class:`EmptyResultError` when the condition has probability
    zero, matching the paper's normalization being undefined there.
    """
    if isinstance(condition, ObjectCondition):
        return _select_chain(pi, condition.path, condition.oid, value=None)
    if isinstance(condition, ObjectValueCondition):
        return _select_chain(pi, condition.path, condition.oid, value=condition.value,
                             has_value=True)
    if isinstance(condition, ObjectCardinalityCondition):
        return _select_chain_cardinality(pi, condition)
    raise AlgebraError(
        f"the local selection algorithm does not support {type(condition).__name__};"
        " use select_global or the Bayesian-network engine"
    )


def chain_to(
    pi: ProbabilisticInstance,
    path: PathExpression,
    oid: Oid,
    parent_of: Mapping[Oid, Oid] | None = None,
) -> list[Oid]:
    """The unique chain ``root, o_1, ..., o_n = oid`` matching ``path``.

    Requires a tree-structured weak instance graph.  Raises
    :class:`AlgebraError` when ``oid`` does not satisfy the path in the
    weak instance (in which case the selection probability is zero).

    ``parent_of`` is an optional precomputed child-to-parent map (e.g.
    ``ColumnarInstance.parent_map()`` from a tree-verified snapshot);
    passing it skips the O(V) tree check and the per-link parent-set
    lookups, leaving only the label validation on the graph.
    """
    if path.root != pi.root:
        raise AlgebraError(
            f"path root {path.root!r} differs from instance root {pi.root!r}"
        )
    graph = pi.weak.graph()
    if parent_of is None and not graph.is_tree(pi.root):
        raise AlgebraError("chain extraction requires a tree-structured instance")
    if oid not in graph:
        raise AlgebraError(f"object {oid!r} is not in the instance")
    chain = [oid]
    current = oid
    for label in reversed(path.labels):
        if parent_of is not None:
            parent = parent_of.get(current)
            if parent is None:
                raise AlgebraError(f"object {oid!r} does not satisfy path {path}")
        else:
            parents = graph.parents(current)
            if not parents:
                raise AlgebraError(f"object {oid!r} does not satisfy path {path}")
            (parent,) = parents
        if graph.label(parent, current) != label:
            raise AlgebraError(f"object {oid!r} does not satisfy path {path}")
        chain.append(parent)
        current = parent
    if current != pi.root or (
        parent_of.get(pi.root) is not None if parent_of is not None
        else graph.parents(pi.root)
    ):
        raise AlgebraError(f"object {oid!r} does not satisfy path {path}")
    chain.reverse()
    return chain


def condition_on_chain(
    pi: ProbabilisticInstance, chain: list[Oid], copy: bool = True
) -> SelectionResult:
    """Condition each chain object's OPF on containing its successor.

    This is the core of the efficient selection: only ``len(chain) - 1``
    local probability functions change.  With ``copy=False`` the input
    instance is mutated in place (the benchmark harness times the copy
    separately).
    """
    result = pi.copy() if copy else pi
    probability = 1.0
    for parent, child in zip(chain, chain[1:]):
        opf = result.opf(parent)
        if opf is None:
            raise AlgebraError(f"non-leaf object {parent!r} has no OPF")
        try:
            conditioned, mass = opf.restrict(lambda c, _child=child: _child in c)
        except DistributionError as exc:
            raise EmptyResultError(str(exc)) from exc
        result.interpretation.drop(parent)
        result.interpretation.set_opf(parent, conditioned)
        probability *= mass
    return SelectionResult(result, probability)


def _select_chain_cardinality(
    pi: ProbabilisticInstance, condition: ObjectCardinalityCondition
) -> SelectionResult:
    chain = chain_to(pi, condition.path, condition.oid)
    chained = condition_on_chain(pi, chain)
    result = chained.instance
    probability = chained.probability
    opf = result.opf(condition.oid)
    if opf is None:
        raise EmptyResultError(
            f"target {condition.oid!r} is a leaf: it has no child cardinalities"
        )
    pool = result.weak.lch(condition.oid, condition.label)
    try:
        conditioned, mass = opf.restrict(
            lambda c: len(c & pool) in condition.interval
        )
    except DistributionError as exc:
        raise EmptyResultError(str(exc)) from exc
    result.interpretation.drop(condition.oid)
    result.interpretation.set_opf(condition.oid, conditioned)
    return SelectionResult(result, probability * mass)


def _select_chain(
    pi: ProbabilisticInstance,
    path: PathExpression,
    oid: Oid,
    value: object,
    has_value: bool = False,
) -> SelectionResult:
    chain = chain_to(pi, path, oid)
    chained = condition_on_chain(pi, chain)
    result = chained.instance
    probability = chained.probability
    if has_value:
        vpf = result.effective_vpf(oid)
        if vpf is None:
            raise EmptyResultError(f"target {oid!r} carries no value distribution")
        try:
            conditioned_vpf, mass = vpf.restrict(lambda v: v == value)
        except DistributionError as exc:
            raise EmptyResultError(str(exc)) from exc
        result.interpretation.drop(oid)
        result.interpretation.set_vpf(oid, conditioned_vpf)
        probability *= mass
    return SelectionResult(result, probability)
