"""Ancestor projection on probabilistic instances (Sections 5.1 and 6.1).

Two implementations are provided:

* :func:`ancestor_projection_global` — the *reference* semantics of
  Definition 5.3: enumerate the compatible worlds, project each with the
  ordinary :func:`repro.algebra.projection.ancestor_projection`, and sum
  the probabilities of identical results.  Exponential; used for tests,
  small instances and the global-vs-local ablation.

* :func:`ancestor_projection_local` — the efficient algorithm of Section
  6.1 for tree-structured instances.  It rewrites the local interpretation
  bottom-up: a *marginalization* step projects each OPF onto the kept
  children, weighting each kept child ``o_j`` by the probability
  ``eps_j`` that ``o_j`` still has a surviving match below it, and a
  *normalization* step conditions every non-root object on having at
  least one surviving child (objects without surviving children do not
  appear in an ancestor projection).  The root is not normalized: its
  empty-set mass is exactly the probability that the projection of a
  world is the bare root.  Cardinality constraints are recomputed from
  the new OPF supports.

The unified update formula (covering both the "immediate parent of the
matched level" and the general case — matched objects have ``eps = 1``) is

    p'(o)(c') = sum_{c in PC(o), c' subseteq c} p(o)(c)
                * prod_{j in c'} eps_j
                * prod_{j in (c ∩ kept) - c'} (1 - eps_j)

followed by ``eps_o = sum_{c' != {}} p'(o)(c')`` and division by
``eps_o`` (non-root objects only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.projection import ancestor_projection
from repro.core.cardinality import CardinalityInterval
from repro.core.compact import IndependentOPF, NonEmptyIndependentOPF
from repro.core.distributions import ObjectProbabilityFunction, TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import NonTreeInstanceError, SemanticsError
from repro.index.opf import marginalize_opf
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression, PathMatch, match_path


def ancestor_projection_global(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> GlobalInterpretation:
    """Definition 5.3 verbatim: project every world, group identical results."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    interpretation = GlobalInterpretation.from_local(pi)
    return interpretation.map_worlds(lambda world: ancestor_projection(world, path))


@dataclass(frozen=True)
class EpsilonPass:
    """The output of the bottom-up epsilon computation.

    Attributes:
        match: the structural path match on the weak instance graph.
        epsilon: per-object survival probability ``eps_o`` (matched objects
            have 1.0; objects that can never survive have 0.0).
        opfs: the rewritten OPFs of surviving non-leaf objects.  Non-root
            objects are conditioned on having at least one surviving
            child; the root keeps its (possibly positive) empty-set mass.
            Tabular inputs yield :class:`TabularOPF` results; independent
            inputs stay compact (:class:`IndependentOPF` at the root,
            :class:`NonEmptyIndependentOPF` elsewhere) and are updated in
            O(children) instead of O(2^b).
        root_empty_mass: ``p'(r)({})`` — the probability that no object
            satisfies the path expression.
    """

    match: PathMatch
    epsilon: dict[Oid, float]
    opfs: dict[Oid, "ObjectProbabilityFunction"]
    root_empty_mass: float

    @property
    def root_epsilon(self) -> float:
        """``eps_r = 1 - p'(r)({})`` — probability some object matches."""
        return 1.0 - self.root_empty_mass


def _require_tree(pi: ProbabilisticInstance) -> None:
    if not pi.weak.graph().is_tree(pi.root):
        raise NonTreeInstanceError(
            "the efficient local algorithms require a tree-structured weak "
            "instance graph; use the global or Bayesian-network engines for DAGs"
        )


def epsilon_pass(
    pi: ProbabilisticInstance,
    path: PathExpression | str,
    match: PathMatch | None = None,
    assume_tree: bool = False,
) -> EpsilonPass:
    """Run the bottom-up marginalize/normalize sweep of Section 6.1.

    Only the objects on matching root-paths are touched (the paper sets
    the query length equal to the instance depth precisely because deeper
    objects "will not be considered and ... does not need updating").
    A precomputed ``match`` may be passed so callers (the benchmark
    harness, the indexed executor) can time or batch the locate step
    separately; callers that already verified tree-shape (e.g. from a
    columnar snapshot) pass ``assume_tree=True`` to skip the O(V) check.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    if not assume_tree:
        _require_tree(pi)
    if match is None:
        match = match_path(pi.weak.graph(), path)
    epsilon: dict[Oid, float] = {}
    opfs: dict[Oid, ObjectProbabilityFunction] = {}

    if match.is_empty:
        return EpsilonPass(match, epsilon, opfs, root_empty_mass=1.0)

    depth = len(match.levels) - 1
    if depth == 0:
        # Zero-label path: the root matches itself with certainty.
        epsilon[pi.root] = 1.0
        return EpsilonPass(match, epsilon, opfs, root_empty_mass=0.0)

    for oid in match.levels[depth]:
        epsilon[oid] = 1.0

    for level in range(depth - 1, -1, -1):
        children_of: dict[Oid, list[Oid]] = {}
        for src, dst in match.level_edges[level]:
            if epsilon.get(dst, 0.0) > 0.0:
                children_of.setdefault(src, []).append(dst)
        for oid in match.levels[level]:
            kept = children_of.get(oid, [])
            opf = pi.opf(oid)
            if opf is None:
                raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
            if isinstance(opf, IndependentOPF):
                new_opf, survive_mass = _update_independent(
                    opf, kept, epsilon, is_root=oid == pi.root
                )
            else:
                new_opf, survive_mass = _update_tabular(
                    opf, kept, epsilon, is_root=oid == pi.root
                )
            epsilon[oid] = survive_mass
            if oid == pi.root or survive_mass > 0.0:
                if new_opf is not None:
                    opfs[oid] = new_opf

    if pi.root not in opfs:
        # The root was structurally on the match but every branch died
        # probabilistically: projection yields the bare root with certainty.
        return EpsilonPass(match, epsilon, opfs, root_empty_mass=1.0)
    return EpsilonPass(
        match, epsilon, opfs,
        root_empty_mass=opfs[pi.root].prob(frozenset()),
    )


def _update_independent(
    opf: IndependentOPF,
    kept: list[Oid],
    epsilon: dict[Oid, float],
    is_root: bool,
) -> tuple[ObjectProbabilityFunction | None, float]:
    """O(children) update for independent OPFs.

    Every kept child survives independently with probability
    ``q_j = p_j * eps_j``; dropped children marginalize away for free.
    """
    survival = {}
    empty_mass = 1.0
    for child in kept:
        q = opf.marginal_inclusion(child) * epsilon[child]
        if q > 0.0:
            survival[child] = q
            empty_mass *= 1.0 - q
    survive_mass = 1.0 - empty_mass if survival else 0.0
    if is_root:
        if not survival:
            return None, 0.0
        return IndependentOPF(survival), survive_mass
    if survive_mass <= 0.0:
        return None, 0.0
    return NonEmptyIndependentOPF(survival), survive_mass


def _update_tabular(
    opf: ObjectProbabilityFunction,
    kept: list[Oid],
    epsilon: dict[Oid, float],
    is_root: bool,
) -> tuple[ObjectProbabilityFunction | None, float]:
    """Generic support-enumeration update (any OPF representation)."""
    accum = _marginalize(opf, kept, epsilon)
    survive_mass = sum(p for c, p in accum.items() if c)
    if is_root:
        return TabularOPF(accum), survive_mass
    if survive_mass <= 0.0:
        return None, 0.0
    return (
        TabularOPF({c: p / survive_mass for c, p in accum.items() if c}),
        survive_mass,
    )


def _marginalize(
    opf: ObjectProbabilityFunction,
    kept: list[Oid],
    epsilon: dict[Oid, float],
) -> dict[ChildSet, float]:
    """The unified marginalization formula (see module docstring).

    Delegates to :func:`repro.index.opf.marginalize_opf`, which runs the
    ``2^(#uncertain kept children)`` enumeration as one dense numpy
    weight matrix when numpy is available and as the original sparse
    Python loop otherwise (same keys, same values either way).
    """
    return marginalize_opf(opf, kept, epsilon)


def ancestor_projection_local(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> ProbabilisticInstance:
    """Section 6.1: ancestor projection returning a probabilistic instance.

    The result's global semantics equals the pushed-forward distribution
    of :func:`ancestor_projection_global` (tested property-based); it is
    computed in one bottom-up sweep over the matched objects instead of
    enumerating worlds.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    sweep = epsilon_pass(pi, path)
    return instance_from_epsilon_pass(pi, path, sweep)


def instance_from_epsilon_pass(
    pi: ProbabilisticInstance, path: PathExpression, sweep: EpsilonPass
) -> ProbabilisticInstance:
    """Materialize the projection result from a completed epsilon pass."""
    weak = pi.weak
    result_weak = WeakInstance(pi.root)
    result = ProbabilisticInstance(result_weak)

    root_is_weak_leaf = weak.is_leaf(pi.root)
    if root_is_weak_leaf:
        _copy_leaf(pi, result, pi.root)

    if sweep.root_empty_mass >= 1.0 or not sweep.match.levels:
        return result

    depth = len(sweep.match.levels) - 1
    if depth == 0:
        return result

    surviving: set[Oid] = {pi.root}
    for level in range(depth):
        label = path.labels[level]
        next_surviving: set[Oid] = set()
        for src, dst in sweep.match.level_edges[level]:
            if src in surviving and sweep.epsilon.get(dst, 0.0) > 0.0:
                next_surviving.add(dst)
        for oid in sweep.match.levels[level]:
            if oid not in surviving:
                continue
            children = sorted(
                dst
                for src, dst in sweep.match.level_edges[level]
                if src == oid and sweep.epsilon.get(dst, 0.0) > 0.0
            )
            if children:
                result_weak.set_lch(oid, label, children)
        surviving = next_surviving

    # Attach the rewritten OPFs and recomputed cardinalities.
    for oid, opf in sweep.opfs.items():
        if oid != pi.root and oid not in result_weak:
            continue  # the object's whole branch died or was orphaned
        if not result_weak.labels_of(oid):
            continue  # no surviving children recorded (bare-root case)
        result.set_opf(oid, opf)
        _recompute_card(result_weak, oid, opf)

    # Matched objects that were leaves keep their type and value/VPF.
    for oid in sweep.match.levels[depth]:
        if oid in result_weak and weak.is_leaf(oid):
            _copy_leaf(pi, result, oid)
    return result


def _copy_leaf(
    source: ProbabilisticInstance, target: ProbabilisticInstance, oid: Oid
) -> None:
    leaf_type = source.weak.tau(oid)
    if leaf_type is not None:
        target.weak.set_type(oid, leaf_type)
    default = source.weak.val(oid)
    if default is not None:
        target.weak.set_val(oid, default)
    vpf = source.vpf(oid)
    if vpf is not None:
        target.set_vpf(oid, vpf)


def _recompute_card(
    weak: WeakInstance, oid: Oid, opf: ObjectProbabilityFunction
) -> None:
    """``card'(o, l)``: min/max label-l children over the new OPF support.

    Compact independent OPFs get a closed form (no support enumeration):
    a child is mandatory iff its inclusion probability is 1 and possible
    iff it is positive; the non-empty conditioning of a single-label
    object raises the lower bound to 1.
    """
    labels = weak.labels_of(oid)
    if isinstance(opf, (IndependentOPF, NonEmptyIndependentOPF)):
        inclusion = opf.inclusion
        for label in labels:
            pool = weak.lch(oid, label)
            certain = sum(1 for c in pool if inclusion.get(c, 0.0) >= 1.0)
            possible = sum(1 for c in pool if inclusion.get(c, 0.0) > 0.0)
            low = certain
            if isinstance(opf, NonEmptyIndependentOPF) and len(labels) == 1:
                low = max(low, 1)
            weak.set_card(oid, label, CardinalityInterval(low, possible))
        return
    label_of: dict[Oid, str] = {}
    for label in labels:
        for child in weak.lch(oid, label):
            label_of[child] = label
    bounds: dict[str, tuple[int, int]] = {}
    for child_set, _ in opf.support():
        counts: dict[str, int] = {label: 0 for label in labels}
        for child in child_set:
            counts[label_of[child]] += 1
        for label, count in counts.items():
            low, high = bounds.get(label, (count, count))
            bounds[label] = (min(low, count), max(high, count))
    for label, (low, high) in bounds.items():
        weak.set_card(oid, label, CardinalityInterval(low, high))
