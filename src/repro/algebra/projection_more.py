"""Descendant and single projection on probabilistic instances.

The paper names these operators alongside ancestor projection (Section
5.1) without detailing them; the SD-level semantics live in
:mod:`repro.algebra.projection` and the probabilistic versions follow the
same global/local split as ancestor projection:

* **Descendant projection** keeps the matched objects, their on-path
  ancestors, and everything below the matches.  The efficient local
  version runs the same epsilon pass as ancestor projection (survival of
  a branch depends only on the path part) and then grafts each surviving
  matched object's original subtree — whose distribution is untouched
  and independent of the ancestors — back onto the result.

* **Single projection** re-attaches the matched objects directly under
  the root.  Its result distribution is generally *not* factorizable
  into per-object local functions: two matched objects that shared an
  ancestor are correlated in the result, but the result's weak instance
  (root + matches) has nowhere to store that correlation except the root
  OPF — which is exactly where we put it.  The local algorithm therefore
  computes the root's joint OPF over sets of matched objects via the
  pushforward of the path-ancestor portion only (still far cheaper than
  full enumeration); matched leaves keep their VPFs.
"""

from __future__ import annotations

from repro.algebra.projection import descendant_projection, single_projection
from repro.algebra.projection_prob import ancestor_projection_local, epsilon_pass
from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.errors import SemanticsError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression


def descendant_projection_global(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> GlobalInterpretation:
    """Reference semantics: project every world, group identical results."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    interpretation = GlobalInterpretation.from_local(pi)
    return interpretation.map_worlds(lambda world: descendant_projection(world, path))


def descendant_projection_local(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> ProbabilisticInstance:
    """Efficient descendant projection for tree-structured instances."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    result = ancestor_projection_local(pi, path)
    weak = pi.weak
    # Graft the original subtree below every surviving matched object.
    frontier = [oid for oid in _matched_in(result, pi, path) if oid in result]
    seen: set[Oid] = set()
    while frontier:
        oid = frontier.pop()
        if oid in seen:
            continue
        seen.add(oid)
        for label, children in weak.lch_map(oid).items():
            result.weak.set_lch(oid, label, children)
            if weak.has_explicit_card(oid, label):
                result.weak.set_card(oid, label, weak.card(oid, label))
            frontier.extend(children)
        opf = pi.opf(oid)
        if opf is not None and result.opf(oid) is None:
            result.interpretation.set_opf(oid, opf)
        if weak.is_leaf(oid):
            leaf_type = weak.tau(oid)
            if leaf_type is not None and result.weak.tau(oid) is None:
                result.weak.set_type(oid, leaf_type)
            default = weak.val(oid)
            if default is not None and result.weak.val(oid) is None:
                result.weak.set_val(oid, default)
            vpf = pi.vpf(oid)
            if vpf is not None and result.vpf(oid) is None:
                result.interpretation.set_vpf(oid, vpf)
    return result


def _matched_in(
    result: ProbabilisticInstance, pi: ProbabilisticInstance, path: PathExpression
) -> frozenset[Oid]:
    from repro.semistructured.paths import match_path

    return match_path(pi.weak.graph(), path).matched


def single_projection_global(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> GlobalInterpretation:
    """Reference semantics for single projection."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    interpretation = GlobalInterpretation.from_local(pi)
    return interpretation.map_worlds(lambda world: single_projection(world, path))


def single_projection_local(
    pi: ProbabilisticInstance, path: PathExpression | str
) -> ProbabilisticInstance:
    """Single projection returning a probabilistic instance (trees only).

    The result's root OPF is the exact joint distribution over *sets of
    matched objects present*, computed bottom-up over the path-ancestor
    portion of the tree (never enumerating full worlds): for each kept
    object we maintain a small distribution over "which matched objects
    below it survive", combine children independently (valid in a tree),
    and push through the object's own OPF.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    sweep = epsilon_pass(pi, path)
    match = sweep.match
    depth = len(match.levels) - 1 if match.levels else 0

    from repro.core.weak_instance import WeakInstance

    result_weak = WeakInstance(pi.root)
    result = ProbabilisticInstance(result_weak)
    if match.is_empty or depth == 0:
        return result

    # reach[o] = distribution over frozensets of matched objects reachable
    # below (and including) o, given o exists.
    reach: dict[Oid, dict[ChildSet, float]] = {}
    for oid in match.levels[depth]:
        reach[oid] = {frozenset({oid}): 1.0}

    for level in range(depth - 1, -1, -1):
        children_of: dict[Oid, list[Oid]] = {}
        for src, dst in match.level_edges[level]:
            if dst in reach:
                children_of.setdefault(src, []).append(dst)
        for oid in match.levels[level]:
            kept = children_of.get(oid, [])
            opf = pi.opf(oid)
            if opf is None:
                raise SemanticsError(f"non-leaf object {oid!r} has no OPF")
            dist: dict[ChildSet, float] = {}
            for child_set, p_children in opf.support():
                partials: list[dict[ChildSet, float]] = [
                    reach[c] for c in kept if c in child_set
                ]
                for matched_set, p_matched in _convolve(partials).items():
                    dist[matched_set] = dist.get(matched_set, 0.0) + (
                        p_children * p_matched
                    )
            if dist:
                reach[oid] = dist

    root_dist = reach.get(pi.root, {frozenset(): 1.0})
    matched_present = sorted({o for s in root_dist for o in s})
    if matched_present:
        label = path.labels[-1]
        result_weak.set_lch(pi.root, label, matched_present)
        result.set_opf(pi.root, TabularOPF(root_dist))
        from repro.algebra.projection_prob import _recompute_card

        _recompute_card(result_weak, pi.root, result.opf(pi.root))
    for oid in matched_present:
        if pi.weak.is_leaf(oid):
            leaf_type = pi.weak.tau(oid)
            if leaf_type is not None:
                result_weak.set_type(oid, leaf_type)
            default = pi.weak.val(oid)
            if default is not None:
                result_weak.set_val(oid, default)
            vpf = pi.vpf(oid)
            if vpf is not None:
                result.set_vpf(oid, vpf)
    return result


def _convolve(partials: list[dict[ChildSet, float]]) -> dict[ChildSet, float]:
    """Combine independent per-branch matched-set distributions."""
    combined: dict[ChildSet, float] = {frozenset(): 1.0}
    for partial in partials:
        merged: dict[ChildSet, float] = {}
        for left_set, left_p in combined.items():
            for right_set, right_p in partial.items():
                key = left_set | right_set
                merged[key] = merged.get(key, 0.0) + left_p * right_p
        combined = merged
    return combined
