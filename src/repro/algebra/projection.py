"""Projection operators on ordinary semistructured instances.

* :func:`ancestor_projection` — Definition 5.2: keep the objects located
  by a path expression together with their ancestors *on the matching
  paths* (and the root), preserving edge labels.
* :func:`descendant_projection` — keeps the matched objects, the matching
  root-paths, and additionally everything below the matched objects.
* :func:`single_projection` — keeps only the matched objects, re-attached
  directly under the root with the path's final label.

The paper names all three but details only ancestor projection; the
semantics of the other two follow the obvious reading and are documented
here (see DESIGN.md "Under-specified operators").
"""

from __future__ import annotations

from repro.errors import AlgebraError
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.paths import PathExpression, PathMatch, match_path


def _require_root(instance: SemistructuredInstance, path: PathExpression) -> None:
    if path.root != instance.root:
        raise AlgebraError(
            f"path expression root {path.root!r} is not the instance root "
            f"{instance.root!r}"
        )


def _copy_annotations(
    source: SemistructuredInstance, target: SemistructuredInstance
) -> None:
    for oid in target.objects:
        leaf_type = source.tau(oid)
        if leaf_type is not None:
            target.set_type(oid, leaf_type)
        value = source.val(oid)
        if value is not None:
            target.set_value(oid, value)


def ancestor_projection(
    instance: SemistructuredInstance, path: PathExpression | str
) -> SemistructuredInstance:
    """``Lambda_p(G)``: matched objects, their on-path ancestors, the root.

    Only edges lying on a root-to-match path survive (Definition 5.2), and
    they keep their original labels.  When nothing matches, the result is
    the root-only instance.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    _require_root(instance, path)
    match = match_path(instance.graph, path)
    return projection_from_match(instance, match)


def projection_from_match(
    instance: SemistructuredInstance, match: PathMatch
) -> SemistructuredInstance:
    """Build the ancestor-projection result from a precomputed match."""
    result = SemistructuredInstance(instance.root)
    for src, dst in match.edges:
        result.add_edge(src, dst, instance.label(src, dst))
    _copy_annotations(instance, result)
    return result


def descendant_projection(
    instance: SemistructuredInstance, path: PathExpression | str
) -> SemistructuredInstance:
    """Like ancestor projection, plus the full subgraphs below the matches."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    _require_root(instance, path)
    match = match_path(instance.graph, path)
    result = SemistructuredInstance(instance.root)
    for src, dst in match.edges:
        result.add_edge(src, dst, instance.label(src, dst))
    below: set[str] = set()
    for matched in match.matched:
        below.add(matched)
        below |= instance.graph.descendants(matched)
    for src in below:
        for dst in instance.children(src):
            result.add_edge(src, dst, instance.label(src, dst))
    _copy_annotations(instance, result)
    return result


def single_projection(
    instance: SemistructuredInstance, path: PathExpression | str
) -> SemistructuredInstance:
    """Matched objects re-attached directly under the root.

    A zero-label path returns the root-only instance.  The re-attachment
    label is the path's final label.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    _require_root(instance, path)
    match = match_path(instance.graph, path)
    result = SemistructuredInstance(instance.root)
    if path.labels:
        label = path.labels[-1]
        for matched in match.matched:
            if matched != instance.root:
                result.add_edge(instance.root, matched, label)
    _copy_annotations(instance, result)
    return result
