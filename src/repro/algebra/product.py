"""Cartesian product of probabilistic instances (Definition 5.7).

The product merges the two roots into a fresh root ``r''`` whose children
are the union of both roots' children (so path expressions that worked on
either input keep working on the product), keeps everything else, and —
under the paper's independence assumption — multiplies the roots' OPFs:

    p''(r'')(c ∪ c') = p(r)(c) * p'(r')(c')

Object ids must be unique across the two inputs (the paper renames on
clash; use :func:`repro.algebra.extensions.rename_objects` first).
"""

from __future__ import annotations

from repro.core.cardinality import CardinalityInterval
from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import AlgebraError
from repro.semistructured.graph import Oid


def cartesian_product(
    left: ProbabilisticInstance,
    right: ProbabilisticInstance,
    new_root: Oid | None = None,
) -> ProbabilisticInstance:
    """``I x I'``: merge roots, keep components, multiply root OPFs.

    Args:
        left: the first probabilistic instance.
        right: the second probabilistic instance.
        new_root: id for the merged root; defaults to
            ``"<leftroot>x<rightroot>"``.  Must not collide with any
            existing object id.

    Raises:
        AlgebraError: when non-root object ids overlap (rename first) or
            the chosen root id collides.
    """
    if new_root is None:
        new_root = f"{left.root}x{right.root}"
    left_keep = left.objects - {left.root}
    right_keep = right.objects - {right.root}
    overlap = left_keep & right_keep
    if overlap:
        raise AlgebraError(
            f"object ids appear in both operands (rename first): {sorted(overlap)}"
        )
    if new_root in left_keep or new_root in right_keep:
        raise AlgebraError(f"new root id {new_root!r} collides with an existing object")

    weak = WeakInstance(new_root)
    interp = LocalInterpretation()

    for source in (left, right):
        _copy_component(source, weak, interp, new_root)

    # Merged cardinalities for the new root: summed per shared label.
    for label in left.weak.labels_of(left.root) | right.weak.labels_of(right.root):
        cards = []
        for source in (left, right):
            if label in source.weak.labels_of(source.root):
                cards.append(source.weak.card(source.root, label))
        if len(cards) == 2:
            weak.set_card(
                new_root,
                label,
                CardinalityInterval(
                    cards[0].min + cards[1].min, cards[0].max + cards[1].max
                ),
            )
        elif _has_explicit_root_card(left, right, label):
            weak.set_card(new_root, label, cards[0])

    root_opf = _product_root_opf(left, right)
    result = ProbabilisticInstance(weak, interp)
    if weak.labels_of(new_root):
        result.set_opf(new_root, root_opf)
    return result


def _has_explicit_root_card(
    left: ProbabilisticInstance, right: ProbabilisticInstance, label: str
) -> bool:
    """Whether either operand declared an explicit card for its root/label."""
    return left.weak.has_explicit_card(left.root, label) or right.weak.has_explicit_card(
        right.root, label
    )


def _copy_component(
    source: ProbabilisticInstance,
    weak: WeakInstance,
    interp: LocalInterpretation,
    new_root: Oid,
) -> None:
    """Graft one operand under the merged root."""
    old_root = source.root
    for oid in source.objects:
        target = new_root if oid == old_root else oid
        if target != new_root:
            weak.add_object(target)
        for label, children in source.weak.lch_map(oid).items():
            merged = set(children) | set(weak.lch(target, label))
            weak.set_lch(target, label, merged)
        if oid != old_root:
            for label in source.weak.labels_of(oid):
                if source.weak.has_explicit_card(oid, label):
                    weak.set_card(target, label, source.weak.card(oid, label))
            leaf_type = source.weak.tau(oid)
            if leaf_type is not None:
                weak.set_type(oid, leaf_type)
            default = source.weak.val(oid)
            if default is not None:
                weak.set_val(oid, default)
            opf = source.opf(oid)
            if opf is not None:
                interp.set_opf(oid, opf)
            vpf = source.vpf(oid)
            if vpf is not None:
                interp.set_vpf(oid, vpf)


def _product_root_opf(
    left: ProbabilisticInstance, right: ProbabilisticInstance
) -> TabularOPF:
    left_support = _root_support(left)
    right_support = _root_support(right)
    table: dict[ChildSet, float] = {}
    for left_set, left_p in left_support:
        for right_set, right_p in right_support:
            union = left_set | right_set
            table[union] = table.get(union, 0.0) + left_p * right_p
    return TabularOPF(table)


def _root_support(pi: ProbabilisticInstance) -> list[tuple[ChildSet, float]]:
    opf = pi.opf(pi.root)
    if opf is None:
        # A leaf root contributes the empty child set with certainty.
        return [(frozenset(), 1.0)]
    return list(opf.support())
