"""Update operations on probabilistic instances.

The paper's situation 2 ("now we know that a particular book surely
exists") is a *belief update*; selection implements it by conditioning.
This module provides the wider update vocabulary a maintained
probabilistic database needs, all returning new instances:

* :func:`assert_child` / :func:`retract_child` — condition a parent's
  OPF on a specific child being present/absent.
* :func:`set_value` — fix a leaf's value (point-mass VPF).
* :func:`reweight_opf` — soft (virtual) evidence: multiply the OPF by a
  likelihood and renormalize.
* :func:`insert_child` — schema-extending update: add a brand-new
  potential child with an independent inclusion probability.
* :func:`remove_object` — delete an object (and its now-unreachable
  descendants) from the model entirely.

**Semantics note.**  These operations rewrite *local* functions.  For an
object ``o`` that occurs with certainty, conditioning its OPF equals
conditioning the global distribution (that is Definition 5.6's selection
restricted to one object).  When ``o`` occurs only with some probability,
the local rewrite realizes the conditional *given o occurs* while leaving
the probability of worlds without ``o`` untouched — the standard local
revision for hierarchical models, and the exact global conditional is
available through ``select_global`` / ``GlobalInterpretation.condition``.
Tests verify both facts.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.potential import ChildSet
from repro.errors import AlgebraError, DistributionError, EmptyResultError
from repro.semistructured.graph import Label, Oid
from repro.semistructured.types import Value


def _conditioned_copy(
    pi: ProbabilisticInstance,
    oid: Oid,
    predicate: Callable[[ChildSet], bool],
) -> ProbabilisticInstance:
    result = pi.copy()
    opf = result.opf(oid)
    if opf is None:
        raise AlgebraError(f"object {oid!r} has no OPF")
    try:
        conditioned, _ = opf.restrict(predicate)
    except DistributionError as exc:
        raise EmptyResultError(str(exc)) from exc
    result.interpretation.drop(oid)
    result.interpretation.set_opf(oid, conditioned)
    return result


def assert_child(
    pi: ProbabilisticInstance, parent: Oid, child: Oid
) -> ProbabilisticInstance:
    """Condition on ``child in c(parent)`` (given the parent occurs)."""
    if child not in pi.weak.potential_children(parent):
        raise AlgebraError(f"{child!r} is not a potential child of {parent!r}")
    return _conditioned_copy(pi, parent, lambda c: child in c)


def retract_child(
    pi: ProbabilisticInstance, parent: Oid, child: Oid
) -> ProbabilisticInstance:
    """Condition on ``child not in c(parent)`` and prune the orphan.

    The child (with everything below it that becomes unreachable) is
    removed from the weak instance as well: after the retraction it can
    never occur.
    """
    result = _conditioned_copy(pi, parent, lambda c: child not in c)
    label = result.weak.label_of_child(parent, child)
    remaining = result.weak.lch(parent, label) - {child}
    result.weak.set_lch(parent, label, remaining)
    if result.weak.has_explicit_card(parent, label):
        card = result.weak.card(parent, label)
        result.weak.set_card(parent, label, card.clamp_to(len(remaining)))
    _prune_unreachable(result)
    return result


def set_value(
    pi: ProbabilisticInstance, oid: Oid, value: Value
) -> ProbabilisticInstance:
    """Fix a leaf's value: its VPF becomes a point mass on ``value``.

    Raises :class:`EmptyResultError` when the current VPF gives the value
    zero probability (the evidence contradicts the model).
    """
    result = pi.copy()
    vpf = result.effective_vpf(oid)
    if vpf is None:
        raise AlgebraError(f"object {oid!r} carries no value distribution")
    if vpf.prob(value) <= 0.0:
        raise EmptyResultError(
            f"value {value!r} has probability zero at {oid!r}"
        )
    result.interpretation.drop(oid)
    result.interpretation.set_vpf(oid, TabularVPF.point_mass(value))
    return result


def reweight_opf(
    pi: ProbabilisticInstance,
    oid: Oid,
    likelihood: Callable[[ChildSet], float],
) -> ProbabilisticInstance:
    """Soft evidence on an object's child-set choice.

    Each support entry is multiplied by ``likelihood(c) >= 0`` and the
    OPF renormalized (Pearl's virtual evidence, applied to the local
    choice given the object occurs).
    """
    result = pi.copy()
    opf = result.opf(oid)
    if opf is None:
        raise AlgebraError(f"object {oid!r} has no OPF")
    table: dict[ChildSet, float] = {}
    for child_set, probability in opf.support():
        weight = likelihood(child_set)
        if weight < 0.0:
            raise AlgebraError(f"negative likelihood for {sorted(child_set)!r}")
        if weight > 0.0:
            table[child_set] = probability * weight
    mass = sum(table.values())
    if mass <= 0.0:
        raise EmptyResultError("the likelihood annihilates the entire OPF")
    result.interpretation.drop(oid)
    result.interpretation.set_opf(
        oid, TabularOPF({c: p / mass for c, p in table.items()})
    )
    return result


def insert_child(
    pi: ProbabilisticInstance,
    parent: Oid,
    label: Label,
    child: Oid,
    probability: float,
) -> ProbabilisticInstance:
    """Add a new potential child present independently with ``probability``.

    The parent's OPF becomes the product of the old OPF and an
    independent inclusion flip for the new child; existing entries keep
    their relative weights.  The new child starts as a bare leaf — attach
    a type/VPF or children with further updates.
    """
    if not 0.0 <= probability <= 1.0:
        raise AlgebraError(f"inclusion probability must be in [0, 1], got {probability!r}")
    if child in pi.weak:
        raise AlgebraError(f"object id {child!r} already exists")
    result = pi.copy()
    opf = result.opf(parent)
    if opf is None:
        raise AlgebraError(f"object {parent!r} has no OPF")
    result.weak.set_lch(
        parent, label, set(result.weak.lch(parent, label)) | {child}
    )
    table: dict[ChildSet, float] = {}
    for child_set, p in opf.support():
        if probability < 1.0:
            table[child_set] = table.get(child_set, 0.0) + p * (1.0 - probability)
        if probability > 0.0:
            extended = child_set | {child}
            table[extended] = table.get(extended, 0.0) + p * probability
    result.interpretation.drop(parent)
    result.interpretation.set_opf(parent, TabularOPF(table))
    return result


def remove_object(pi: ProbabilisticInstance, oid: Oid) -> ProbabilisticInstance:
    """Delete an object from the model entirely.

    Every parent's OPF is conditioned on not choosing ``oid``; the object
    and any descendants that become unreachable are dropped from the weak
    instance.  Raises :class:`EmptyResultError` when some parent *must*
    choose it (e.g. card ``[1, 1]`` with a single candidate).
    """
    if oid == pi.root:
        raise AlgebraError("cannot remove the root object")
    result = pi.copy()
    graph = result.weak.graph()
    if oid not in graph:
        raise AlgebraError(f"unknown object: {oid!r}")
    for parent in sorted(graph.parents(oid)):
        opf = result.opf(parent)
        if opf is None:
            raise AlgebraError(f"object {parent!r} has no OPF")
        try:
            conditioned, _ = opf.restrict(lambda c: oid not in c)
        except DistributionError as exc:
            raise EmptyResultError(str(exc)) from exc
        result.interpretation.drop(parent)
        result.interpretation.set_opf(parent, conditioned)
        label = result.weak.label_of_child(parent, oid)
        remaining = result.weak.lch(parent, label) - {oid}
        result.weak.set_lch(parent, label, remaining)
        if result.weak.has_explicit_card(parent, label):
            card = result.weak.card(parent, label)
            result.weak.set_card(parent, label, card.clamp_to(len(remaining)))
    _prune_unreachable(result)
    return result


def _prune_unreachable(pi: ProbabilisticInstance) -> None:
    """Drop objects no longer reachable from the root (in place)."""
    weak = pi.weak
    reachable = weak.graph().reachable_from(weak.root)
    for oid in sorted(weak.objects - reachable):
        pi.interpretation.drop(oid)
        weak.remove_object(oid)
