"""Algebra extensions the paper defers to its "longer version".

Section 5 promises join, renaming, union and intersection for a longer
version of the paper.  This module supplies working definitions:

* :func:`rename_objects` — consistent object-id renaming (needed before a
  Cartesian product whose operands share ids).
* :func:`join` — Cartesian product followed by selection conditions, the
  standard relational decomposition the paper alludes to ("join can be
  defined in terms of these operations in the standard way").
* :func:`union_global` — the probabilistic mixture of two instances over
  the same object universe: ``P = w * P1 + (1 - w) * P2``.  A mixture is
  generally *not* factorizable into a single local interpretation, so the
  result is a :class:`GlobalInterpretation` (use
  :func:`repro.semantics.factorize` when it happens to satisfy a weak
  instance).
* :func:`intersection_global` — conditioning each distribution on the
  common support, with world probabilities proportional to the product
  ``P1(S) * P2(S)`` (a product-of-experts combination).

These semantics are this library's extensions — the paper does not pin
them down — and are documented as such in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.algebra.product import cartesian_product
from repro.algebra.selection import SelectionCondition
from repro.core.distributions import ObjectProbabilityFunction, TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.errors import AlgebraError, EmptyResultError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance


def rename_objects(
    pi: ProbabilisticInstance, mapping: Mapping[Oid, Oid]
) -> ProbabilisticInstance:
    """A copy of ``pi`` with object ids renamed per ``mapping``.

    Ids absent from the mapping stay unchanged.  The mapping must be
    injective on the instance and must not map onto ids it does not also
    rename away.
    """
    def rename(oid: Oid) -> Oid:
        return mapping.get(oid, oid)

    new_ids = [rename(oid) for oid in pi.objects]
    if len(set(new_ids)) != len(new_ids):
        raise AlgebraError("renaming maps two objects to the same id")

    weak = WeakInstance(rename(pi.root))
    for oid in pi.objects:
        weak.add_object(rename(oid))
    for oid in pi.objects:
        for label, children in pi.weak.lch_map(oid).items():
            weak.set_lch(rename(oid), label, {rename(c) for c in children})
        for label in pi.weak.labels_of(oid):
            if pi.weak.has_explicit_card(oid, label):
                weak.set_card(rename(oid), label, pi.weak.card(oid, label))
        leaf_type = pi.weak.tau(oid)
        if leaf_type is not None:
            weak.set_type(rename(oid), leaf_type)
        default = pi.weak.val(oid)
        if default is not None:
            weak.set_val(rename(oid), default)

    interp = LocalInterpretation()
    for oid, opf in pi.interpretation.opf_items():
        interp.set_opf(rename(oid), _rename_opf(opf, rename))
    for oid, vpf in pi.interpretation.vpf_items():
        interp.set_vpf(rename(oid), vpf)
    return ProbabilisticInstance(weak, interp)


def _rename_opf(
    opf: ObjectProbabilityFunction, rename
) -> ObjectProbabilityFunction:
    return TabularOPF(
        {frozenset(rename(c) for c in child_set): p for child_set, p in opf.support()}
    )


def join(
    left: ProbabilisticInstance,
    right: ProbabilisticInstance,
    conditions: Sequence[SelectionCondition],
    new_root: Oid | None = None,
) -> GlobalInterpretation:
    """Cartesian product followed by selection on the join conditions.

    Returns the conditioned global interpretation over product worlds;
    conditions typically compare paths stemming from the two operands
    (both remain addressable from the merged root).
    """
    product = cartesian_product(left, right, new_root)
    interpretation = GlobalInterpretation.from_local(product)
    for condition in conditions:
        interpretation = interpretation.condition(condition.satisfied_by)
    return interpretation


def union_global(
    left: ProbabilisticInstance | GlobalInterpretation,
    right: ProbabilisticInstance | GlobalInterpretation,
    weight: float = 0.5,
) -> GlobalInterpretation:
    """The ``weight``-mixture of two world distributions."""
    if not 0.0 <= weight <= 1.0:
        raise AlgebraError(f"mixture weight must be in [0, 1], got {weight!r}")
    left_interp = _as_global(left)
    right_interp = _as_global(right)
    mixture: dict[SemistructuredInstance, float] = {}
    for world, probability in left_interp.support():
        mixture[world] = mixture.get(world, 0.0) + weight * probability
    for world, probability in right_interp.support():
        mixture[world] = mixture.get(world, 0.0) + (1.0 - weight) * probability
    return GlobalInterpretation(mixture)


def intersection_global(
    left: ProbabilisticInstance | GlobalInterpretation,
    right: ProbabilisticInstance | GlobalInterpretation,
) -> GlobalInterpretation:
    """Product-of-experts intersection: ``P(S) ∝ P1(S) * P2(S)``.

    Raises :class:`EmptyResultError` when the supports are disjoint.
    """
    left_interp = _as_global(left)
    right_interp = _as_global(right)
    combined: dict[SemistructuredInstance, float] = {}
    for world, probability in left_interp.support():
        other = right_interp.prob(world)
        if other > 0.0:
            combined[world] = probability * other
    mass = sum(combined.values())
    if mass <= 0.0:
        raise EmptyResultError("the two distributions share no world")
    return GlobalInterpretation({w: p / mass for w, p in combined.items()})


def _as_global(
    source: ProbabilisticInstance | GlobalInterpretation,
) -> GlobalInterpretation:
    if isinstance(source, GlobalInterpretation):
        return source
    return GlobalInterpretation.from_local(source)


__all__ = [
    "intersection_global",
    "join",
    "rename_objects",
    "union_global",
]
