"""Kill-at-every-fault-point crash sweep for the storage layer.

The write-ahead journal (:mod:`repro.storage.journal`) claims that a
process dying at *any* point of a multi-file catalog operation leaves a
directory that replay-on-open brings back to a consistent state.  This
harness makes that claim empirical instead of rhetorical:

1. **Profile** — run a fixed catalog op cycle (saves, a re-save, a
   drop, a quarantine) once in-process with a counting injector to
   learn how many times each registered storage fault point
   (:data:`repro.resilience.faults.STORAGE_FAULT_POINTS`) is visited.
2. **Sweep** — for every ``(site, visit)`` pair, spawn a sacrificial
   subprocess that re-runs the same cycle with a ``"crash"`` fault spec
   (``SIGKILL``, no unwinding, no flushing — a power cut) armed at
   exactly that visit, and assert the child died to the kill.
3. **Verify** — reopen the directory (which replays the journal) and
   assert the recovery contract: every surviving instance loads
   checksum-clean, the generation counter never went backwards, and
   ``python -m repro.storage fsck`` has zero findings left.

Run it directly::

    python -m repro.resilience.crashsweep --seed 11

The CI ``crash-sweep`` job runs this across a seed matrix; a tier-1
test sweeps a subset of sites so regressions surface locally too.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.faults import (
    STORAGE_FAULT_POINTS,
    FaultInjector,
    FaultSpec,
)

#: Subprocess wall-clock limit per kill (the cycle itself takes < 1 s).
CHILD_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class CrashOutcome:
    """The result of one kill: where, which visit, and what recovery found."""

    site: str
    visit: int
    killed: bool
    recovered: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.killed and self.recovered

    def as_dict(self) -> dict[str, object]:
        return {
            "site": self.site,
            "visit": self.visit,
            "killed": self.killed,
            "recovered": self.recovered,
            "ok": self.ok,
            "detail": self.detail,
        }


# ----------------------------------------------------------------------
# The catalog op cycle under test
# ----------------------------------------------------------------------
def run_cycle(directory: Path) -> None:
    """A deterministic cycle covering every journaled operation kind.

    Saves two instances, re-saves one after a mutation, drops one,
    then plants out-of-band corruption and triggers the quarantine
    path.  Every storage fault point fires at least once along the way.
    """
    from repro.paper import example52_instance, figure2_instance
    from repro.storage.database import Database, DatabaseError

    db = Database(directory, on_corrupt="quarantine")
    db.register("alpha", figure2_instance())
    db.save("alpha")
    db.register("beta", example52_instance())
    db.save("beta")
    db.touch("alpha")
    db.save("alpha")
    db.drop("beta")
    db.register("gamma", example52_instance())
    db.save("gamma")
    # Plant corruption the way bit rot would: mutate the data file
    # behind the codec's back, leaving the sidecar stale.
    gamma = directory / "gamma.pxml.json"
    gamma.write_text(
        gamma.read_text(encoding="utf-8") + " ", encoding="utf-8"
    )
    # reload() re-reads from disk unconditionally, hits the checksum
    # mismatch, and quarantines.
    try:
        db.reload("gamma")
    except DatabaseError:
        pass  # expected: corrupt → quarantined


def profile_visits(seed: int) -> dict[str, int]:
    """How many times a clean cycle visits each storage fault point."""
    specs = [
        FaultSpec(site=site, kind="slow", times=0)
        for site in STORAGE_FAULT_POINTS
    ]
    with tempfile.TemporaryDirectory(prefix="crashsweep-profile-") as tmp:
        injector = FaultInjector(*specs, seed=seed)
        with injector:
            run_cycle(Path(tmp))
        return injector.visit_counts()


# ----------------------------------------------------------------------
# Child process: run the cycle with a crash armed
# ----------------------------------------------------------------------
def child_main(directory: Path, site: str, visit: int, seed: int) -> int:
    """Run the cycle with a SIGKILL armed at ``(site, visit)``.

    Normally never returns (the kill fires mid-cycle); returns 0 when
    the armed visit was never reached — which the parent treats as a
    sweep failure, because profiling said it would be.
    """
    spec = FaultSpec(site=site, kind="crash", nth=visit, times=1)
    with FaultInjector(spec, seed=seed):
        run_cycle(directory)
    return 0


def spawn_child(
    directory: Path, site: str, visit: int, seed: int
) -> subprocess.CompletedProcess[str]:
    """Run the sacrificial child for one ``(site, visit)`` kill."""
    command = [
        sys.executable, "-m", "repro.resilience.crashsweep",
        "--child", "--directory", str(directory),
        "--site", site, "--visit", str(visit), "--seed", str(seed),
    ]
    return subprocess.run(
        command,
        capture_output=True,
        text=True,
        timeout=CHILD_TIMEOUT_S,
        env=os.environ.copy(),
    )


# ----------------------------------------------------------------------
# Recovery verification
# ----------------------------------------------------------------------
def verify_recovery(directory: Path) -> tuple[bool, str]:
    """Reopen a crashed directory and check the recovery contract.

    Returns ``(ok, detail)``: every instance loads checksum-clean, the
    generation counter is monotone across replay, and fsck reports
    nothing left to repair.
    """
    from repro.storage.database import Database, DatabaseError
    from repro.storage.fsck import fsck_directory
    from repro.storage.locking import GENERATION_NAME, read_generation

    problems: list[str] = []
    before = read_generation(directory / GENERATION_NAME)
    db = Database(directory, on_corrupt="quarantine")  # replays the journal
    # A crash can leave damage indistinguishable from bit rot (e.g. a
    # kill right before a quarantine's begin record): fsck --repair
    # must absorb all of it — quarantining evidence, never deleting
    # data — with nothing left unrepaired.
    repair = fsck_directory(directory, repair=True)
    if repair.unrepaired:
        problems.append(
            "unrepaired fsck findings: " + "; ".join(
                f"{f.code} {f.path}" for f in repair.unrepaired
            )
        )
    for name in db.names():
        try:
            db.get(name)
        except DatabaseError as exc:
            problems.append(f"{name} not checksum-clean: {exc}")
    after = db.generation()
    if after < before:
        problems.append(f"generation went backwards: {before} -> {after}")
    committed = 0
    if db.journal is not None:
        committed = db.journal.committed_generation()
    if after < committed:
        problems.append(
            f"generation {after} behind journal's committed {committed}"
        )
    report = fsck_directory(directory)
    if not report.clean:
        problems.append(
            "fsck still reports findings after repair: " + "; ".join(
                f"{f.code} {f.path}" for f in report.findings
            )
        )
    return (not problems, "; ".join(problems))


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def sweep(
    seed: int = 0,
    sites: tuple[str, ...] | None = None,
    progress: bool = False,
) -> list[CrashOutcome]:
    """Kill the op cycle at every visit of every registered fault point.

    Returns one :class:`CrashOutcome` per ``(site, visit)`` kill; the
    sweep passes when every outcome is ``ok``.
    """
    chosen = sites if sites is not None else STORAGE_FAULT_POINTS
    counts = profile_visits(seed)
    outcomes: list[CrashOutcome] = []
    for site in chosen:
        visits = counts.get(site, 0)
        if visits == 0:
            outcomes.append(CrashOutcome(
                site=site, visit=0, killed=False, recovered=False,
                detail="fault point never visited by the op cycle",
            ))
            continue
        for visit in range(1, visits + 1):
            with tempfile.TemporaryDirectory(
                prefix="crashsweep-"
            ) as tmp:
                directory = Path(tmp)
                proc = spawn_child(directory, site, visit, seed)
                killed = proc.returncode == -9
                if not killed:
                    outcomes.append(CrashOutcome(
                        site=site, visit=visit, killed=False,
                        recovered=False,
                        detail=(
                            f"child exited {proc.returncode} instead of "
                            f"being killed; stderr: {proc.stderr[-400:]}"
                        ),
                    ))
                    continue
                recovered, detail = verify_recovery(directory)
                outcomes.append(CrashOutcome(
                    site=site, visit=visit, killed=True,
                    recovered=recovered, detail=detail,
                ))
            if progress:
                last = outcomes[-1]
                status = "ok" if last.ok else f"FAIL ({last.detail})"
                print(f"  kill at {site} visit {visit}: {status}",
                      flush=True)
    return outcomes


def format_outcomes(outcomes: list[CrashOutcome]) -> str:
    failed = [o for o in outcomes if not o.ok]
    lines = [
        f"crash sweep: {len(outcomes)} kill(s) across "
        f"{len({o.site for o in outcomes})} site(s), "
        f"{len(failed)} failure(s)"
    ]
    for outcome in failed:
        lines.append(
            f"  FAIL {outcome.site} visit {outcome.visit}: "
            f"{outcome.detail}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.crashsweep",
        description="SIGKILL a catalog op cycle at every storage fault "
        "point and verify journal replay recovers",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sites", nargs="*", default=None,
        help="restrict to these fault points (default: all registered)",
    )
    parser.add_argument("--json", action="store_true")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-kill progress"
    )
    # Internal: sacrificial child mode.
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--directory", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--site", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--visit", type=int, default=1,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        if args.directory is None or args.site is None:
            parser.error("--child needs --directory and --site")
        return child_main(
            Path(args.directory), args.site, args.visit, args.seed
        )
    sites = tuple(args.sites) if args.sites else None
    outcomes = sweep(seed=args.seed, sites=sites, progress=not args.quiet)
    if args.json:
        print(json.dumps([o.as_dict() for o in outcomes], indent=2))
    else:
        print(format_outcomes(outcomes))
    return 0 if all(o.ok for o in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "CHILD_TIMEOUT_S",
    "CrashOutcome",
    "child_main",
    "format_outcomes",
    "profile_visits",
    "run_cycle",
    "sweep",
    "verify_recovery",
]
