"""Kill-at-every-fault-point crash sweep for the storage layer.

The write-ahead journal (:mod:`repro.storage.journal`) claims that a
process dying at *any* point of a multi-file catalog operation leaves a
directory that replay-on-open brings back to a consistent state.  This
harness makes that claim empirical instead of rhetorical:

1. **Profile** — run a fixed catalog op cycle (saves, a re-save, a
   drop, a quarantine) once in-process with a counting injector to
   learn how many times each registered storage fault point
   (:data:`repro.resilience.faults.STORAGE_FAULT_POINTS`) is visited.
2. **Sweep** — for every ``(site, visit)`` pair, spawn a sacrificial
   subprocess that re-runs the same cycle with a ``"crash"`` fault spec
   (``SIGKILL``, no unwinding, no flushing — a power cut) armed at
   exactly that visit, and assert the child died to the kill.
3. **Verify** — reopen the directory (which replays the journal) and
   assert the recovery contract: every surviving instance loads
   checksum-clean, the generation counter never went backwards, and
   ``python -m repro.storage fsck`` has zero findings left.

Run it directly::

    python -m repro.resilience.crashsweep --seed 11

``--mode rebalance`` sweeps the *shard migration* protocol instead
(:data:`repro.resilience.faults.REBALANCE_FAULT_POINTS`): the cycle
builds a 2-shard root, parks one name off its hash home, and executes a
2 → 3 resize; the child is killed at every visit of every
``rebalance.*`` fault point, and verification asserts the migration
contract — ``fsck --shards --repair`` resumes it to completion, the
manifest converges to the new layout epoch, and every expected name is
held by *exactly one* shard (its new-ring home), checksum-clean, with
no duplicated or lost instances or sidecars.

The CI ``crash-sweep`` / ``rebalance-sweep`` jobs run this across a
seed matrix; a tier-1 test sweeps a subset of sites so regressions
surface locally too.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.faults import (
    REBALANCE_FAULT_POINTS,
    STORAGE_FAULT_POINTS,
    FaultInjector,
    FaultSpec,
)

#: Subprocess wall-clock limit per kill (the cycle itself takes < 1 s).
CHILD_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class CrashOutcome:
    """The result of one kill: where, which visit, and what recovery found."""

    site: str
    visit: int
    killed: bool
    recovered: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.killed and self.recovered

    def as_dict(self) -> dict[str, object]:
        return {
            "site": self.site,
            "visit": self.visit,
            "killed": self.killed,
            "recovered": self.recovered,
            "ok": self.ok,
            "detail": self.detail,
        }


# ----------------------------------------------------------------------
# The catalog op cycle under test
# ----------------------------------------------------------------------
def run_cycle(directory: Path) -> None:
    """A deterministic cycle covering every journaled operation kind.

    Saves two instances, re-saves one after a mutation, drops one,
    then plants out-of-band corruption and triggers the quarantine
    path.  Every storage fault point fires at least once along the way.
    """
    from repro.paper import example52_instance, figure2_instance
    from repro.storage.database import Database, DatabaseError

    db = Database(directory, on_corrupt="quarantine")
    db.register("alpha", figure2_instance())
    db.save("alpha")
    db.register("beta", example52_instance())
    db.save("beta")
    db.touch("alpha")
    db.save("alpha")
    db.drop("beta")
    db.register("gamma", example52_instance())
    db.save("gamma")
    # Plant corruption the way bit rot would: mutate the data file
    # behind the codec's back, leaving the sidecar stale.
    gamma = directory / "gamma.pxml.json"
    gamma.write_text(
        gamma.read_text(encoding="utf-8") + " ", encoding="utf-8"
    )
    # reload() re-reads from disk unconditionally, hits the checksum
    # mismatch, and quarantines.
    try:
        db.reload("gamma")
    except DatabaseError:
        pass  # expected: corrupt → quarantined


def profile_visits(seed: int) -> dict[str, int]:
    """How many times a clean cycle visits each storage fault point."""
    specs = [
        FaultSpec(site=site, kind="slow", times=0)
        for site in STORAGE_FAULT_POINTS
    ]
    with tempfile.TemporaryDirectory(prefix="crashsweep-profile-") as tmp:
        injector = FaultInjector(*specs, seed=seed)
        with injector:
            run_cycle(Path(tmp))
        return injector.visit_counts()


# ----------------------------------------------------------------------
# The shard-migration cycle under test (--mode rebalance)
# ----------------------------------------------------------------------
def rebalance_placements(seed: int) -> dict[str, int]:
    """Deterministic ``name -> old shard`` placements for the cycle.

    Eight seed-derived names over a 2-shard layout: four whose 3-ring
    home matches their 2-ring home (must *not* travel), three whose
    home changes (must travel), and one parked *off* its 2-ring home
    whose 3-ring home differs from where it sits (an overlay stray the
    plan must bring home).  Both the child and the verifier recompute
    this from the seed alone.
    """
    from repro.server.rebalance import DEFAULT_VNODES, build_ring, ring_owner

    pos2, own2 = build_ring(2, DEFAULT_VNODES)
    pos3, own3 = build_ring(3, DEFAULT_VNODES)
    placements: dict[str, int] = {}
    stayers = movers = 0
    stray_placed = False
    index = 0
    while (stayers < 4 or movers < 3 or not stray_placed) and index < 10_000:
        name = f"inst-{seed}-{index}"
        index += 1
        home2 = ring_owner(pos2, own2, name)
        home3 = ring_owner(pos3, own3, name)
        if not stray_placed and home3 != 1 - home2:
            placements[name] = 1 - home2
            stray_placed = True
        elif home2 == home3 and stayers < 4:
            placements[name] = home2
            stayers += 1
        elif home2 != home3 and movers < 3:
            placements[name] = home2
            movers += 1
    return placements


def run_rebalance_cycle(directory: Path, seed: int) -> None:
    """Build a 2-shard root and execute a 2 → 3 resize over it.

    Setup (manifest + per-shard saves) visits no ``rebalance.*`` fault
    point, so an armed kill always lands inside the migration protocol
    proper — exactly the window the journal must make survivable.
    """
    from repro.io.json_codec import dumps
    from repro.paper import example52_instance, figure2_instance
    from repro.server.rebalance import (
        DirectoryShardAccess,
        Rebalancer,
        ShardManifest,
        plan_rebalance,
        write_manifest,
    )

    directory.mkdir(parents=True, exist_ok=True)
    write_manifest(directory, ShardManifest(shards=2))
    access = DirectoryShardAccess(directory)
    placements = rebalance_placements(seed)
    for position, name in enumerate(sorted(placements)):
        instance = (
            figure2_instance() if position % 2 else example52_instance()
        )
        access.store(placements[name], name, dumps(instance))
    plan = plan_rebalance(placements, old_shards=2, new_shards=3)
    Rebalancer(directory, access).execute(plan)


def profile_rebalance_visits(seed: int) -> dict[str, int]:
    """How many times a clean resize visits each rebalance fault point."""
    specs = [
        FaultSpec(site=site, kind="slow", times=0)
        for site in REBALANCE_FAULT_POINTS
    ]
    with tempfile.TemporaryDirectory(prefix="crashsweep-profile-") as tmp:
        injector = FaultInjector(*specs, seed=seed)
        with injector:
            run_rebalance_cycle(Path(tmp), seed)
        return injector.visit_counts()


# ----------------------------------------------------------------------
# Child process: run the cycle with a crash armed
# ----------------------------------------------------------------------
def child_main(
    directory: Path, site: str, visit: int, seed: int,
    mode: str = "storage",
) -> int:
    """Run the cycle with a SIGKILL armed at ``(site, visit)``.

    Normally never returns (the kill fires mid-cycle); returns 0 when
    the armed visit was never reached — which the parent treats as a
    sweep failure, because profiling said it would be.
    """
    spec = FaultSpec(site=site, kind="crash", nth=visit, times=1)
    with FaultInjector(spec, seed=seed):
        if mode == "rebalance":
            run_rebalance_cycle(directory, seed)
        else:
            run_cycle(directory)
    return 0


def spawn_child(
    directory: Path, site: str, visit: int, seed: int,
    mode: str = "storage",
) -> subprocess.CompletedProcess[str]:
    """Run the sacrificial child for one ``(site, visit)`` kill."""
    command = [
        sys.executable, "-m", "repro.resilience.crashsweep",
        "--child", "--directory", str(directory), "--mode", mode,
        "--site", site, "--visit", str(visit), "--seed", str(seed),
    ]
    return subprocess.run(
        command,
        capture_output=True,
        text=True,
        timeout=CHILD_TIMEOUT_S,
        env=os.environ.copy(),
    )


# ----------------------------------------------------------------------
# Recovery verification
# ----------------------------------------------------------------------
def verify_recovery(directory: Path) -> tuple[bool, str]:
    """Reopen a crashed directory and check the recovery contract.

    Returns ``(ok, detail)``: every instance loads checksum-clean, the
    generation counter is monotone across replay, and fsck reports
    nothing left to repair.
    """
    from repro.storage.database import Database, DatabaseError
    from repro.storage.fsck import fsck_directory
    from repro.storage.locking import GENERATION_NAME, read_generation

    problems: list[str] = []
    before = read_generation(directory / GENERATION_NAME)
    db = Database(directory, on_corrupt="quarantine")  # replays the journal
    # A crash can leave damage indistinguishable from bit rot (e.g. a
    # kill right before a quarantine's begin record): fsck --repair
    # must absorb all of it — quarantining evidence, never deleting
    # data — with nothing left unrepaired.
    repair = fsck_directory(directory, repair=True)
    if repair.unrepaired:
        problems.append(
            "unrepaired fsck findings: " + "; ".join(
                f"{f.code} {f.path}" for f in repair.unrepaired
            )
        )
    for name in db.names():
        try:
            db.get(name)
        except DatabaseError as exc:
            problems.append(f"{name} not checksum-clean: {exc}")
    after = db.generation()
    if after < before:
        problems.append(f"generation went backwards: {before} -> {after}")
    committed = 0
    if db.journal is not None:
        committed = db.journal.committed_generation()
    if after < committed:
        problems.append(
            f"generation {after} behind journal's committed {committed}"
        )
    report = fsck_directory(directory)
    if not report.clean:
        problems.append(
            "fsck still reports findings after repair: " + "; ".join(
                f"{f.code} {f.path}" for f in report.findings
            )
        )
    return (not problems, "; ".join(problems))


def verify_rebalance_recovery(
    directory: Path, seed: int
) -> tuple[bool, str]:
    """Check the migration contract after a kill inside a resize.

    ``fsck --shards --repair`` (which resumes the torn migration) must
    leave nothing unrepaired; the manifest must carry the new layout
    (3 shards, epoch 1); every expected name must sit on *exactly one*
    shard — its new-ring home — and load checksum-clean; and a
    check-only ``fsck --shards`` pass must be clean.
    """
    from repro.server.rebalance import (
        DEFAULT_VNODES,
        build_ring,
        read_manifest,
        ring_owner,
    )
    from repro.storage.database import Database, DatabaseError
    from repro.storage.fsck import fsck_sharded_root
    from repro.storage.journal import INSTANCE_SUFFIX

    problems: list[str] = []
    repair = fsck_sharded_root(directory, repair=True)
    if repair.unrepaired:
        problems.append(
            "unrepaired fsck findings: " + "; ".join(
                f"{f.code} {f.path}" for f in repair.unrepaired
            )
        )
    manifest = read_manifest(directory)
    if manifest is None or manifest.shards != 3 or manifest.layout_epoch != 1:
        problems.append(
            "manifest did not converge to 3 shards at epoch 1: "
            f"{manifest.as_dict() if manifest else None}"
        )
    vnodes = manifest.vnodes if manifest is not None else DEFAULT_VNODES
    positions, owners = build_ring(3, vnodes)
    for name in sorted(rebalance_placements(seed)):
        holders = [
            shard for shard in range(3)
            if (
                directory / f"shard-{shard}" / f"{name}{INSTANCE_SUFFIX}"
            ).is_file()
        ]
        if len(holders) != 1:
            problems.append(
                f"{name} held by {len(holders)} shard(s) "
                f"({holders}), expected exactly one"
            )
        elif holders[0] != ring_owner(positions, owners, name):
            problems.append(
                f"{name} on shard {holders[0]}, expected its ring home "
                f"{ring_owner(positions, owners, name)}"
            )
    for shard in range(3):
        shard_dir = directory / f"shard-{shard}"
        if not shard_dir.is_dir():
            continue
        db = Database(shard_dir)
        for name in db.names():
            try:
                db.get(name)
            except DatabaseError as exc:
                problems.append(
                    f"shard-{shard}/{name} not checksum-clean: {exc}"
                )
    check = fsck_sharded_root(directory)
    if not check.clean:
        problems.append(
            "fsck --shards still reports findings after repair: "
            + "; ".join(f"{f.code} {f.path}" for f in check.findings)
        )
    return (not problems, "; ".join(problems))


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _run_sweep(
    chosen: tuple[str, ...],
    counts: dict[str, int],
    seed: int,
    mode: str,
    verify: Callable[[Path], tuple[bool, str]],
    progress: bool,
) -> list[CrashOutcome]:
    """Kill at every visit of every chosen site; verify each recovery."""
    outcomes: list[CrashOutcome] = []
    for site in chosen:
        visits = counts.get(site, 0)
        if visits == 0:
            outcomes.append(CrashOutcome(
                site=site, visit=0, killed=False, recovered=False,
                detail="fault point never visited by the op cycle",
            ))
            continue
        for visit in range(1, visits + 1):
            with tempfile.TemporaryDirectory(
                prefix="crashsweep-"
            ) as tmp:
                directory = Path(tmp)
                proc = spawn_child(directory, site, visit, seed, mode=mode)
                killed = proc.returncode == -9
                if not killed:
                    outcomes.append(CrashOutcome(
                        site=site, visit=visit, killed=False,
                        recovered=False,
                        detail=(
                            f"child exited {proc.returncode} instead of "
                            f"being killed; stderr: {proc.stderr[-400:]}"
                        ),
                    ))
                    continue
                recovered, detail = verify(directory)
                outcomes.append(CrashOutcome(
                    site=site, visit=visit, killed=True,
                    recovered=recovered, detail=detail,
                ))
            if progress:
                last = outcomes[-1]
                status = "ok" if last.ok else f"FAIL ({last.detail})"
                print(f"  kill at {site} visit {visit}: {status}",
                      flush=True)
    return outcomes


def sweep(
    seed: int = 0,
    sites: tuple[str, ...] | None = None,
    progress: bool = False,
) -> list[CrashOutcome]:
    """Kill the op cycle at every visit of every registered fault point.

    Returns one :class:`CrashOutcome` per ``(site, visit)`` kill; the
    sweep passes when every outcome is ``ok``.
    """
    chosen = sites if sites is not None else STORAGE_FAULT_POINTS
    counts = profile_visits(seed)
    return _run_sweep(
        chosen, counts, seed, "storage", verify_recovery, progress
    )


def rebalance_sweep(
    seed: int = 0,
    sites: tuple[str, ...] | None = None,
    progress: bool = False,
) -> list[CrashOutcome]:
    """Kill a 2 → 3 shard migration at every ``rebalance.*`` visit.

    The sweep passes when, after every kill, resume converges the root
    to the new layout with every name served by exactly one shard.
    """
    chosen = sites if sites is not None else REBALANCE_FAULT_POINTS
    counts = profile_rebalance_visits(seed)
    return _run_sweep(
        chosen, counts, seed, "rebalance",
        lambda directory: verify_rebalance_recovery(directory, seed),
        progress,
    )


def format_outcomes(outcomes: list[CrashOutcome]) -> str:
    failed = [o for o in outcomes if not o.ok]
    lines = [
        f"crash sweep: {len(outcomes)} kill(s) across "
        f"{len({o.site for o in outcomes})} site(s), "
        f"{len(failed)} failure(s)"
    ]
    for outcome in failed:
        lines.append(
            f"  FAIL {outcome.site} visit {outcome.visit}: "
            f"{outcome.detail}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.crashsweep",
        description="SIGKILL a catalog op cycle at every storage fault "
        "point and verify journal replay recovers",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode", choices=("storage", "rebalance"), default="storage",
        help="which protocol to sweep: catalog ops (storage) or a live "
        "2 -> 3 shard migration (rebalance)",
    )
    parser.add_argument(
        "--sites", nargs="*", default=None,
        help="restrict to these fault points (default: all registered)",
    )
    parser.add_argument("--json", action="store_true")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-kill progress"
    )
    # Internal: sacrificial child mode.
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--directory", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--site", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--visit", type=int, default=1,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        if args.directory is None or args.site is None:
            parser.error("--child needs --directory and --site")
        return child_main(
            Path(args.directory), args.site, args.visit, args.seed,
            mode=args.mode,
        )
    sites = tuple(args.sites) if args.sites else None
    run = rebalance_sweep if args.mode == "rebalance" else sweep
    outcomes = run(seed=args.seed, sites=sites, progress=not args.quiet)
    if args.json:
        print(json.dumps([o.as_dict() for o in outcomes], indent=2))
    else:
        print(format_outcomes(outcomes))
    return 0 if all(o.ok for o in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "CHILD_TIMEOUT_S",
    "CrashOutcome",
    "child_main",
    "format_outcomes",
    "profile_rebalance_visits",
    "profile_visits",
    "rebalance_placements",
    "rebalance_sweep",
    "run_cycle",
    "run_rebalance_cycle",
    "sweep",
    "verify_rebalance_recovery",
    "verify_recovery",
]
