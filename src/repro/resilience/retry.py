"""Retry with exponential backoff and seeded jitter.

The catalog wraps its disk I/O in :func:`retry_call` so transient
``OSError`` s (NFS hiccups, antivirus locks, the fault injector's
raise-on-Nth-IO) do not fail a query that would succeed a moment later.
Backoff doubles from ``base_delay_s`` up to ``max_delay_s``; a seeded
jitter fraction decorrelates concurrent retriers deterministically.
Both the sleep function and the jitter RNG are injectable, so tests run
instantly and reproducibly.

Every performed retry is counted in the ambient ``resilience.retries``
metric and recorded as a ``resilience.retry`` event on the ambient
tracer.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry.

    Args:
        attempts: total tries (1 = no retry).
        base_delay_s: backoff before the first retry; doubles per retry.
        max_delay_s: backoff ceiling.
        jitter: fraction of each delay replaced by a uniform draw
            (0 = fully deterministic delays, 1 = full jitter).
        seed: seed for the jitter RNG (``None`` = nondeterministic).
    """

    attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    jitter: float = 0.5
    seed: int | None = 0

    def delay_for(self, retry_index: int, rng: random.Random) -> float:
        """The backoff before the ``retry_index``-th retry (0-based)."""
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** retry_index))
        if self.jitter > 0.0:
            spread = delay * self.jitter
            delay = delay - spread + rng.random() * 2.0 * spread
        return max(0.0, delay)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    give_up_on: tuple[type[BaseException], ...] = (),
    sleep: Callable[[float], None] = time.sleep,
    site: str = "",
) -> T:
    """Call ``fn``, retrying per ``policy`` on matching exceptions.

    ``give_up_on`` wins over ``retry_on`` (e.g. retry ``OSError`` but not
    ``FileNotFoundError``: a vanished file will not reappear).  The last
    exception propagates unchanged once the attempts are exhausted.
    """
    rng = random.Random(policy.seed)
    attempts = max(1, policy.attempts)
    for attempt in range(attempts):
        try:
            return fn()
        except give_up_on:
            raise
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            delay = policy.delay_for(attempt, rng)
            current_registry().counter("resilience.retries").inc()
            current_tracer().event(
                "resilience.retry",
                site=site, attempt=attempt + 1, delay_s=delay,
                error=f"{type(exc).__name__}: {exc}",
            )
            if delay > 0.0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
