"""Resilience: budgets, retries, circuit breaking, fault injection.

This package makes the read/execute path survive the failures a
production catalog actually sees, and makes those failures *testable*:

* :mod:`repro.resilience.budget` — cooperative execution budgets
  (deadline / node evaluations / result objects) carried as ambient
  context and checked at executor node boundaries and in the sampler;
* :mod:`repro.resilience.retry` — retry-with-backoff (seeded jitter,
  injectable sleep) around catalog I/O;
* :mod:`repro.resilience.breaker` — a circuit breaker that trips the
  engine's optimizer/cache layer after repeated failures, degrading to
  the unoptimized, uncached (still correct) path;
* :mod:`repro.resilience.faults` — a deterministic seeded fault
  injector (raise-on-Nth-IO, corrupt-bytes, slow-call) behind named
  hook points in the codec, catalog, and engine caches.

Every degraded path reports into :mod:`repro.obs` (``resilience.*`` and
``db.corrupt_quarantined`` metrics, ``resilience.*`` tracer events), so
observability covers degraded operation too.  See
``docs/RESILIENCE.md``.
"""

from repro.errors import (
    BudgetExceeded,
    CorruptInstanceError,
    FaultError,
    ResilienceError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import Budget, current_budget, use_budget
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    current_injector,
    fault_point,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CircuitBreaker",
    "CorruptInstanceError",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "ResilienceError",
    "RetryPolicy",
    "current_budget",
    "current_injector",
    "fault_point",
    "retry_call",
    "use_budget",
]
