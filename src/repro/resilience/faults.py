"""Deterministic fault injection for chaos testing.

Production code is sprinkled with named *hook points* —
``fault_point("codec.write.replace")`` — that are free no-ops until a
:class:`FaultInjector` is installed (a context manager over a
:class:`ContextVar`, like the ambient tracer).  An installed injector
matches each visited site against its :class:`FaultSpec` s and fires
four kinds of fault, all driven by one seeded RNG so a chaos run is
exactly reproducible from its seed:

* ``"error"`` — raise (default :class:`~repro.errors.FaultError`; pass
  ``exception=OSError`` to simulate I/O failures the retry layer
  handles);
* ``"corrupt"`` — mangle the payload flowing through the hook point
  (one byte is replaced with NUL, which no JSON document survives);
* ``"slow"`` — sleep ``delay_s`` (injectable sleep), for deadline and
  slow-path testing;
* ``"barrier"`` — a *thread-scheduling* fault: the visiting thread
  rendezvouses with up to ``parties - 1`` other threads at the same
  site (bounded by ``delay_s`` seconds, default 50 ms), then all are
  released simultaneously.  Placed at a lock boundary this piles
  threads up and stampedes the lock — the classic race amplifier for
  concurrency chaos suites.
* ``"crash"`` — ``SIGKILL`` the current process on the spot: no atexit
  handlers, no buffers flushed, no locks released.  The honest
  simulation of a power cut for crash-consistency testing; only
  meaningful in a sacrificial subprocess (see
  :mod:`repro.resilience.crashsweep`, which kills a catalog-op cycle at
  every registered storage fault point in turn and asserts recovery).

Hook points in the tree (see ``docs/RESILIENCE.md``):

======================  ====================================================
site                    where
======================  ====================================================
``codec.read.open``     before an instance file is opened
``codec.read``          the file text just read (corruptable payload)
``codec.write.payload`` the serialized text about to be written (payload)
``codec.write.tmp``     after the tmp file is written+fsynced, before
                        ``os.replace`` — an ``error`` here is a crash that
                        never published the new bytes
``codec.write.replace`` after the data file is published, before the
                        checksum sidecar — the torn-sidecar crash window
``codec.write.sidecar`` after the checksum sidecar is published, before
                        the generation bump / journal commit
``journal.begin``       before a journal begin record is appended
``journal.begin.synced`` after the begin record is durable, before the
                        operation's first file step
``journal.commit``      before a journal commit record is appended
``db.generation.bump``  before the generation counter is rewritten
``db.drop.unlink``      before the catalog unlinks an instance file
``db.drop.sidecar``     after the data file is unlinked, before its
                        sidecar is
``db.quarantine.move``  before a corrupt data file is moved to quarantine
``db.quarantine.sidecar`` after the data file moved, before its sidecar
``engine.cache.*.get``  before an engine cache lookup (results / plans)
``engine.cache.*.put``  before an engine cache insert
``lock.engine.cache.*`` the engine cache's internal lock boundary
``lock.db.mutate``      before the catalog takes its in-memory lock for a
                        mutation (register / drop / save / touch)
``lock.db.file``        before the catalog's cross-process file lock is
                        acquired
``lock.breaker``        before the circuit breaker's state lock
======================  ====================================================

The ``lock.*`` family are *scheduling* sites: ``barrier`` and ``slow``
faults there perturb thread interleavings at lock boundaries without
changing semantics, while ``error`` faults still work for testing the
callers' typed-error paths.

The injector itself is thread-safe: spec bookkeeping, the event log and
the seeded RNG live under one internal lock, while sleeps and barrier
waits happen outside it (a delayed thread never blocks the injector).
Note the ambient installation is a :class:`ContextVar`: a thread spawned
*after* ``__enter__`` does not inherit it automatically — run thread
targets via ``contextvars.copy_context().run(...)`` (the PXQL server
does this for every request it dispatches).
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from collections.abc import Callable, Iterator
from contextvars import ContextVar
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from types import TracebackType
from typing import TypeVar

from repro.errors import FaultError

PayloadT = TypeVar("PayloadT", str, bytes, None)

#: Default rendezvous window of a ``barrier`` fault (seconds).
DEFAULT_BARRIER_TIMEOUT_S = 0.05

#: The canonical fault points of the storage layer's multi-file
#: operation sequences, in the order a save/drop/quarantine visits
#: them.  The crash sweep (:mod:`repro.resilience.crashsweep`) SIGKILLs
#: a catalog-op cycle at every one of these — at every *visit* of every
#: one — and asserts that reopen + journal replay recovers.  New
#: storage-sequence fault points must be added here to be swept.
STORAGE_FAULT_POINTS: tuple[str, ...] = (
    "journal.begin",
    "journal.begin.synced",
    "codec.write.tmp",
    "codec.write.replace",
    "codec.write.sidecar",
    "db.generation.bump",
    "journal.commit",
    "db.drop.unlink",
    "db.drop.sidecar",
    "db.quarantine.move",
    "db.quarantine.sidecar",
)

#: The fault points of a shard-layout migration
#: (:mod:`repro.server.rebalance`), in the order the ``Rebalancer``
#: visits them: after the plan record is durable, after each move's
#: begin record, after the copy landed on the destination, after the
#: cutover commit record, after the source delete, before the new
#: manifest is published, and after the terminal ``done`` record.  The
#: rebalance crash sweep (``python -m repro.resilience.crashsweep
#: --mode rebalance``) SIGKILLs a migration at every visit of every one
#: of these and asserts resume leaves each key on exactly one shard.
REBALANCE_FAULT_POINTS: tuple[str, ...] = (
    "rebalance.plan",
    "rebalance.move.begin",
    "rebalance.copy",
    "rebalance.move.commit",
    "rebalance.delete",
    "rebalance.manifest",
    "rebalance.done",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject at matching hook points.

    Args:
        site: a hook-point name or ``fnmatch`` pattern
            (``"engine.cache.*"``).
        kind: ``"error"``, ``"corrupt"``, ``"slow"``, ``"barrier"``, or
            ``"crash"`` (SIGKILL the process — sacrificial subprocesses
            only).
        nth: fire starting with the nth matching visit (1-based).
        times: how many visits fire in total (``None`` = every one from
            ``nth`` on).
        probability: fire each visit with this seeded probability
            instead of the ``nth``/``times`` schedule.
        exception: exception type for ``"error"`` faults
            (default :class:`FaultError`).
        delay_s: sleep duration for ``"slow"`` faults; rendezvous
            timeout for ``"barrier"`` faults (0 = the 50 ms default).
        parties: thread count a ``"barrier"`` fault waits for.
    """

    site: str
    kind: str = "error"
    nth: int = 1
    times: int | None = 1
    probability: float | None = None
    exception: type[Exception] | None = None
    delay_s: float = 0.0
    parties: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("error", "corrupt", "slow", "barrier", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("nth is 1-based")
        if self.parties < 2:
            raise ValueError("a barrier needs at least 2 parties")


@dataclass(frozen=True)
class FaultEvent:
    """A fault that fired: which spec, where, on which visit."""

    site: str
    kind: str
    visit: int


@dataclass
class _SpecState:
    spec: FaultSpec
    seen: int = 0
    fired: int = 0
    barrier: threading.Barrier | None = field(default=None, repr=False)


def _corrupt(payload: str | bytes, rng: random.Random) -> str | bytes:
    """Replace one position with NUL — fatal to JSON and checksums alike."""
    if not payload:
        return "\x00" if isinstance(payload, str) else b"\x00"
    index = rng.randrange(len(payload))
    if isinstance(payload, str):
        return payload[:index] + "\x00" + payload[index + 1:]
    return payload[:index] + b"\x00" + payload[index + 1:]


class FaultInjector:
    """Installs fault specs as the ambient injector for a ``with`` region.

    One injector owns one seeded RNG (shared by probability draws and
    corruption positions) and a log of fired :class:`FaultEvent` s for
    assertions.  Nesting installs shadow the outer injector.  All
    bookkeeping is lock-protected, so one injector may serve many
    threads (delays and barrier waits happen outside the lock).
    """

    def __init__(
        self,
        *specs: FaultSpec,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self.events: list[FaultEvent] = []
        # ContextVar tokens are only valid in the context that set them,
        # so one injector entered by several threads keeps one token
        # stack per thread.
        self._tokens = threading.local()

    def fired(self, site: str | None = None) -> int:
        """How many faults fired (optionally only at ``site`` patterns)."""
        with self._lock:
            events = list(self.events)
        if site is None:
            return len(events)
        return sum(1 for e in events if fnmatchcase(e.site, site))

    def visit_counts(self) -> dict[str, int]:
        """Hook-point visits seen per spec site (profiling aid).

        Install specs with ``times=0`` (never fire) to use the injector
        as a pure visit counter — the crash sweep profiles a clean run
        this way to learn how many kills each site needs.
        """
        with self._lock:
            return {state.spec.site: state.seen for state in self._states}

    # ------------------------------------------------------------------
    def _wait_at_barrier(self, state: _SpecState) -> None:
        """Rendezvous at a spec's barrier (created lazily, self-healing).

        A timed-out (broken) barrier is reset for subsequent visits —
        a missed rendezvous degrades to a short stall, never an error.
        """
        with self._lock:
            barrier = state.barrier
            if barrier is None or barrier.broken:
                timeout = (
                    state.spec.delay_s
                    if state.spec.delay_s > 0
                    else DEFAULT_BARRIER_TIMEOUT_S
                )
                barrier = threading.Barrier(state.spec.parties, timeout=timeout)
                state.barrier = barrier
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass

    def visit(self, site: str, payload: PayloadT) -> PayloadT:
        """Consult every matching spec; used via :func:`fault_point`."""
        delayed: list[_SpecState] = []
        with self._lock:
            for state in self._states:
                spec = state.spec
                if not fnmatchcase(site, spec.site):
                    continue
                state.seen += 1
                if spec.probability is not None:
                    fire = self._rng.random() < spec.probability
                else:
                    fire = state.seen >= spec.nth and (
                        spec.times is None or state.fired < spec.times
                    )
                if not fire:
                    continue
                state.fired += 1
                self.events.append(FaultEvent(site, spec.kind, state.seen))
                if spec.kind == "crash":
                    # A power cut, not an exception: no unwinding, no
                    # flushing, no lock release.  SIGKILL cannot be
                    # caught, so nothing below this line runs.
                    os.kill(os.getpid(), signal.SIGKILL)
                if spec.kind == "error":
                    exception = spec.exception if spec.exception else FaultError
                    raise exception(
                        f"injected fault at {site} (visit {state.seen})"
                    )
                if spec.kind == "corrupt":
                    if payload is not None:
                        payload = _corrupt(payload, self._rng)  # type: ignore[assignment]
                else:  # "slow" or "barrier" — performed outside the lock
                    delayed.append(state)
        for state in delayed:
            if state.spec.kind == "barrier":
                self._wait_at_barrier(state)
            else:
                self._sleep(state.spec.delay_s)
        return payload

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        stack = getattr(self._tokens, "stack", None)
        if stack is None:
            stack = []
            self._tokens.stack = stack
        stack.append(_ACTIVE_INJECTOR.set(self))
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        stack = getattr(self._tokens, "stack", None)
        if stack:
            _ACTIVE_INJECTOR.reset(stack.pop())


_ACTIVE_INJECTOR: ContextVar[FaultInjector | None] = ContextVar(
    "repro_resilience_injector", default=None
)


def current_injector() -> FaultInjector | None:
    """The installed injector, if any."""
    return _ACTIVE_INJECTOR.get()


def fault_point(site: str, payload: PayloadT = None) -> PayloadT:
    """A named hook point: a no-op unless a :class:`FaultInjector` is
    installed, in which case matching faults raise, corrupt the returned
    payload, stall the thread, or rendezvous it with other threads.
    Callers that pass a payload must use the return value in place of it.
    """
    injector = _ACTIVE_INJECTOR.get()
    if injector is None:
        return payload
    return injector.visit(site, payload)


def iter_specs(injector: FaultInjector) -> Iterator[FaultSpec]:
    """The injector's specs (for reporting/debugging)."""
    for state in injector._states:
        yield state.spec
