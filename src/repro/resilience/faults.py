"""Deterministic fault injection for chaos testing.

Production code is sprinkled with named *hook points* —
``fault_point("codec.write.replace")`` — that are free no-ops until a
:class:`FaultInjector` is installed (a context manager over a
:class:`ContextVar`, like the ambient tracer).  An installed injector
matches each visited site against its :class:`FaultSpec` s and fires
three kinds of fault, all driven by one seeded RNG so a chaos run is
exactly reproducible from its seed:

* ``"error"`` — raise (default :class:`~repro.errors.FaultError`; pass
  ``exception=OSError`` to simulate I/O failures the retry layer
  handles);
* ``"corrupt"`` — mangle the payload flowing through the hook point
  (one byte is replaced with NUL, which no JSON document survives);
* ``"slow"`` — sleep ``delay_s`` (injectable sleep), for deadline and
  slow-path testing.

Hook points in the tree (see ``docs/RESILIENCE.md``):

======================  ====================================================
site                    where
======================  ====================================================
``codec.read.open``     before an instance file is opened
``codec.read``          the file text just read (corruptable payload)
``codec.write.payload`` the serialized text about to be written (payload)
``codec.write.tmp``     after the tmp file is written+fsynced, before
                        ``os.replace`` — an ``error`` here is a crash that
                        never published the new bytes
``codec.write.replace`` after the data file is published, before the
                        checksum sidecar — the torn-sidecar crash window
``db.drop.unlink``      before the catalog unlinks an instance file
``engine.cache.*.get``  before an engine cache lookup (results / plans)
``engine.cache.*.put``  before an engine cache insert
======================  ====================================================
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator
from contextvars import ContextVar
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from types import TracebackType
from typing import TypeVar

from repro.errors import FaultError

PayloadT = TypeVar("PayloadT", str, bytes, None)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject at matching hook points.

    Args:
        site: a hook-point name or ``fnmatch`` pattern
            (``"engine.cache.*"``).
        kind: ``"error"``, ``"corrupt"``, or ``"slow"``.
        nth: fire starting with the nth matching visit (1-based).
        times: how many visits fire in total (``None`` = every one from
            ``nth`` on).
        probability: fire each visit with this seeded probability
            instead of the ``nth``/``times`` schedule.
        exception: exception type for ``"error"`` faults
            (default :class:`FaultError`).
        delay_s: sleep duration for ``"slow"`` faults.
    """

    site: str
    kind: str = "error"
    nth: int = 1
    times: int | None = 1
    probability: float | None = None
    exception: type[Exception] | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "corrupt", "slow"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("nth is 1-based")


@dataclass(frozen=True)
class FaultEvent:
    """A fault that fired: which spec, where, on which visit."""

    site: str
    kind: str
    visit: int


@dataclass
class _SpecState:
    spec: FaultSpec
    seen: int = 0
    fired: int = 0


def _corrupt(payload: str | bytes, rng: random.Random) -> str | bytes:
    """Replace one position with NUL — fatal to JSON and checksums alike."""
    if not payload:
        return "\x00" if isinstance(payload, str) else b"\x00"
    index = rng.randrange(len(payload))
    if isinstance(payload, str):
        return payload[:index] + "\x00" + payload[index + 1:]
    return payload[:index] + b"\x00" + payload[index + 1:]


class FaultInjector:
    """Installs fault specs as the ambient injector for a ``with`` region.

    One injector owns one seeded RNG (shared by probability draws and
    corruption positions) and a log of fired :class:`FaultEvent` s for
    assertions.  Nesting installs shadow the outer injector.
    """

    def __init__(
        self,
        *specs: FaultSpec,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = random.Random(seed)
        self._sleep = sleep
        self.events: list[FaultEvent] = []
        self._token: object | None = None

    def fired(self, site: str | None = None) -> int:
        """How many faults fired (optionally only at ``site`` patterns)."""
        if site is None:
            return len(self.events)
        return sum(1 for e in self.events if fnmatchcase(e.site, site))

    # ------------------------------------------------------------------
    def visit(self, site: str, payload: PayloadT) -> PayloadT:
        """Consult every matching spec; used via :func:`fault_point`."""
        for state in self._states:
            spec = state.spec
            if not fnmatchcase(site, spec.site):
                continue
            state.seen += 1
            if spec.probability is not None:
                fire = self._rng.random() < spec.probability
            else:
                fire = state.seen >= spec.nth and (
                    spec.times is None or state.fired < spec.times
                )
            if not fire:
                continue
            state.fired += 1
            self.events.append(FaultEvent(site, spec.kind, state.seen))
            if spec.kind == "error":
                exception = spec.exception if spec.exception else FaultError
                raise exception(
                    f"injected fault at {site} (visit {state.seen})"
                )
            if spec.kind == "corrupt":
                if payload is not None:
                    payload = _corrupt(payload, self._rng)  # type: ignore[assignment]
            else:  # "slow"
                self._sleep(spec.delay_s)
        return payload

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        self._token = _ACTIVE_INJECTOR.set(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._token is not None:
            _ACTIVE_INJECTOR.reset(self._token)  # type: ignore[arg-type]
            self._token = None


_ACTIVE_INJECTOR: ContextVar[FaultInjector | None] = ContextVar(
    "repro_resilience_injector", default=None
)


def current_injector() -> FaultInjector | None:
    """The installed injector, if any."""
    return _ACTIVE_INJECTOR.get()


def fault_point(site: str, payload: PayloadT = None) -> PayloadT:
    """A named hook point: a no-op unless a :class:`FaultInjector` is
    installed, in which case matching faults raise, corrupt the returned
    payload, or sleep.  Callers that pass a payload must use the return
    value in place of it.
    """
    injector = _ACTIVE_INJECTOR.get()
    if injector is None:
        return payload
    return injector.visit(site, payload)


def iter_specs(injector: FaultInjector) -> Iterator[FaultSpec]:
    """The injector's specs (for reporting/debugging)."""
    for state in injector._states:
        yield state.spec
