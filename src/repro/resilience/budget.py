"""Cooperative execution budgets.

A :class:`Budget` bounds one execution region three ways: a wall-clock
*deadline*, a maximum number of *plan-node evaluations*, and a maximum
number of *result objects* materialized.  Budgets are cooperative — the
executor checks at plan-node boundaries, the sampler between drawn
worlds — so a running operator finishes its current unit of work before
:class:`~repro.errors.BudgetExceeded` surfaces; the acceptance bound is
"stops within one node boundary", not preemption.

The active budget travels as ambient context (a :class:`ContextVar`),
exactly like the tracer and the metrics registry in :mod:`repro.obs`:
:func:`use_budget` activates one for a ``with`` region and
:func:`current_budget` reads it from anywhere beneath.  PXQL's
``SET TIMEOUT <s>`` / ``WITH TIMEOUT <s>`` build deadline-only budgets
this way around each statement.

The clock is injectable so tests can drive deadlines deterministically.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.errors import BudgetExceeded
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer


@dataclass
class Budget:
    """Limits for one execution region; any subset may be set.

    Args:
        deadline_s: wall-clock seconds from :meth:`start` (``None`` =
            unlimited).
        max_node_evals: total plan-node evaluations allowed.
        max_result_objects: total objects across produced instances.
        clock: monotonic-seconds source (injectable for tests).
    """

    deadline_s: float | None = None
    max_node_evals: int | None = None
    max_result_objects: int | None = None
    clock: Callable[[], float] = time.monotonic
    node_evals: int = field(default=0, init=False)
    result_objects: int = field(default=0, init=False)
    started_at: float | None = field(default=None, init=False)

    def start(self) -> "Budget":
        """Arm the deadline clock (idempotent); returns ``self``."""
        if self.started_at is None:
            self.started_at = self.clock()
        return self

    @property
    def elapsed_s(self) -> float:
        """Seconds since :meth:`start` (0 when not started)."""
        if self.started_at is None:
            return 0.0
        return self.clock() - self.started_at

    @property
    def remaining_s(self) -> float | None:
        """Seconds until the deadline (``None`` when unlimited)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed_s

    def _fail(self, limit: str, where: str, message: str) -> None:
        current_registry().counter("budget.exceeded").inc()
        current_tracer().event("budget.exceeded", limit=limit, where=where)
        raise BudgetExceeded(message, limit=limit, where=where)

    def check_deadline(self, where: str = "") -> None:
        """Raise :class:`BudgetExceeded` when past the deadline."""
        remaining = self.remaining_s
        if remaining is not None and remaining < 0:
            self._fail(
                "deadline", where,
                f"deadline of {self.deadline_s:g}s exceeded"
                f"{f' at {where}' if where else ''} "
                f"(elapsed {self.elapsed_s:.3g}s)",
            )

    def tick_node(self, label: str = "") -> None:
        """Charge one plan-node evaluation and check every limit."""
        self.start()
        self.node_evals += 1
        if (
            self.max_node_evals is not None
            and self.node_evals > self.max_node_evals
        ):
            self._fail(
                "node_evals", label,
                f"plan-node evaluation limit of {self.max_node_evals} "
                f"exceeded{f' at {label}' if label else ''}",
            )
        self.check_deadline(label)

    def charge_objects(self, count: int, where: str = "") -> None:
        """Charge ``count`` materialized result objects."""
        self.result_objects += count
        if (
            self.max_result_objects is not None
            and self.result_objects > self.max_result_objects
        ):
            self._fail(
                "result_objects", where,
                f"result-object limit of {self.max_result_objects} "
                f"exceeded{f' at {where}' if where else ''} "
                f"({self.result_objects} materialized)",
            )


_ACTIVE_BUDGET: ContextVar[Budget | None] = ContextVar(
    "repro_resilience_budget", default=None
)


def current_budget() -> Budget | None:
    """The ambient budget, if one is active (``None`` = unlimited)."""
    return _ACTIVE_BUDGET.get()


@contextmanager
def use_budget(budget: Budget) -> Iterator[Budget]:
    """Arm ``budget`` and make it ambient for the ``with`` region."""
    budget.start()
    token = _ACTIVE_BUDGET.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE_BUDGET.reset(token)
