"""A circuit breaker for degradable engine layers.

The engine's rewrite-optimizer/cache layer is an *accelerator*: every
query has a correct slow path without it (execute the unoptimized plan,
skip the caches).  A :class:`CircuitBreaker` guards such a layer the
classical way:

* **closed** — calls flow; failures are counted, successes reset the
  count;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker *trips*: :meth:`allow` answers ``False`` and the engine takes
  the degraded path without touching the faulty layer;
* **half-open** — once ``reset_after_s`` has elapsed, exactly **one**
  probe is let through; the probe's success closes the breaker, its
  failure re-trips it immediately.  Further :meth:`allow` calls while
  the probe is in flight answer ``False`` — under concurrency a
  thundering herd must not stampede a layer that just recovered.  A
  probe whose outcome is never recorded (the prober died) expires after
  another ``reset_after_s``, so the breaker can never wedge.

All state transitions happen under an internal lock, so concurrent
callers see a consistent state and the single-probe guarantee holds
under any interleaving.  Transitions land in the ambient metrics
(``resilience.breaker_trips`` counter, ``resilience.breaker_open``
gauge) and as ``resilience.breaker`` tracer events.  The clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer
from repro.resilience.faults import fault_point

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after repeated failures; probe again after a cool-down.

    Thread-safe: :meth:`allow`, :meth:`record_failure` and
    :meth:`record_success` may be called from any thread; in the
    half-open state exactly one caller wins the probe slot.
    """

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.clock = clock
        self.state = CLOSED
        self.failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._lock = threading.RLock()
        self._probe_in_flight = False
        self._probe_at = 0.0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        current_tracer().event(
            "resilience.breaker", name=self.name, state=state
        )
        current_registry().gauge(f"resilience.breaker_open.{self.name}").set(
            1.0 if state == OPEN else 0.0
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now (may start a probe).

        In the half-open state only the first caller is granted the
        probe; everyone else is told ``False`` until the probe's outcome
        is recorded (or the probe expires after ``reset_after_s``).
        """
        fault_point("lock.breaker")
        with self._lock:
            if self.state == CLOSED:
                return True
            now = self.clock()
            if self.state == OPEN:
                if now - self._opened_at < self.reset_after_s:
                    return False
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                self._probe_at = now
                return True
            # HALF_OPEN: one probe at a time, with crash expiry.
            if (
                self._probe_in_flight
                and now - self._probe_at < self.reset_after_s
            ):
                return False
            self._probe_in_flight = True
            self._probe_at = now
            return True

    def record_failure(self) -> None:
        """Count a failure; trip when the threshold is reached."""
        with self._lock:
            self._probe_in_flight = False
            self.failures += 1
            if (
                self.state == HALF_OPEN
                or self.failures >= self.failure_threshold
            ):
                self.trips += 1
                self._opened_at = self.clock()
                current_registry().counter("resilience.breaker_trips").inc()
                self._transition(OPEN)

    def record_success(self) -> None:
        """A successful call closes the breaker and clears the count."""
        with self._lock:
            self._probe_in_flight = False
            self.failures = 0
            self._transition(CLOSED)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failures={self.failures}/{self.failure_threshold}, "
            f"trips={self.trips})"
        )
