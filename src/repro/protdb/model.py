"""The ProTDB baseline model (Nierman & Jagadish, VLDB 2002).

ProTDB attaches an *independent* existence probability to each individual
child of a node and requires the dependency structure to be a tree.  The
paper's related-work section argues PXML strictly subsumes it; the
translation in :mod:`repro.protdb.translate` makes that claim executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DistributionError, ModelError
from repro.semistructured.graph import Label, Oid
from repro.semistructured.types import LeafType, Value


@dataclass
class ProTDBNode:
    """A ProTDB tree node.

    Attributes:
        oid: the node's object id (unique within the instance).
        children: ``(label, child, probability)`` triples; each child
            exists independently with its probability, conditional on this
            node existing.
        leaf_type: the type of a leaf node (optional).
        value: the certain value of a leaf node (ProTDB leaves carry
            plain values; distributions over values are a PXML extension).
    """

    oid: Oid
    children: list[tuple[Label, "ProTDBNode", float]] = field(default_factory=list)
    leaf_type: LeafType | None = None
    value: Value | None = None

    def add_child(
        self, label: Label, child: "ProTDBNode", probability: float
    ) -> "ProTDBNode":
        """Attach a child with its independent existence probability."""
        if not 0.0 <= probability <= 1.0:
            raise DistributionError(
                f"child probability must be in [0, 1], got {probability!r}"
            )
        self.children.append((label, child, probability))
        return child

    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children


class ProTDBInstance:
    """A ProTDB probabilistic tree database."""

    def __init__(self, root: ProTDBNode) -> None:
        self.root = root
        self._check_tree()

    def _check_tree(self) -> None:
        seen: set[Oid] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.oid in seen:
                raise ModelError(
                    f"object id {node.oid!r} appears twice: ProTDB requires a tree"
                )
            seen.add(node.oid)
            for _, child, _ in node.children:
                stack.append(child)
        self._oids = seen

    @property
    def objects(self) -> frozenset[Oid]:
        """All object ids in the tree."""
        return frozenset(self._oids)

    def nodes(self) -> list[ProTDBNode]:
        """All nodes in pre-order."""
        out: list[ProTDBNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            for _, child, _ in reversed(node.children):
                stack.append(child)
        return out

    def __len__(self) -> int:
        return len(self._oids)

    def __repr__(self) -> str:
        return f"ProTDBInstance(root={self.root.oid!r}, |V|={len(self)})"
