"""The ProTDB baseline model and its translation into PXML (Section 8)."""

from repro.protdb.model import ProTDBInstance, ProTDBNode
from repro.protdb.patterns import (
    PatternNode,
    pattern_probability,
    world_has_witness,
)
from repro.protdb.translate import (
    iter_protdb_worlds,
    protdb_world_distribution,
    to_pxml,
)

__all__ = [
    "PatternNode",
    "ProTDBInstance",
    "ProTDBNode",
    "iter_protdb_worlds",
    "pattern_probability",
    "protdb_world_distribution",
    "to_pxml",
    "world_has_witness",
]
