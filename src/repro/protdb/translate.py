"""Translating ProTDB into PXML (the subsumption of Section 8).

Each ProTDB node's independent per-child probabilities become an
:class:`repro.core.compact.IndependentOPF` over its children; leaves keep
their types and (certain) values.  The induced distribution over possible
worlds is identical, which ``tests/test_protdb.py`` verifies by comparing
against a direct enumeration of the ProTDB worlds.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import chain as iter_chain
from itertools import combinations

from repro.core.compact import IndependentOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.protdb.model import ProTDBInstance, ProTDBNode
from repro.semistructured.instance import SemistructuredInstance


def to_pxml(instance: ProTDBInstance) -> ProbabilisticInstance:
    """The PXML probabilistic instance with the same world distribution."""
    weak = WeakInstance(instance.root.oid)
    interp = LocalInterpretation()
    for node in instance.nodes():
        weak.add_object(node.oid)
        if node.is_leaf():
            if node.leaf_type is not None:
                weak.set_type(node.oid, node.leaf_type)
            if node.value is not None:
                weak.set_val(node.oid, node.value)
            continue
        by_label: dict[str, set[str]] = {}
        inclusion: dict[str, float] = {}
        for label, child, probability in node.children:
            by_label.setdefault(label, set()).add(child.oid)
            inclusion[child.oid] = probability
        for label, children in by_label.items():
            weak.set_lch(node.oid, label, children)
        interp.set_opf(node.oid, IndependentOPF(inclusion))
    return ProbabilisticInstance(weak, interp)


def iter_protdb_worlds(
    instance: ProTDBInstance,
) -> Iterator[tuple[SemistructuredInstance, float]]:
    """Enumerate ProTDB's possible worlds directly (no PXML involved).

    Each present node's children flip independently; descendants of absent
    children contribute no factors.  The recursion keeps a frontier of
    present nodes whose child flips are still pending.
    """

    def annotate(world: SemistructuredInstance, node: ProTDBNode) -> None:
        if node.leaf_type is not None:
            world.set_type(node.oid, node.leaf_type)
        if node.value is not None:
            world.set_value(node.oid, node.value)

    def rec(
        frontier: list[ProTDBNode], world: SemistructuredInstance, probability: float
    ) -> Iterator[tuple[SemistructuredInstance, float]]:
        if probability == 0.0:
            return
        if not frontier:
            yield world.copy(), probability
            return
        node, rest = frontier[0], frontier[1:]
        if node.is_leaf():
            yield from rec(rest, world, probability)
            return
        for subset, p_subset in _child_subsets(node):
            added: list[ProTDBNode] = []
            for label, child, _ in node.children:
                if child.oid in subset:
                    world.add_edge(node.oid, child.oid, label)
                    annotate(world, child)
                    added.append(child)
            yield from rec(rest + added, world, probability * p_subset)
            for child in added:
                world.remove_object(child.oid)

    root_world = SemistructuredInstance(instance.root.oid)
    annotate(root_world, instance.root)
    yield from rec([instance.root], root_world, 1.0)


def _child_subsets(node: ProTDBNode) -> list[tuple[frozenset[str], float]]:
    """All subsets of a node's children with their joint probabilities."""
    ids = [child.oid for _, child, _ in node.children]
    probs = {child.oid: p for _, child, p in node.children}
    out: list[tuple[frozenset[str], float]] = []
    for subset in iter_chain.from_iterable(
        combinations(ids, size) for size in range(len(ids) + 1)
    ):
        chosen = frozenset(subset)
        probability = 1.0
        for oid in ids:
            probability *= probs[oid] if oid in chosen else 1.0 - probs[oid]
        if probability > 0.0:
            out.append((chosen, probability))
    return out


def protdb_world_distribution(
    instance: ProTDBInstance,
) -> dict[SemistructuredInstance, float]:
    """``{world: probability}`` for a ProTDB instance, identical worlds
    merged."""
    distribution: dict[SemistructuredInstance, float] = {}
    for world, probability in iter_protdb_worlds(instance):
        distribution[world] = distribution.get(world, 0.0) + probability
    return distribution
