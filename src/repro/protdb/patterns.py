"""Pattern-tree (conjunctive) queries, ProTDB-style, over PXML instances.

ProTDB's query primitive matches a *query pattern tree* against the
probabilistic tree; the paper's related-work section contrasts it with
PXML's path-expression algebra ("there is no direct mapping").  Having
both sides executable makes the comparison concrete: this module
evaluates pattern trees over our probabilistic instances.

A :class:`PatternNode` constrains the incoming edge label, optionally the
leaf value, and carries sub-patterns.  A *witness* in a world is a
homomorphism: the pattern root maps to the instance root and every
pattern child maps to some child of its parent's image reached by an
edge with the required label (two pattern siblings may map to the same
object).  :func:`pattern_probability` computes ``P(a witness exists)``
exactly on tree-structured instances with a bottom-up dynamic program —
for every object and every *set* of pattern nodes it may simultaneously
serve, the probability its subtree embeds them all; a coverage DP over
each child set combines the branches (exponential only in the pattern
width).  :func:`world_has_witness` provides the enumeration reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain as iter_chain
from itertools import combinations

from repro.core.instance import ProbabilisticInstance
from repro.errors import NonTreeInstanceError, QueryError
from repro.semistructured.graph import Label, Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import Value


@dataclass(frozen=True)
class PatternNode:
    """One node of a query pattern tree.

    Attributes:
        label: the label of the edge into this node (ignored at the
            pattern root).
        value: an optional required leaf value.
        children: the sub-patterns, all of which must embed.
    """

    label: Label | None = None
    value: Value | None = None
    children: tuple["PatternNode", ...] = field(default_factory=tuple)

    @staticmethod
    def root(*children: "PatternNode") -> "PatternNode":
        """The pattern root (anchored at the instance root)."""
        return PatternNode(label=None, children=tuple(children))

    @staticmethod
    def child(
        label: Label, *children: "PatternNode", value: Value | None = None
    ) -> "PatternNode":
        """A labeled pattern node."""
        if value is not None and children:
            raise QueryError("a value-constrained pattern node cannot have children")
        return PatternNode(label=label, value=value, children=tuple(children))


# ----------------------------------------------------------------------
# Witness checking in a concrete world (the enumeration reference)
# ----------------------------------------------------------------------
def world_has_witness(world: SemistructuredInstance, pattern: PatternNode) -> bool:
    """Whether a world admits a homomorphic embedding of ``pattern``."""

    def embeds(oid: Oid, node: PatternNode) -> bool:
        if node.value is not None and world.val(oid) != node.value:
            return False
        for sub in node.children:
            candidates = world.lch(oid, sub.label)
            if not any(embeds(child, sub) for child in candidates):
                return False
        return True

    return embeds(world.root, pattern)


# ----------------------------------------------------------------------
# Exact probability on tree-structured instances
# ----------------------------------------------------------------------
def pattern_probability(pi: ProbabilisticInstance, pattern: PatternNode) -> float:
    """``P(some witness of the pattern exists)`` — exact on trees."""
    if not pi.weak.graph().is_tree(pi.root):
        raise NonTreeInstanceError(
            "pattern probabilities require a tree-structured instance; use "
            "enumeration or sampling on DAGs"
        )
    return _embed_all(pi, pi.root, (pattern,), {})


def _embed_all(
    pi: ProbabilisticInstance,
    oid: Oid,
    nodes: tuple[PatternNode, ...],
    cache: dict,
) -> float:
    """``P(oid's subtree simultaneously embeds every pattern in nodes)``."""
    key = (oid, nodes)
    if key in cache:
        return cache[key]

    # Value constraints: all constrained nodes must agree, and the leaf's
    # VPF supplies the probability (structure and value are independent).
    required_values = {n.value for n in nodes if n.value is not None}
    value_factor = 1.0
    if required_values:
        if len(required_values) > 1:
            cache[key] = 0.0
            return 0.0
        vpf = pi.effective_vpf(oid)
        if vpf is None:
            cache[key] = 0.0
            return 0.0
        value_factor = vpf.prob(next(iter(required_values)))
        if value_factor == 0.0:
            cache[key] = 0.0
            return 0.0

    needed = tuple(
        sub for node in nodes for sub in node.children
    )
    if not needed:
        cache[key] = value_factor
        return value_factor
    opf = pi.opf(oid)
    if opf is None:
        cache[key] = 0.0  # a leaf cannot supply pattern children
        return 0.0

    total = 0.0
    for child_set, p_children in opf.support():
        total += p_children * _cover_probability(pi, oid, child_set, needed, cache)
    result = value_factor * total
    cache[key] = result
    return result


def _cover_probability(
    pi: ProbabilisticInstance,
    parent: Oid,
    child_set: frozenset[Oid],
    needed: tuple[PatternNode, ...],
    cache: dict,
) -> float:
    """``P(every needed pattern child embeds somewhere in child_set)``.

    Coverage DP: process the children one by one, tracking the subset of
    ``needed`` already covered.  Each child contributes an *exact* joint
    indicator distribution over the pattern nodes it could serve,
    recovered from the "embeds all of T" probabilities by
    inclusion-exclusion on the subset lattice.
    """
    indices = range(len(needed))
    full = frozenset(indices)
    states: dict[frozenset[int], float] = {frozenset(): 1.0}
    for child in sorted(child_set):
        label = pi.weak.label_of_child(parent, child)
        applicable = [i for i in indices if needed[i].label == label]
        if not applicable:
            continue
        exact = _exact_cover_distribution(pi, child, needed, applicable, cache)
        new_states: dict[frozenset[int], float] = {}
        for covered, p_state in states.items():
            for subset, p_subset in exact.items():
                key = covered | subset
                new_states[key] = new_states.get(key, 0.0) + p_state * p_subset
        states = new_states
    return states.get(full, 0.0)


def estimate_pattern_probability(
    pi: ProbabilisticInstance,
    pattern: PatternNode,
    samples: int = 1000,
    seed: int | None = None,
):
    """Monte-Carlo ``P(witness exists)`` — works on DAG instances too.

    Returns a :class:`repro.semantics.sampling.Estimate`.
    """
    from repro.semantics.sampling import estimate_probability

    return estimate_probability(
        pi, lambda world: world_has_witness(world, pattern), samples, seed
    )


def _exact_cover_distribution(
    pi: ProbabilisticInstance,
    child: Oid,
    needed: tuple[PatternNode, ...],
    applicable: list[int],
    cache: dict,
) -> dict[frozenset[int], float]:
    """The distribution of *exactly which* applicable patterns the child's
    subtree embeds, from the joint "embeds all of T" probabilities."""
    subsets = [
        frozenset(combo)
        for combo in iter_chain.from_iterable(
            combinations(applicable, size)
            for size in range(len(applicable) + 1)
        )
    ]
    all_of = {
        subset: _embed_all(
            pi, child, tuple(needed[i] for i in sorted(subset)), cache
        )
        for subset in subsets
    }
    exact: dict[frozenset[int], float] = {}
    for subset in sorted(subsets, key=len, reverse=True):
        mass = all_of[subset]
        for larger, p_larger in exact.items():
            if subset < larger:
                mass -= p_larger
        exact[subset] = max(mass, 0.0)
    return exact
