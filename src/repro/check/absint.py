"""Abstract interpretation of plans over probability/cardinality intervals.

:func:`certify_plan` runs an abstract interpreter over the engine's
logical plan IR with two lattice domains:

* :class:`ProbInterval` — a closed subinterval of ``[0, 1]`` bounding a
  probability;
* :class:`CardInterval` — an integer interval (with ``None`` as +inf)
  bounding an object / match count.

Each plan operator has a transfer function: scans seed the domains from
the catalog (exact object counts) and the strong dataguide's per-path /
per-object existence intervals (:mod:`repro.check.dataguide`); ancestor
projection narrows cardinalities from the structural match; selection
multiplies chain-occurrence bounds with exact VALUE / CARD clause
factors and compares probability guards against the resulting interval;
product composes; query nodes map exists / count / point / dist onto
certified output bounds.  The result is a :class:`PlanCertificate`
carrying one :class:`NodeFacts` per plan node (pre-order, mirroring
:func:`repro.engine.plan.walk`) plus whole-plan conclusions: a numeric
result interval, a bound on the ``DIST`` support, and an *emptiness
proof* when the result is a statically known constant.

Soundness discipline:

* the guide is **ignored when truncated** — a truncated guide's
  per-object bounds may miss contributions from unexpanded parents;
* every widening is toward ``[0, 1]`` / ``[lo, +inf]``: missing OPFs,
  unknown shapes and non-tree instances lose precision, never soundness;
* a certificate is only marked :attr:`~PlanCertificate.skippable` when
  the plan provably cannot raise (no SELECT whose guard or normalization
  can fail, no PRODUCT whose operands can collide) *and* the certified
  result is one of the engine's constant skip values.

:func:`absint_diagnostics` turns a certificate into ``PX26x``
diagnostics and :func:`verify_execution` checks an actual execution
against it — the runtime half of the contract: every observed
cardinality and probability must lie inside its predicted interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

from repro.check.dataguide import DataGuide, DataGuideCache
from repro.check.diagnostics import WARNING, Diagnostic
from repro.core.instance import ProbabilisticInstance
from repro.engine.plan import (
    IndexedPathStepNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    walk,
)
from repro.semistructured.graph import EdgeLabeledGraph, Oid
from repro.semistructured.paths import PathExpression, PathMatch, match_path

#: Slack applied when comparing guard bounds against interval endpoints,
#: mirroring the engine's probability tolerance.
EPSILON = 1e-9


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbInterval:
    """A closed probability interval ``[lo, hi]`` inside ``[0, 1]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise ValueError(f"malformed probability interval [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, p: float) -> "ProbInterval":
        clamped = min(1.0, max(0.0, p))
        return cls(clamped, clamped)

    @classmethod
    def top(cls) -> "ProbInterval":
        return cls(0.0, 1.0)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, p: float, tol: float = 0.0) -> bool:
        return self.lo - tol <= p <= self.hi + tol

    def times(self, other: "ProbInterval") -> "ProbInterval":
        return ProbInterval(self.lo * other.lo, min(1.0, self.hi * other.hi))

    def hull(self, other: "ProbInterval") -> "ProbInterval":
        return ProbInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __str__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


#: The zero-probability point — the interval behind every emptiness proof.
ZERO = ProbInterval(0.0, 0.0)
ONE = ProbInterval(1.0, 1.0)


@dataclass(frozen=True)
class CardInterval:
    """An integer interval ``[lo, hi]``; ``hi=None`` means unbounded."""

    lo: int
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo < 0 or (self.hi is not None and self.hi < self.lo):
            raise ValueError(f"malformed cardinality interval [{self.lo}, {self.hi}]")

    @classmethod
    def exactly(cls, n: int) -> "CardInterval":
        return cls(n, n)

    @classmethod
    def top(cls) -> "CardInterval":
        return cls(0, None)

    @classmethod
    def at_most(cls, n: int) -> "CardInterval":
        return cls(0, n)

    @property
    def is_exact(self) -> bool:
        return self.hi is not None and self.lo == self.hi

    def is_tight(self) -> bool:
        """Narrow enough for the cost model to trust the midpoint."""
        if self.hi is None:
            return False
        return self.hi - self.lo <= max(1, self.lo // 8)

    @property
    def midpoint(self) -> int:
        if self.hi is None:
            return self.lo
        return (self.lo + self.hi) // 2

    def contains(self, n: int) -> bool:
        return self.lo <= n and (self.hi is None or n <= self.hi)

    def plus(self, other: "CardInterval", shift: int = 0) -> "CardInterval":
        hi = (
            None if self.hi is None or other.hi is None
            else max(0, self.hi + other.hi + shift)
        )
        return CardInterval(max(0, self.lo + other.lo + shift), hi)

    def __str__(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"


# ----------------------------------------------------------------------
# Facts and certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeFacts:
    """The abstract value the interpreter inferred for one plan node.

    ``kind`` is ``"instance"`` for instance-producing nodes (scan,
    project, select, product, indexed ancestor projection) and
    ``"query"`` for numeric ones; ``card`` bounds the output object
    count (instance nodes) or the structural match count (query nodes);
    ``prob`` bounds the node's characteristic probability (existence of
    the navigated path, a selection's condition probability, a query's
    clamped result); ``condition`` is set on selections only and repeats
    the condition-probability interval the runtime must land in.
    """

    label: str
    kind: str                        # "instance" | "query"
    card: CardInterval
    prob: ProbInterval
    condition: ProbInterval | None = None
    exact: bool = False


@dataclass(frozen=True)
class GuardFinding:
    """A statically decided probability guard on one selection node."""

    label: str
    path: PathExpression
    oid: str
    op: str
    bound: float
    condition: ProbInterval
    verdict: str                     # "always" | "never" | "unsatisfiable"


@dataclass(frozen=True)
class PlanCertificate:
    """What the abstract interpreter proved about one prepared plan.

    ``facts`` mirrors :func:`repro.engine.plan.walk` (pre-order, one
    entry per node).  ``result`` bounds the numeric result of a query
    root (for ``dist`` it bounds ``P(count >= 1)``; ``support`` then
    bounds the match counts carrying mass).  ``empty`` asserts the
    result is the kind's constant skip value; ``skippable`` additionally
    asserts executing the plan cannot raise, so the engine may answer
    from the certificate alone.
    """

    facts: tuple[NodeFacts, ...]
    kind: str | None = None
    result: tuple[float, float] | None = None
    support: CardInterval | None = None
    empty: bool = False
    skippable: bool = False
    guards: tuple[GuardFinding, ...] = ()
    zero_conditions: tuple[tuple[str, str, str], ...] = ()

    @property
    def root(self) -> NodeFacts:
        return self.facts[0]


# ----------------------------------------------------------------------
# Abstract state
# ----------------------------------------------------------------------
@dataclass
class _State:
    """Abstract value + residual shape knowledge for one sub-plan.

    ``pi`` / ``guide`` are only present directly above a scan (the same
    precision cliff the plan checker has); ``graph`` survives ancestor
    projection as the exact result structure.
    """

    card: CardInterval
    prob: ProbInterval
    exact: bool
    condition: ProbInterval | None = None
    result: tuple[float, float] | None = None
    root: Oid | None = None
    graph: EdgeLabeledGraph | None = None
    pi: ProbabilisticInstance | None = None
    guide: DataGuide | None = None
    tree: bool = False


def _opaque_instance() -> _State:
    return _State(card=CardInterval.top(), prob=ProbInterval.top(), exact=False)


def _match_on(state: _State, path: PathExpression) -> PathMatch | None:
    if state.graph is None:
        return None
    return match_path(state.graph, path)


def _guide_targets(state: _State, path: PathExpression) -> frozenset[Oid] | None:
    if state.guide is None or not state.guide.covers(path):
        return None
    return state.guide.targets(path.labels)


class _AbstractInterpreter:
    """Bottom-up interval propagation over one plan tree."""

    def __init__(self, database: Any, guides: DataGuideCache) -> None:
        self.database = database
        self.guides = guides
        self.states: dict[int, _State] = {}
        self.guards: list[GuardFinding] = []
        self.zero_conditions: list[tuple[str, str, str]] = []
        self.can_raise = False

    # ------------------------------------------------------------------
    def state_of(self, node: PlanNode) -> _State:
        cached = self.states.get(id(node))
        if cached is not None:
            return cached
        state = self._transfer(node)
        self.states[id(node)] = state
        return state

    def _transfer(self, node: PlanNode) -> _State:
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, ProjectNode):
            return self._project(node.kind, node.path, self.state_of(node.child))
        if isinstance(node, SelectNode):
            return self._select(node, self.state_of(node.child))
        if isinstance(node, ProductNode):
            self.can_raise = True      # operand collision raises AlgebraError
            return self._product(self.state_of(node.left), self.state_of(node.right))
        if isinstance(node, QueryNode):
            return self._query(node.kind, node.path, node.oid, node.chain,
                               self.state_of(node.child))
        if isinstance(node, IndexedPathStepNode):
            child = self.state_of(node.child)
            if node.op == "project-ancestor":
                return self._project("ancestor", node.path, child)
            return self._query(node.op, node.path, node.oid, None, child)
        for unknown_child in node.children():
            self.state_of(unknown_child)
        self.can_raise = True
        return _opaque_instance()

    # ------------------------------------------------------------------
    def _scan(self, node: ScanNode) -> _State:
        try:
            pi = self.database.get(node.name)
        except Exception:
            self.can_raise = True
            return _opaque_instance()
        guide: DataGuide | None
        try:
            guide = self.guides.get(self.database, node.name)
        except Exception:
            guide = None
        if guide is not None and guide.truncated:
            # A truncated guide's per-object bounds may be missing
            # contributions from unexpanded parents: unsound, drop it.
            guide = None
        graph = pi.weak.graph()
        tree = guide.is_tree if guide is not None else graph.is_tree(pi.root)
        return _State(
            card=CardInterval.exactly(len(pi)),
            prob=ONE,
            exact=True,
            root=pi.root,
            graph=graph,
            pi=pi,
            guide=guide,
            tree=tree,
        )

    # ------------------------------------------------------------------
    def _project(self, kind: str, path: PathExpression, child: _State) -> _State:
        if kind != "ancestor":
            # Descendant / single projections re-root and re-label; only
            # the size bound survives (the result always has a root).
            return _State(
                card=CardInterval(1, child.card.hi),
                prob=ProbInterval.top(),
                exact=False,
            )
        match = _match_on(child, path)
        if match is None:
            return _State(
                card=CardInterval(1, child.card.hi),
                prob=ProbInterval.top(),
                exact=False,
            )
        if match.is_empty:
            # The result is the bare root, deterministically.
            graph = EdgeLabeledGraph()
            if child.root is not None:
                graph.add_vertex(child.root)
            return _State(
                card=CardInterval.exactly(1), prob=ONE, exact=True,
                root=child.root, graph=graph, tree=True,
            )
        kept = set(match.kept_objects())
        if child.root is not None:
            kept.add(child.root)
        # The projection's weak structure is exactly the matched chains
        # on trees; on DAGs (or when the guide prunes zero-probability
        # targets the structural match still contains) only the upper
        # bound is safe.
        exact_structure = child.tree
        card = (
            CardInterval.exactly(len(kept)) if exact_structure
            else CardInterval(1, len(kept))
        )
        prob = ProbInterval.top()
        if child.guide is not None and child.guide.covers(path):
            lo, hi = child.guide.interval(path.labels)
            prob = ProbInterval(lo, min(1.0, hi))
        assert child.graph is not None
        graph = EdgeLabeledGraph()
        for oid in kept:
            graph.add_vertex(oid)
        for src, dst in match.edges:
            graph.add_edge(src, dst, child.graph.label(src, dst))
        return _State(
            card=card, prob=prob, exact=exact_structure and child.exact,
            root=child.root, graph=graph, tree=child.tree,
        )

    # ------------------------------------------------------------------
    def _select(self, node: SelectNode, child: _State) -> _State:
        self.can_raise = True          # zero condition / failed guard raises
        condition = self._condition_interval(node, child)
        if node.prob_op is not None and node.prob_bound is not None:
            self._judge_guard(node, condition)
        if condition.hi <= EPSILON:
            self.zero_conditions.append(
                (node.label(), str(node.path), node.oid)
            )
        # Selection conditions the distributions in place: the weak
        # structure (hence the object count) is exactly the child's.
        return _State(
            card=child.card,
            prob=condition,
            exact=child.exact and condition.is_point,
            condition=condition,
            root=child.root,
            graph=child.graph,
            tree=child.tree,
        )

    def _condition_interval(self, node: SelectNode, child: _State) -> ProbInterval:
        match = _match_on(child, node.path)
        if match is not None and node.oid not in match.matched:
            return ZERO
        guide_targets = _guide_targets(child, node.path)
        if guide_targets is not None and node.oid not in guide_targets:
            return ZERO
        base = ProbInterval.top()
        if child.guide is not None and child.guide.covers(node.path):
            entry = child.guide.entry(node.path.labels)
            if entry is not None:
                bounds = entry.object_bounds.get(node.oid)
                if bounds is not None:
                    base = ProbInterval(bounds[0], min(1.0, bounds[1]))
        return base.times(self._clause_factor(node, child.pi))

    def _clause_factor(
        self, node: SelectNode, pi: ProbabilisticInstance | None
    ) -> ProbInterval:
        """The exact probability factor of a VALUE / CARD clause."""
        if pi is None:
            if node.value is not None or node.card_label is not None:
                return ProbInterval.top()
            return ONE
        if node.value is not None:
            vpf = pi.effective_vpf(node.oid)
            if vpf is None or not pi.weak.is_leaf(node.oid):
                return ProbInterval.top()
            return ProbInterval.point(vpf.prob(node.value))
        if node.card_label is not None and node.card_bounds is not None:
            opf = pi.opf(node.oid)
            if opf is None:
                return ProbInterval.top()
            low, high = node.card_bounds
            pool = frozenset(pi.weak.lch(node.oid, node.card_label))
            mass = sum(
                p for child_set, p in opf.support()
                if low <= len(child_set & pool) <= high
            )
            return ProbInterval.point(mass)
        return ONE

    def _judge_guard(self, node: SelectNode, condition: ProbInterval) -> None:
        op, bound = node.prob_op, node.prob_bound
        assert op is not None and bound is not None
        if not (0.0 <= bound <= 1.0):
            return      # constant-only verdict; PX225/PX226 already cover it
        # Satisfied region: "> b" = (b, 1], ">= b" = [b, 1],
        # "< b" = [0, b), "<= b" = [0, b].  "always" requires the whole
        # interval inside the region, "never" an empty intersection —
        # both with an EPSILON margin so float noise can only make the
        # verdict more conservative, never wrong.
        if op == ">":
            always = condition.lo > bound + EPSILON
            never = condition.hi <= bound - EPSILON
        elif op == ">=":
            always = condition.lo >= bound + EPSILON
            never = condition.hi < bound - EPSILON
        elif op == "<":
            always = condition.hi < bound - EPSILON
            never = condition.lo >= bound + EPSILON
        else:  # "<="
            always = condition.hi <= bound - EPSILON
            never = condition.lo > bound + EPSILON
        if always or never:
            self.guards.append(GuardFinding(
                node.label(), node.path, node.oid, op, bound, condition,
                "always" if always else "never",
            ))

    # ------------------------------------------------------------------
    def _product(self, left: _State, right: _State) -> _State:
        return _State(
            card=left.card.plus(right.card, shift=-1),
            prob=left.prob.times(right.prob),
            exact=False,
        )

    # ------------------------------------------------------------------
    def _query(
        self,
        kind: str,
        path: PathExpression | None,
        oid: str | None,
        chain: tuple[str, ...] | None,
        child: _State,
    ) -> _State:
        if kind == "chain":
            return self._chain_query(chain, child)
        if kind == "prob":
            return self._object_query(oid, child)
        assert path is not None
        match = _match_on(child, path)
        if match is None:
            hi = child.card.hi
            return _State(
                card=CardInterval(0, hi),
                prob=ProbInterval.top(),
                exact=False,
                result=(0.0, math.inf) if kind == "count" else (0.0, 1.0),
            )
        alive = match.matched
        guide_targets = _guide_targets(child, path)
        if guide_targets is not None:
            alive = alive & guide_targets
        entry = None
        if child.guide is not None and child.guide.covers(path):
            entry = child.guide.entry(path.labels)

        if kind == "point":
            if oid is None or oid not in alive:
                result = (0.0, 0.0)
            elif entry is not None:
                lo, hi_p = entry.object_bounds.get(oid, (0.0, 1.0))
                result = (lo, min(1.0, hi_p))
            else:
                result = (0.0, 1.0)
            return _State(
                card=CardInterval.at_most(len(alive)),
                prob=ProbInterval(result[0], result[1]),
                exact=result[0] == result[1],
                result=result,
            )

        if not alive:
            constant = (0.0, 0.0)
            return _State(
                card=CardInterval.exactly(0), prob=ZERO, exact=True,
                result=constant,
            )

        if kind == "exists":
            if entry is not None:
                result = (entry.lower, entry.upper)
            else:
                result = (0.0, 1.0)
            return _State(
                card=CardInterval.at_most(len(alive)),
                prob=ProbInterval(result[0], min(1.0, result[1])),
                exact=False,
                result=result,
            )
        if kind == "count":
            if entry is not None:
                lows: list[float] = []
                highs: list[float] = []
                for target in alive:
                    lo, hi_p = entry.object_bounds.get(target, (0.0, 1.0))
                    lows.append(max(0.0, lo))
                    highs.append(min(1.0, hi_p))
                result = (sum(lows), sum(highs))
            else:
                result = (0.0, float(len(alive)))
            return _State(
                card=CardInterval.at_most(len(alive)),
                prob=ProbInterval(
                    min(1.0, result[0]), min(1.0, result[1])
                ),
                exact=False,
                result=result,
            )
        # "dist": bound P(count >= 1) by the exists interval; the match
        # count itself can never exceed the alive set.
        if entry is not None:
            result = (entry.lower, entry.upper)
        else:
            result = (0.0, 1.0)
        return _State(
            card=CardInterval.at_most(len(alive)),
            prob=ProbInterval(result[0], min(1.0, result[1])),
            exact=False,
            result=result,
        )

    def _chain_query(
        self, chain: tuple[str, ...] | None, child: _State
    ) -> _State:
        if not chain or child.pi is None or child.root != chain[0]:
            return _State(
                card=CardInterval.top(), prob=ProbInterval.top(),
                exact=False, result=(0.0, 1.0),
            )
        pi = child.pi
        interval = ONE
        for parent, target in zip(chain, chain[1:]):
            opf = pi.opf(parent)
            if opf is None:
                interval = interval.times(ProbInterval.top())
            else:
                interval = interval.times(
                    ProbInterval.point(opf.marginal_inclusion(target))
                )
        return _State(
            card=CardInterval.top(), prob=interval,
            exact=interval.is_point,
            result=(interval.lo, interval.hi),
        )

    def _object_query(self, oid: str | None, child: _State) -> _State:
        if oid is None or child.guide is None:
            return _State(
                card=CardInterval.top(), prob=ProbInterval.top(),
                exact=False, result=(0.0, 1.0),
            )
        lows: list[float] = []
        high_total = 0.0
        found = False
        for entry in child.guide.paths():
            bounds = entry.object_bounds.get(oid)
            if bounds is None:
                continue
            found = True
            lows.append(bounds[0])
            high_total += bounds[1]
        if not found:
            # The guide enumerates every object with nonzero existence
            # probability; absence is an emptiness proof.
            return _State(
                card=CardInterval.exactly(0), prob=ZERO, exact=True,
                result=(0.0, 0.0),
            )
        result = (max(lows), min(1.0, high_total))
        return _State(
            card=CardInterval.top(),
            prob=ProbInterval(result[0], result[1]),
            exact=result[0] == result[1],
            result=result,
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
#: Query kinds the engine can answer from an emptiness certificate.
SKIPPABLE_KINDS = ("exists", "count", "point", "dist")


def _facts_of(node: PlanNode, state: _State) -> NodeFacts:
    kind = (
        "query"
        if isinstance(node, QueryNode)
        or (isinstance(node, IndexedPathStepNode) and node.op != "project-ancestor")
        else "instance"
    )
    return NodeFacts(
        label=node.label(), kind=kind, card=state.card, prob=state.prob,
        condition=state.condition, exact=state.exact,
    )


def _root_kind(plan: PlanNode) -> str | None:
    if isinstance(plan, QueryNode):
        return plan.kind
    if isinstance(plan, IndexedPathStepNode) and plan.op != "project-ancestor":
        return plan.op
    return None


def certify_plan(
    plan: PlanNode,
    database: Any,
    guides: DataGuideCache | None = None,
) -> PlanCertificate:
    """Abstractly interpret a (prepared) plan into a certificate."""
    interpreter = _AbstractInterpreter(
        database, guides if guides is not None else DataGuideCache()
    )
    root_state = interpreter.state_of(plan)
    facts = tuple(
        _facts_of(node, interpreter.states[id(node)]) for node in walk(plan)
    )
    kind = _root_kind(plan)
    result = root_state.result if kind is not None else None
    support: CardInterval | None = None
    if kind == "dist":
        support = root_state.card
    empty = (
        kind in SKIPPABLE_KINDS
        and result is not None
        and result[0] == result[1] == 0.0
    )
    skippable = empty and not interpreter.can_raise
    return PlanCertificate(
        facts=facts,
        kind=kind,
        result=result,
        support=support,
        empty=empty,
        skippable=skippable,
        guards=tuple(interpreter.guards),
        zero_conditions=tuple(interpreter.zero_conditions),
    )


def absint_diagnostics(
    plan: PlanNode,
    certificate: PlanCertificate,
    subject: str | None = None,
    flagged: Iterable[tuple[str, str]] = (),
) -> list[Diagnostic]:
    """``PX26x`` findings derived from a certificate.

    ``flagged`` is a set of ``(path, oid)`` pairs the base plan checker
    already reported a ``PX22x`` finding for; guard / zero-condition
    findings on those selections are suppressed rather than duplicated.
    All ``PX26x`` findings are warnings: they are advisory certificates
    (the engine consumes them as optimizations), never execution
    blockers.
    """
    already = {(str(path), oid) for path, oid in flagged}
    diagnostics: list[Diagnostic] = []
    if certificate.empty and certificate.kind is not None:
        constant = (
            "the empty distribution {0: 1}" if certificate.kind == "dist"
            else "0"
        )
        diagnostics.append(Diagnostic(
            code="PX260", severity=WARNING,
            message=(
                f"{certificate.kind.upper()} result is provably constant: "
                f"interval analysis certifies the answer is always {constant}"
            ),
            subject=subject,
            hint="the engine short-circuits this plan (check.absint_skips)"
            if certificate.skippable else None,
        ))
    for finding in certificate.guards:
        if (str(finding.path), finding.oid) in already:
            continue
        if finding.verdict == "always":
            diagnostics.append(Diagnostic(
                code="PX261", severity=WARNING,
                message=(
                    f"probability guard PROB {finding.op} {finding.bound:g} is "
                    f"always true: the condition probability is certified to "
                    f"lie in {finding.condition}"
                ),
                subject=subject, oid=finding.oid, path=str(finding.path),
                hint="drop the redundant guard",
            ))
        else:
            diagnostics.append(Diagnostic(
                code="PX263", severity=WARNING,
                message=(
                    f"probability guard PROB {finding.op} {finding.bound:g} is "
                    f"unsatisfiable: the condition probability is certified to "
                    f"lie in {finding.condition}"
                ),
                subject=subject, oid=finding.oid, path=str(finding.path),
                hint="executing this raises EmptyResultError",
            ))
    for label, path, oid in certificate.zero_conditions:
        if (path, oid) in already:
            continue
        diagnostics.append(Diagnostic(
            code="PX262", severity=WARNING,
            message=(
                f"selection condition of {label} has probability zero by "
                f"interval analysis"
            ),
            subject=subject, oid=oid, path=path,
            hint="executing this raises EmptyResultError",
        ))
    return diagnostics


def verify_execution(
    certificate: PlanCertificate,
    value: object,
    stats: Any,
    tolerance: float = 1e-6,
) -> list[str]:
    """Check an executed plan's observations against its certificate.

    ``stats`` is the :class:`repro.engine.executor.NodeStats` tree of the
    execution.  Returns a list of violation messages — empty when every
    observed cardinality, condition probability and result lies inside
    its predicted interval.  When the executed shape diverged from the
    certified plan (an index fallback replayed a different operator
    tree, or a cached subtree flattened the stats) the check is skipped
    rather than guessed at.
    """
    flat = list(stats.walk())
    if len(flat) != len(certificate.facts):
        return []
    violations: list[str] = []
    for facts, observed in zip(certificate.facts, flat):
        if facts.label != observed.label:
            return []      # shapes diverged: nothing comparable
        if (
            facts.kind == "instance"
            and observed.objects is not None
            and not facts.card.contains(observed.objects)
        ):
            violations.append(
                f"{facts.label}: observed {observed.objects} objects outside "
                f"certified {facts.card}"
            )
        if facts.condition is not None:
            probability = observed.extra.get("condition_probability")
            if probability is not None and not facts.condition.contains(
                probability, tolerance
            ):
                violations.append(
                    f"{facts.label}: observed condition probability "
                    f"{probability:.6g} outside certified {facts.condition}"
                )
    root = flat[0]
    if certificate.result is not None and root.strategy != "sample":
        lo, hi = certificate.result
        if certificate.kind == "dist" and isinstance(value, dict):
            total = sum(value.values())
            if abs(total - 1.0) > tolerance:
                violations.append(
                    f"dist result mass {total:.6g} is not 1"
                )
            if value:
                top_count = max(value)
                if certificate.support is not None and not (
                    certificate.support.hi is None
                    or top_count <= certificate.support.hi
                ):
                    violations.append(
                        f"dist support reaches {top_count}, outside certified "
                        f"{certificate.support}"
                    )
            nonzero = 1.0 - value.get(0, 0.0)
            if not (lo - tolerance <= nonzero <= hi + tolerance):
                violations.append(
                    f"dist P(count >= 1) = {nonzero:.6g} outside certified "
                    f"[{lo:.6g}, {hi:.6g}]"
                )
        elif isinstance(value, (int, float)):
            observed_value = float(value)
            if not (lo - tolerance <= observed_value <= hi + tolerance):
                violations.append(
                    f"{certificate.kind} result {observed_value:.6g} outside "
                    f"certified [{lo:.6g}, {hi:.6g}]"
                )
    return violations


__all__ = [
    "CardInterval",
    "EPSILON",
    "GuardFinding",
    "NodeFacts",
    "PlanCertificate",
    "ProbInterval",
    "SKIPPABLE_KINDS",
    "absint_diagnostics",
    "certify_plan",
    "verify_execution",
]
