"""The query pass: PXQL front-end diagnostics (``PX3xx``).

:func:`check_statement` is the check-before-execute entry point the
interpreter calls: it routes plannable statements (algebra and
probabilistic queries) through the plan pass (:mod:`repro.check.plans`)
and statically checks the catalog/file preconditions of the remaining
statement kinds.  Diagnostics are anchored to the statement's source
text via the span map :func:`repro.pxql.parser.parse_spanned` records.

:func:`check_text` additionally owns the syntax level: a statement that
does not even tokenize or parse becomes a ``PX310`` diagnostic with the
offending source position instead of an exception.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.check.dataguide import DataGuideCache
from repro.check.diagnostics import ERROR, Diagnostic, Span
from repro.check.plans import check_plan
from repro.engine.plan import plan_statement
from repro.pxql import ast
from repro.pxql.lexer import PXQLSyntaxError
from repro.pxql.parser import SpanMap, parse_spanned

#: Which span role anchors each plan-pass code (best effort).
_CODE_ROLES: dict[str, tuple[str, ...]] = {
    "PX201": ("source",),
    "PX210": ("path",),
    "PX220": ("oid", "path"),
    "PX222": ("value", "oid"),
    "PX223": ("card", "oid"),
    "PX224": ("card", "oid"),
    "PX225": ("prob",),
    "PX226": ("prob",),
    "PX230": ("left",),
    "PX231": ("root", "left"),
    "PX240": ("path",),
    "PX241": ("oid", "path"),
    "PX242": ("chain",),
    "PX243": ("chain",),
    "PX244": ("oid",),
    "PX260": ("path",),
    "PX261": ("prob", "oid", "path"),
    "PX262": ("oid", "path"),
    "PX263": ("prob", "oid", "path"),
}


def _attach_spans(
    diagnostics: list[Diagnostic], spans: SpanMap | None
) -> list[Diagnostic]:
    if not spans:
        return diagnostics
    anchored: list[Diagnostic] = []
    for diagnostic in diagnostics:
        if diagnostic.span is None:
            for role in _CODE_ROLES.get(diagnostic.code, ()):
                if role in spans:
                    start, end = spans[role]
                    diagnostic = replace(diagnostic, span=Span(start, end))
                    break
        anchored.append(diagnostic)
    return anchored


def _span_of(spans: SpanMap | None, role: str) -> Span | None:
    if spans and role in spans:
        start, end = spans[role]
        return Span(start, end)
    return None


def _has_instance(database, name: str) -> bool:
    try:
        database.get(name)
    except Exception:
        return False
    return True


def _check_source(
    database, name: str, spans: SpanMap | None, subject: str | None
) -> list[Diagnostic]:
    if _has_instance(database, name):
        return []
    return [Diagnostic(
        code="PX301", severity=ERROR,
        message=f"unknown instance {name!r} in catalog",
        subject=subject, span=_span_of(spans, "source"),
        hint="LIST shows the registered names",
    )]


def check_statement(
    statement: ast.Statement,
    database,
    spans: SpanMap | None = None,
    guides: DataGuideCache | None = None,
    subject: str | None = None,
    rewrites: bool = False,
) -> list[Diagnostic]:
    """Statically check one parsed PXQL statement against a catalog.

    Returns the combined plan-pass and query-pass findings; never
    executes the statement.  ``CHECK``, ``EXPLAIN``, ``PROFILE`` and
    ``... WITH TIMEOUT`` wrappers are unwrapped to their inner statement
    first.
    """
    while isinstance(
        statement,
        (ast.CheckStatement, ast.ExplainStatement, ast.ProfileStatement,
         ast.TimeoutStatement),
    ):
        statement = statement.statement

    plan = plan_statement(statement)
    if plan is not None:
        diagnostics = check_plan(plan, database, guides=guides,
                                 subject=subject, rewrites=rewrites)
        return _attach_spans(diagnostics, spans)

    diagnostics = []
    if isinstance(statement, (ast.DropStatement, ast.SaveStatement)):
        diagnostics.extend(_check_source(database, statement.name, spans, subject))
    elif isinstance(statement, (
        ast.ShowStatement, ast.WorldsStatement, ast.UnrollStatement,
    )):
        diagnostics.extend(_check_source(database, statement.source, spans, subject))
    elif isinstance(statement, ast.EstimateStatement):
        diagnostics.extend(_check_source(database, statement.source, spans, subject))
        if statement.samples <= 0:
            diagnostics.append(Diagnostic(
                code="PX303", severity=ERROR,
                message=f"ESTIMATE needs a positive sample count, got "
                        f"{statement.samples}",
                subject=subject,
                hint="SAMPLES must be at least 1",
            ))
    elif isinstance(statement, ast.LoadStatement):
        if not os.path.isfile(statement.path):
            diagnostics.append(Diagnostic(
                code="PX302", severity=ERROR,
                message=f"LOAD source file {statement.path!r} does not exist",
                subject=subject, span=_span_of(spans, "file"),
                hint="check the quoted path",
            ))
    return diagnostics


def check_text(
    text: str,
    database,
    guides: DataGuideCache | None = None,
    rewrites: bool = False,
) -> list[Diagnostic]:
    """Statically check one PXQL statement given as source text.

    Syntax errors become ``PX310`` diagnostics (with the source offset
    when the lexer/parser knew it) instead of raising.
    """
    subject = text.strip()
    try:
        statement, spans = parse_spanned(text)
    except PXQLSyntaxError as error:
        position = getattr(error, "position", None)
        span = Span(position, position + 1) if position is not None and \
            position < len(text) else None
        return [Diagnostic(
            code="PX310", severity=ERROR, message=str(error),
            subject=subject, span=span,
            hint="see the grammar in `docs/PXQL.md`",
        )]
    return check_statement(statement, database, spans=spans, guides=guides,
                           subject=subject, rewrites=rewrites)
