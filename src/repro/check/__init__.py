"""repro.check — static diagnostics over models, plans and PXQL.

Three analysis passes share one diagnostics framework
(:mod:`repro.check.diagnostics`): every finding is a
:class:`~repro.check.diagnostics.Diagnostic` with a stable code
(``PX1xx`` = model, ``PX2xx`` = plan, ``PX3xx`` = query front-end), a
severity, an optional source span, and a fix hint.

* **Model pass** (:mod:`repro.check.model`) — exhaustive linting of a
  probabilistic instance's legality conditions (Theorem 1 preconditions)
  plus summary statistics.  Absorbs the former ``repro.core.lint``.
* **Dataguide** (:mod:`repro.check.dataguide`) — a strong-dataguide
  label-path summary of the weak instance with per-path existence
  probability intervals; the structural oracle the plan pass consults.
* **Plan pass** (:mod:`repro.check.plans`) — a typechecker over the
  engine's logical plan IR: never-matching paths, contradictory or
  tautological selection conditions, incompatible products, and
  machine-checkable soundness justifications for rewrite rules
  (:mod:`repro.check.rewrites`).
* **Query pass** (:mod:`repro.check.query`) — statement-level checks for
  the PXQL front-end, with source spans from the lexer.
* **Abstract interpretation** (:mod:`repro.check.absint`) — an interval
  analysis over the plan IR: probability and cardinality intervals per
  node, certified result bounds, provably-empty results (``PX26x``),
  and runtime-checkable :class:`~repro.check.absint.PlanCertificate`
  records the engine consumes for short-circuiting and cost hints.
* **Script pass** (:mod:`repro.check.script`) — whole-script PXQL
  dataflow (``PX31x``): use-before-register, dead results, shadowed
  re-registrations, shadowed session timeouts.

``python -m repro.check`` runs all passes over a database directory or
a fixture corpus (see :mod:`repro.check.cli`).
"""

from repro.check.dataguide import DataGuide, DataGuideCache, build_dataguide
from repro.check.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    CheckError,
    Diagnostic,
    DiagnosticReport,
    Span,
)
from repro.check.model import Issue, check_instance, format_issues, has_errors, lint_instance

# The plan and query passes import the engine and PXQL layers, which in
# turn import repro.core — and repro.core imports the model pass (via
# the repro.core.lint shim).  Loading them lazily (PEP 562) keeps this
# package importable from anywhere in that cycle.
_LAZY = {
    "check_plan": "repro.check.plans",
    "check_statement": "repro.check.query",
    "check_text": "repro.check.query",
    "RewriteJustification": "repro.check.rewrites",
    "justify_rewrites": "repro.check.rewrites",
    "CardInterval": "repro.check.absint",
    "PlanCertificate": "repro.check.absint",
    "ProbInterval": "repro.check.absint",
    "certify_plan": "repro.check.absint",
    "verify_execution": "repro.check.absint",
    "ScriptTracker": "repro.check.script",
    "parse_script": "repro.check.script",
    "script_diagnostics": "repro.check.script",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "CardInterval",
    "CheckError",
    "DataGuide",
    "DataGuideCache",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR",
    "INFO",
    "Issue",
    "PlanCertificate",
    "ProbInterval",
    "RewriteJustification",
    "ScriptTracker",
    "Span",
    "WARNING",
    "build_dataguide",
    "certify_plan",
    "check_instance",
    "check_plan",
    "check_statement",
    "check_text",
    "format_issues",
    "has_errors",
    "justify_rewrites",
    "lint_instance",
    "parse_script",
    "script_diagnostics",
    "verify_execution",
]
