"""Strong-dataguide inference over weak instances.

A *dataguide* is the classic semistructured structural summary: one node
per distinct label path from the root, annotated with the set of objects
that path can reach.  Over a PXML weak instance the summary is finite
(the weak instance graph is required acyclic for coherence), and the
local probability functions let us attach a *reachability bound* to each
path: an interval ``[lower, upper]`` on the probability that some object
satisfies the path in a compatible world.

On tree-structured instances the per-object bounds are exact — the
probability an object occurs is the product of marginal inclusion
probabilities up its unique parent chain (the closed form of
``repro.analysis.existence_probability``).  On DAGs the upper bound is a
union bound over incoming chains and the lower bound falls back to zero
(occurrence events along converging chains are correlated).

Paths whose upper bound is zero are pruned: the dataguide therefore
contains a label path **iff** that path has nonzero existence
probability, which is exactly the oracle the plan checker needs to flag
statically doomed path expressions — and the oracle the query engine's
:class:`~repro.index.pathindex.PathIndex` reuses to skip instances that
provably cannot match.  :class:`DataGuideCache` memoizes guides per
``(name, version, generation)`` against a
:class:`~repro.storage.database.Database`, so repeated checks of an
unchanged catalog are free but cross-process catalog mutations (which
bump the generation without touching in-process version counters) still
invalidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.instance import ProbabilisticInstance
from repro.semistructured.graph import Label, Oid
from repro.semistructured.paths import PathExpression

#: Safety valve: stop expanding a guide past this many label paths.
DEFAULT_MAX_PATHS = 10_000


@dataclass(frozen=True)
class DataGuideEntry:
    """One dataguide node: a label path and its reachability summary.

    Attributes:
        labels: the label path from the root (``()`` is the root itself).
        targets: the objects some compatible world can reach via the path.
        lower: a lower bound on ``P(some object satisfies the path)``.
        upper: an upper bound on the same probability (``> 0`` always —
            zero-probability paths are pruned from the guide).
        exact: whether the per-object probabilities underlying the bounds
            are exact (true on trees with fully specified OPFs).
        object_bounds: per-target ``(lower, upper)`` occurrence bounds,
            the raw material the path-level bounds are folded from.  On
            truncated guides these may be incomplete and must not be
            trusted (see :attr:`DataGuide.truncated`).
    """

    labels: tuple[Label, ...]
    targets: frozenset[Oid]
    lower: float
    upper: float
    exact: bool
    object_bounds: Mapping[Oid, tuple[float, float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __str__(self) -> str:
        path = ".".join(self.labels) if self.labels else "(root)"
        bound = (
            f"P={self.lower:.6g}" if self.exact and self.lower == self.upper
            else f"P in [{self.lower:.6g}, {self.upper:.6g}]"
        )
        return f"{path}: {len(self.targets)} object(s), {bound}"


class DataGuide:
    """A strong dataguide with per-path existence probability intervals."""

    def __init__(
        self,
        root: Oid,
        entries: Mapping[tuple[Label, ...], DataGuideEntry],
        is_tree: bool,
        truncated: bool = False,
    ) -> None:
        self.root = root
        self._entries = dict(entries)
        self.is_tree = is_tree
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, labels: tuple[Label, ...]) -> bool:
        return tuple(labels) in self._entries

    def paths(self) -> Iterator[DataGuideEntry]:
        """Iterate entries by increasing depth, then lexicographically."""
        for labels in sorted(self._entries, key=lambda ls: (len(ls), ls)):
            yield self._entries[labels]

    def entry(self, labels: tuple[Label, ...]) -> DataGuideEntry | None:
        """The entry for a label path, or ``None`` when unreachable."""
        return self._entries.get(tuple(labels))

    def targets(self, labels: tuple[Label, ...]) -> frozenset[Oid]:
        """The objects reachable via the path (empty when unreachable)."""
        entry = self.entry(labels)
        return entry.targets if entry is not None else frozenset()

    def covers(self, path: PathExpression) -> bool:
        """Whether the guide speaks for this path (rooted at our root)."""
        return path.root == self.root

    def interval(self, labels: tuple[Label, ...]) -> tuple[float, float]:
        """The existence probability interval (``(0, 0)`` if unreachable)."""
        entry = self.entry(labels)
        if entry is None:
            return (0.0, 0.0)
        return (entry.lower, entry.upper)

    def probe(self, labels: tuple[Label, ...]) -> tuple[int, tuple[Label, ...]]:
        """Diagnose a miss: longest live prefix and its outgoing labels.

        Returns ``(k, next_labels)`` where ``labels[:k]`` is the longest
        prefix present in the guide and ``next_labels`` are the labels
        that *do* extend that prefix — the raw material for "did you
        mean" fix hints.
        """
        labels = tuple(labels)
        length = len(labels)
        while length > 0 and labels[:length] not in self._entries:
            length -= 1
        prefix = labels[:length]
        continuations = sorted({
            ls[-1] for ls in self._entries
            if len(ls) == length + 1 and ls[:length] == prefix
        })
        return length, tuple(continuations)

    def __repr__(self) -> str:
        kind = "tree" if self.is_tree else "dag"
        return f"DataGuide(root={self.root!r}, {len(self)} paths, {kind})"


def _marginal_bounds(
    pi: ProbabilisticInstance, parent: Oid, child: Oid
) -> tuple[float, float]:
    """Bounds on ``P(child in c(parent) | parent occurs)``."""
    opf = pi.opf(parent)
    if opf is None:
        return (0.0, 1.0)    # unspecified OPF: anything goes
    marginal = opf.marginal_inclusion(child)
    return (marginal, marginal)


def build_dataguide(
    pi: ProbabilisticInstance, max_paths: int = DEFAULT_MAX_PATHS
) -> DataGuide:
    """Compute the strong dataguide of a probabilistic instance.

    Breadth-first over label paths: the frontier maps each live label
    path to per-object reachability bounds; every step extends each path
    by each label its targets can emit, multiplying edge bounds in.
    Objects (and whole paths) whose upper bound collapses to zero are
    pruned, so membership in the guide coincides with nonzero existence
    probability.
    """
    weak = pi.weak
    graph = weak.graph()
    is_tree = graph.is_tree(weak.root)

    entries: dict[tuple[Label, ...], DataGuideEntry] = {}
    truncated = False
    # Per-path object bounds: {labels: {oid: (lower, upper)}}.
    frontier: dict[tuple[Label, ...], dict[Oid, tuple[float, float]]] = {
        (): {weak.root: (1.0, 1.0)}
    }

    def record(labels: tuple[Label, ...], bounds: dict[Oid, tuple[float, float]]) -> None:
        lower = max((lo for lo, _hi in bounds.values()), default=0.0)
        upper = min(1.0, sum(hi for _lo, hi in bounds.values()))
        entries[labels] = DataGuideEntry(
            labels=labels,
            targets=frozenset(bounds),
            lower=lower,
            upper=upper,
            exact=is_tree,
            object_bounds=dict(bounds),
        )

    while frontier:
        next_frontier: dict[tuple[Label, ...], dict[Oid, tuple[float, float]]] = {}
        for labels, bounds in frontier.items():
            record(labels, bounds)
            if len(entries) + len(next_frontier) >= max_paths:
                truncated = True
                continue
            for oid, (olow, ohigh) in bounds.items():
                for label in weak.labels_of(oid):
                    card = weak.card(oid, label)
                    if card.max < 1:
                        continue          # dead label: children never chosen
                    for child in weak.lch(oid, label):
                        mlow, mhigh = _marginal_bounds(pi, oid, child)
                        high = ohigh * mhigh
                        if high <= 0.0:
                            continue      # zero inclusion: prune
                        low = olow * mlow if is_tree else 0.0
                        extended = (*labels, label)
                        per_object = next_frontier.setdefault(extended, {})
                        prev = per_object.get(child)
                        if prev is None:
                            per_object[child] = (low, high)
                        else:
                            # Converging chains (DAG): union-bound the
                            # upper side, keep the best lower bound.
                            per_object[child] = (
                                max(prev[0], low), min(1.0, prev[1] + high)
                            )
        frontier = next_frontier

    return DataGuide(weak.root, entries, is_tree, truncated)


def _cache_token(database, name: str) -> tuple[int, int]:
    """``(version, generation)`` — the invalidation key for ``name``.

    ``version(name)`` only advances on in-process re-registration; the
    catalog-wide ``generation()`` (when the catalog has one) also
    advances when *another process* mutates the shared store under the
    catalog file lock.  Keying on both closes the stale-guide window a
    version-only key left open.  Catalogs without a ``generation``
    contribute a constant 0 (version-only keying, as before).
    """
    generation = getattr(database, "generation", None)
    return (
        database.version(name),
        int(generation()) if callable(generation) else 0,
    )


class DataGuideCache:
    """Memoizes dataguides per ``(name, version, generation)``.

    The catalog only needs ``get(name)`` and ``version(name)``
    (``generation()`` is used when present);
    :class:`repro.storage.database.Database` provides all three.  Stale
    tokens of a name are evicted on refresh, so the cache stays
    bounded by the number of live names.
    """

    def __init__(self, max_paths: int = DEFAULT_MAX_PATHS) -> None:
        self._max_paths = max_paths
        self._guides: dict[tuple[str, tuple[int, int]], DataGuide] = {}

    def get(self, database, name: str) -> DataGuide:
        """The (possibly cached) dataguide of a named instance."""
        token = _cache_token(database, name)
        key = (name, token)
        cached = self._guides.get(key)
        if cached is not None:
            return cached
        for stale in [k for k in self._guides if k[0] == name]:
            del self._guides[stale]
        guide = build_dataguide(database.get(name), self._max_paths)
        self._guides[key] = guide
        return guide

    def __len__(self) -> int:
        return len(self._guides)
