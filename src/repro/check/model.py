"""The model pass: exhaustive instance linting (``PX1xx``).

``ProbabilisticInstance.validate()`` raises on the *first* problem,
which is what library code wants; a human repairing a hand-written or
imported model wants *every* problem at once.  :func:`lint_instance`
walks the whole model and returns a list of :class:`Issue` records,
ordered by severity (errors first), then instance-level findings
(``oid is None``), then object id, then code.

Every issue carries both a mnemonic ``code`` (stable since the original
``repro.core.lint``) and a stable ``px`` diagnostic code in the
``PX1xx`` range; :func:`check_instance` converts issues into the shared
:class:`~repro.check.diagnostics.Diagnostic` format and appends a
``PX190`` summary annotation (absorbing ``repro.analysis.summarize``).

Severities:

* ``error`` — the model has no coherent semantics (Theorem 1 fails).
* ``warning`` — legal but suspicious: dead objects, unreachable mass,
  children that can never be chosen, degenerate distributions.

``repro.core.lint`` remains as a thin re-export shim for back-compat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.check.diagnostics import ERROR, INFO, WARNING, Diagnostic
from repro.core.distributions import PROBABILITY_TOLERANCE
from repro.core.instance import ProbabilisticInstance
from repro.semistructured.graph import Oid

#: Mnemonic lint code -> stable PX1xx diagnostic code.
PX_CODES: dict[str, str] = {
    "cyclic": "PX101",
    "unsatisfiable-card": "PX102",
    "missing-opf": "PX103",
    "negative-mass": "PX104",
    "outside-pc": "PX105",
    "bad-total": "PX106",
    "outside-domain": "PX107",
    "unreachable": "PX110",
    "dead-label": "PX111",
    "never-chosen": "PX112",
    "typed-no-vpf": "PX113",
    "vpf-no-type": "PX114",
    "summary": "PX190",
}

_HINTS: dict[str, str] = {
    "cyclic": "remove an edge; Definition 4.3 requires an acyclic weak graph",
    "unsatisfiable-card": "lower card.min or add potential children",
    "missing-opf": "assign an OPF with set_opf()",
    "negative-mass": "probabilities must be >= 0",
    "outside-pc": "restrict the OPF support to PC(o)",
    "bad-total": "renormalize the distribution to total mass 1",
    "outside-domain": "extend dom(tau(o)) or fix the VPF support",
    "unreachable": "connect the object to the root or remove it",
    "dead-label": "raise card.max or drop the lch entry",
    "never-chosen": "give the child nonzero inclusion mass or remove it",
    "typed-no-vpf": "assign a VPF or a default value",
    "vpf-no-type": "declare tau(o) with set_type()",
}

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Issue:
    """One linting finding.

    ``code`` is the historical mnemonic; ``px`` is the stable ``PX1xx``
    diagnostic code (derived automatically from the mnemonic).
    """

    severity: str
    oid: Oid | None
    code: str
    message: str
    px: str = field(default="")

    def __post_init__(self) -> None:
        if not self.px:
            try:
                object.__setattr__(self, "px", PX_CODES[self.code])
            except KeyError:
                raise ValueError(
                    f"unknown lint mnemonic {self.code!r}: add it to "
                    "repro.check.model.PX_CODES before emitting it"
                ) from None

    def __str__(self) -> str:
        where = f" [{self.oid}]" if self.oid is not None else ""
        return f"{self.severity}{where} {self.px}/{self.code}: {self.message}"


def lint_instance(pi: ProbabilisticInstance) -> list[Issue]:
    """Collect every problem in a probabilistic instance.

    The result is ordered by severity (errors before warnings), then
    instance-level findings, then object id, then PX code.
    """
    issues: list[Issue] = []
    weak = pi.weak
    graph = weak.graph()

    # -- structure ------------------------------------------------------
    if not graph.is_acyclic():
        issues.append(Issue(
            ERROR, None, "cyclic",
            "the weak instance graph contains a cycle (Definition 4.3)",
        ))
    else:
        reachable = graph.reachable_from(weak.root)
        for oid in sorted(weak.objects - reachable):
            issues.append(Issue(
                WARNING, oid, "unreachable",
                "can never occur in a compatible world (unreachable from root)",
            ))

    for oid in sorted(weak.objects):
        for label in sorted(weak.labels_of(oid)):
            card = weak.card(oid, label)
            pool = weak.lch(oid, label)
            if card.min > len(pool):
                issues.append(Issue(
                    ERROR, oid, "unsatisfiable-card",
                    f"card({oid}, {label}).min = {card.min} exceeds "
                    f"|lch| = {len(pool)}",
                ))
            if card.max == 0 and pool:
                issues.append(Issue(
                    WARNING, oid, "dead-label",
                    f"card({oid}, {label}).max = 0: the {len(pool)} potential "
                    f"{label}-children can never be chosen",
                ))

    # -- local probability functions -------------------------------------
    for oid in sorted(weak.non_leaves()):
        opf = pi.opf(oid)
        if opf is None:
            issues.append(Issue(ERROR, oid, "missing-opf", "non-leaf without an OPF"))
            continue
        total = 0.0
        chosen: set[Oid] = set()
        for child_set, probability in opf.support():
            total += probability
            chosen |= child_set
            if probability < 0.0:
                issues.append(Issue(
                    ERROR, oid, "negative-mass",
                    f"OPF entry {sorted(child_set)!r} has negative probability",
                ))
            if not weak.is_potential_child_set(oid, child_set):
                issues.append(Issue(
                    ERROR, oid, "outside-pc",
                    f"OPF assigns mass to {sorted(child_set)!r} outside PC({oid})",
                ))
        if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
            issues.append(Issue(
                ERROR, oid, "bad-total", f"OPF sums to {total!r}, expected 1"
            ))
        for child in sorted(weak.potential_children(oid) - chosen):
            issues.append(Issue(
                WARNING, oid, "never-chosen",
                f"potential child {child!r} has zero inclusion probability",
            ))

    for oid in sorted(weak.leaves()):
        leaf_type = weak.tau(oid)
        vpf = pi.effective_vpf(oid)
        if vpf is None:
            if leaf_type is not None:
                issues.append(Issue(
                    WARNING, oid, "typed-no-vpf",
                    f"leaf has type {leaf_type.name!r} but no value distribution",
                ))
            continue
        if leaf_type is None:
            issues.append(Issue(
                WARNING, oid, "vpf-no-type",
                "leaf has a value distribution but no declared type",
            ))
        total = 0.0
        for value, probability in vpf.support():
            total += probability
            if probability < 0.0:
                issues.append(Issue(
                    ERROR, oid, "negative-mass",
                    f"VPF entry {value!r} has negative probability",
                ))
            if leaf_type is not None and value not in leaf_type:
                issues.append(Issue(
                    ERROR, oid, "outside-domain",
                    f"VPF assigns mass to {value!r} outside dom({leaf_type.name})",
                ))
        if not math.isclose(total, 1.0, abs_tol=PROBABILITY_TOLERANCE, rel_tol=1e-9):
            issues.append(Issue(
                ERROR, oid, "bad-total", f"VPF sums to {total!r}, expected 1"
            ))

    # Severity first; within a severity, instance-level findings (no
    # oid), then object id, then PX code — exactly the documented order.
    issues.sort(key=lambda i: (
        _SEVERITY_RANK[i.severity], i.oid is not None, i.oid or "", i.px,
    ))
    return issues


def has_errors(issues: list[Issue]) -> bool:
    """Whether any finding is severity ``error``."""
    return any(issue.severity == ERROR for issue in issues)


def format_issues(issues: list[Issue]) -> str:
    """Render findings one per line ("clean" when empty)."""
    if not issues:
        return "clean"
    return "\n".join(str(issue) for issue in issues)


def issue_to_diagnostic(issue: Issue, subject: str | None = None) -> Diagnostic:
    """Convert a lint :class:`Issue` to the shared diagnostic format."""
    return Diagnostic(
        code=issue.px,
        severity=issue.severity,
        message=f"{issue.code}: {issue.message}",
        subject=subject,
        oid=str(issue.oid) if issue.oid is not None else None,
        hint=_HINTS.get(issue.code),
    )


def check_instance(
    pi: ProbabilisticInstance,
    name: str | None = None,
    summary: bool = True,
) -> list[Diagnostic]:
    """Run the model pass over one instance.

    Returns the lint findings as diagnostics, plus (with ``summary``)
    one ``PX190`` info annotation with the shape/uncertainty summary of
    ``repro.analysis.summarize``.
    """
    diagnostics = [issue_to_diagnostic(issue, name) for issue in lint_instance(pi)]
    if summary:
        try:
            from repro.analysis import summarize

            diagnostics.append(Diagnostic(
                code=PX_CODES["summary"], severity=INFO,
                message=str(summarize(pi)), subject=name,
            ))
        except Exception as exc:     # summaries must never mask lint findings
            diagnostics.append(Diagnostic(
                code=PX_CODES["summary"], severity=INFO,
                message=f"summary unavailable: {exc}", subject=name,
            ))
    return diagnostics
