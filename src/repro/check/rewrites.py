"""Machine-checkable soundness justifications for plan rewrites.

The optimizer's rules (:mod:`repro.engine.rewrite`) are equivalences
*only under guard conditions* (ancestor kind, equal paths, no
cardinality clause, ...).  This module re-verifies those guards on the
actual ``(before, after)`` pairs a rewrite trace records, so every
applied rewrite carries a justification that was *checked against the
plans*, not merely asserted in a docstring.  A justification that fails
to re-verify is a bug in the optimizer and surfaces as a ``PX250``
error; sound rewrites surface as ``PX251`` info annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.diagnostics import ERROR, INFO, Diagnostic
from repro.engine.plan import (
    IndexedPathStepNode,
    IndexedScanNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
)

#: Diagnostic codes for the rewrite checks.
UNSOUND_REWRITE = "PX250"
JUSTIFIED_REWRITE = "PX251"


@dataclass(frozen=True)
class RewriteJustification:
    """The re-verified soundness record of one rewrite application."""

    rule: str
    holds: bool
    premise: str           # the guard condition that was (re-)checked
    argument: str          # why the guard implies semantic equivalence

    def __str__(self) -> str:
        status = "sound" if self.holds else "UNSOUND"
        return f"{self.rule}: {status} — {self.premise}; {self.argument}"


def _justify_collapse(before: PlanNode, after: PlanNode) -> RewriteJustification:
    argument = (
        "projection re-matches the path through chains it itself preserves, "
        "so the second application finds exactly the same objects"
    )
    holds = (
        isinstance(before, ProjectNode)
        and isinstance(before.child, ProjectNode)
        and before.kind == before.child.kind
        and before.path == before.child.path
        and (before.kind != "single" or len(before.path.labels) == 1)
        and after == before.child
    )
    return RewriteJustification(
        "collapse_adjacent_projections", holds,
        "inner and outer projections share kind and path "
        "(single projection additionally requires a one-label path)",
        argument,
    )


def _justify_push(before: PlanNode, after: PlanNode) -> RewriteJustification:
    argument = (
        "the chain to a match survives ancestor projection and the condition "
        "inspects nothing the projection removes, so filtering commutes with "
        "projecting"
    )
    holds = (
        isinstance(before, SelectNode)
        and isinstance(before.child, ProjectNode)
        and before.child.kind == "ancestor"
        and before.child.path == before.path
        and before.card_label is None
        and before.prob_op is None
        and isinstance(after, ProjectNode)
        and after.kind == "ancestor"
        and after.path == before.path
        and isinstance(after.child, SelectNode)
        and after.child.path == before.path
        and after.child.oid == before.oid
        and after.child.value == before.value
        and after.child.card_label is None
        and after.child.child == before.child.child
    )
    return RewriteJustification(
        "push_selection_below_projection", holds,
        "ancestor projection, selection path equals projection path, and no "
        "cardinality clause or probability guard",
        argument,
    )


def _justify_reorder(before: PlanNode, after: PlanNode) -> RewriteJustification:
    argument = (
        "the product merges the two roots symmetrically (children union, OPF "
        "product), so the operands commute once the result root id is pinned"
    )
    holds = (
        isinstance(before, ProductNode)
        and isinstance(after, ProductNode)
        and after.left == before.right
        and after.right == before.left
        and (
            after.new_root == before.new_root
            if before.new_root is not None
            else after.new_root is not None     # default root id must be pinned
        )
    )
    return RewriteJustification(
        "reorder_product_by_size", holds,
        "operands swapped exactly once and the result root id is preserved "
        "(explicit) or pinned from the original order (default)",
        argument,
    )


def _lowering_preserves_scan(before_child: PlanNode, after: PlanNode) -> bool:
    """The after-side is an indexed step over the *same* catalog scan."""
    return (
        isinstance(after, IndexedPathStepNode)
        and type(before_child) is ScanNode
        and isinstance(after.child, IndexedScanNode)
        and after.child.name == before_child.name
    )


def _justify_lower_projection(
    before: PlanNode, after: PlanNode
) -> RewriteJustification:
    argument = (
        "the columnar matcher returns the identical backward-pruned "
        "PathMatch (interval containment on a tree equals the edge-by-edge "
        "prune) and feeds the same Section 6.1 epsilon pass, with a runtime "
        "fallback to the walked operator when the snapshot is not a tree"
    )
    holds = (
        isinstance(before, ProjectNode)
        and before.kind == "ancestor"
        and isinstance(after, IndexedPathStepNode)
        and after.op == "project-ancestor"
        and after.path == before.path
        and after.oid is None
        and _lowering_preserves_scan(before.child, after)
    )
    return RewriteJustification(
        "lower_projection_to_index", holds,
        "ancestor projection directly over a catalog scan, with path, scan "
        "name and operation carried over unchanged",
        argument,
    )


def _justify_lower_query(
    before: PlanNode, after: PlanNode
) -> RewriteJustification:
    argument = (
        "the indexed evaluator answers the query from the identical "
        "PathMatch / parent chain the walked algorithms compute, with a "
        "runtime fallback to those algorithms when the snapshot is not a "
        "tree"
    )
    holds = (
        isinstance(before, QueryNode)
        and before.kind in ("exists", "count", "dist", "point")
        and before.path is not None
        and before.chain is None
        and isinstance(after, IndexedPathStepNode)
        and after.op == before.kind
        and after.path == before.path
        and after.oid == before.oid
        and _lowering_preserves_scan(before.child, after)
    )
    return RewriteJustification(
        "lower_query_to_index", holds,
        "path-shaped query (exists/count/dist/point) directly over a catalog "
        "scan, with kind, path, target oid and scan name carried over "
        "unchanged",
        argument,
    )


_JUSTIFIERS = {
    "collapse_adjacent_projections": _justify_collapse,
    "push_selection_below_projection": _justify_push,
    "reorder_product_by_size": _justify_reorder,
    "lower_projection_to_index": _justify_lower_projection,
    "lower_query_to_index": _justify_lower_query,
}


def justify_rewrites(
    trace: list[tuple[str, PlanNode, PlanNode]]
) -> list[RewriteJustification]:
    """Re-verify every rewrite in an ``optimize(..., trace=...)`` trace."""
    justifications: list[RewriteJustification] = []
    for rule, before, after in trace:
        justifier = _JUSTIFIERS.get(rule)
        if justifier is None:
            justifications.append(RewriteJustification(
                rule, False, "no registered justifier for this rule",
                "custom rules need an entry in repro.check.rewrites._JUSTIFIERS",
            ))
        else:
            justifications.append(justifier(before, after))
    return justifications


def rewrite_diagnostics(
    trace: list[tuple[str, PlanNode, PlanNode]],
    subject: str | None = None,
) -> list[Diagnostic]:
    """Render a rewrite trace as ``PX250``/``PX251`` diagnostics."""
    diagnostics: list[Diagnostic] = []
    for justification in justify_rewrites(trace):
        if justification.holds:
            diagnostics.append(Diagnostic(
                code=JUSTIFIED_REWRITE, severity=INFO,
                message=str(justification), subject=subject,
            ))
        else:
            diagnostics.append(Diagnostic(
                code=UNSOUND_REWRITE, severity=ERROR,
                message=str(justification), subject=subject,
                hint="the optimizer applied a rule outside its guard; "
                     "report this as an engine bug",
            ))
    return diagnostics
