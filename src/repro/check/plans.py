"""The plan pass: a static typechecker over the logical plan IR (``PX2xx``).

:func:`check_plan` walks an :mod:`repro.engine.plan` tree bottom-up,
propagating an abstract *shape* (root + weak-structure graph, exact at
scans, over-approximated above operators) and consulting the dataguide
(:mod:`repro.check.dataguide`) for probability-aware reachability.  It
flags:

* scans of unknown catalog names (``PX201``),
* projections of paths that exist in no compatible world (``PX210``),
* selections whose condition provably has probability zero — which the
  executor would surface as a mid-execution
  :class:`~repro.errors.EmptyResultError` (``PX220``–``PX223``),
* tautological cardinality clauses (``PX224``),
* unsatisfiable or trivial probability guards, e.g. ``PROB > 1.0``
  (``PX225``/``PX226``),
* products of incompatible instances (``PX230``/``PX231``),
* queries that are statically constant (``PX240``–``PX244``),
* and, when the optimizer is consulted, a machine-checked soundness
  justification per applied rewrite (``PX250``/``PX251``, via
  :mod:`repro.check.rewrites`).

Severity policy: *error* means executing the plan will certainly raise;
*warning* means it executes but its result is a statically known
constant (bare root, probability zero, trivial distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.dataguide import DataGuide, DataGuideCache
from repro.check.diagnostics import ERROR, WARNING, Diagnostic
from repro.check.rewrites import rewrite_diagnostics
from repro.core.instance import ProbabilisticInstance
from repro.engine.plan import (
    PlanNode,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
)
from repro.semistructured.graph import EdgeLabeledGraph, Oid
from repro.semistructured.paths import PathExpression, PathMatch, match_path


@dataclass
class _Shape:
    """What the checker knows about a sub-plan's output instance.

    ``graph`` is an over-approximation of the result's weak structure
    (``None`` = unknown: checks above this node are skipped).  ``pi``
    and ``guide`` are only set at scan level, where they are exact.
    """

    root: Oid | None
    graph: EdgeLabeledGraph | None
    pi: ProbabilisticInstance | None = None
    guide: DataGuide | None = None
    name: str | None = None

    @property
    def known(self) -> bool:
        return self.graph is not None


_UNKNOWN = _Shape(root=None, graph=None)


def _match(shape: _Shape, path: PathExpression) -> PathMatch | None:
    if shape.graph is None:
        return None
    return match_path(shape.graph, path)


def _guide_targets(shape: _Shape, path: PathExpression) -> frozenset[Oid] | None:
    """The probability-pruned target set, when the guide speaks for the path."""
    if shape.guide is None or not shape.guide.covers(path):
        return None
    return shape.guide.targets(path.labels)


def _never_match_hint(shape: _Shape, path: PathExpression) -> str | None:
    if shape.guide is None or not shape.guide.covers(path):
        return None
    length, continuations = shape.guide.probe(path.labels)
    if length == len(path.labels):
        return None
    prefix = ".".join((path.root, *path.labels[:length]))
    if continuations:
        return (
            f"path dies after {prefix!r}; labels that do continue: "
            f"{', '.join(continuations)}"
        )
    return f"path dies after {prefix!r}, which has no outgoing labels"


class PlanChecker:
    """Checks logical plans against a database catalog."""

    def __init__(
        self,
        database,
        guides: DataGuideCache | None = None,
        subject: str | None = None,
    ) -> None:
        self.database = database
        self.guides = guides if guides is not None else DataGuideCache()
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []

    # ------------------------------------------------------------------
    def _emit(
        self,
        code: str,
        severity: str,
        message: str,
        oid: str | None = None,
        path: PathExpression | None = None,
        hint: str | None = None,
    ) -> None:
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity, message=message,
            subject=self.subject, oid=oid,
            path=str(path) if path is not None else None, hint=hint,
        ))

    # ------------------------------------------------------------------
    def check(self, plan: PlanNode) -> list[Diagnostic]:
        """Run the pass; returns (and stores) the findings."""
        self._shape_of(plan)
        return self.diagnostics

    def _shape_of(self, node: PlanNode) -> _Shape:
        if isinstance(node, ScanNode):
            return self._check_scan(node)
        if isinstance(node, ProjectNode):
            return self._check_project(node, self._shape_of(node.child))
        if isinstance(node, SelectNode):
            return self._check_select(node, self._shape_of(node.child))
        if isinstance(node, ProductNode):
            return self._check_product(
                node, self._shape_of(node.left), self._shape_of(node.right)
            )
        if isinstance(node, QueryNode):
            self._check_query(node, self._shape_of(node.child))
            return _UNKNOWN
        return _UNKNOWN

    # ------------------------------------------------------------------
    def _check_scan(self, node: ScanNode) -> _Shape:
        try:
            pi = self.database.get(node.name)
        except Exception:
            self._emit(
                "PX201", ERROR,
                f"unknown instance {node.name!r} in catalog",
                hint="LIST shows the registered names",
            )
            return _UNKNOWN
        try:
            guide = self.guides.get(self.database, node.name)
        except Exception:
            guide = None
        return _Shape(
            root=pi.root, graph=pi.weak.graph(), pi=pi, guide=guide,
            name=node.name,
        )

    # ------------------------------------------------------------------
    def _check_project(self, node: ProjectNode, shape: _Shape) -> _Shape:
        if not shape.known:
            return _UNKNOWN
        match = _match(shape, node.path)
        assert match is not None
        structurally_empty = match.is_empty
        guide_targets = _guide_targets(shape, node.path)
        probabilistically_empty = (
            guide_targets is not None and not (match.matched & guide_targets)
        )
        if structurally_empty or probabilistically_empty:
            reason = (
                "matches no object of the weak structure" if structurally_empty
                else "matches only objects with zero existence probability"
            )
            self._emit(
                "PX210", WARNING,
                f"projection path {node.path} {reason}; the result is always "
                f"the bare root",
                path=node.path, hint=_never_match_hint(shape, node.path),
            )
            root = shape.root
            graph = EdgeLabeledGraph()
            if root is not None:
                graph.add_vertex(root)
            return _Shape(root=root, graph=graph)
        if node.kind != "ancestor":
            # Descendant / single projections re-root and re-label; the
            # structural over-approximation stops here.
            return _UNKNOWN
        graph = EdgeLabeledGraph()
        for level in match.levels:
            for oid in level:
                graph.add_vertex(oid)
        if shape.root is not None:
            graph.add_vertex(shape.root)
        for src, dst in match.edges:
            graph.add_edge(src, dst, shape.graph.label(src, dst))
        return _Shape(root=shape.root, graph=graph)

    # ------------------------------------------------------------------
    def _check_select(self, node: SelectNode, shape: _Shape) -> _Shape:
        self._check_prob_guard(node)
        if not shape.known:
            return _UNKNOWN
        match = _match(shape, node.path)
        assert match is not None
        if node.oid not in match.matched:
            self._emit(
                "PX220", ERROR,
                f"selection condition {node.path} = {node.oid} has probability "
                f"zero: {node.oid!r} can never satisfy the path",
                oid=node.oid, path=node.path,
                hint=_never_match_hint(shape, node.path)
                or "executing this raises EmptyResultError",
            )
            return shape
        guide_targets = _guide_targets(shape, node.path)
        if guide_targets is not None and node.oid not in guide_targets:
            self._emit(
                "PX220", ERROR,
                f"selection condition {node.path} = {node.oid} has probability "
                f"zero: some chain link has zero inclusion probability",
                oid=node.oid, path=node.path,
                hint="executing this raises EmptyResultError",
            )
            return shape
        if node.value is not None and shape.pi is not None:
            self._check_value_clause(node, shape.pi)
        if node.card_label is not None and shape.pi is not None:
            self._check_card_clause(node, shape.pi)
        return _Shape(root=shape.root, graph=shape.graph)

    def _check_value_clause(self, node: SelectNode, pi: ProbabilisticInstance) -> None:
        oid = node.oid
        if not pi.weak.is_leaf(oid):
            self._emit(
                "PX222", ERROR,
                f"VALUE clause on non-leaf object {oid!r}: it carries no "
                f"value distribution",
                oid=oid, path=node.path,
                hint="select on a leaf object or drop the VALUE clause",
            )
            return
        vpf = pi.effective_vpf(oid)
        if vpf is None:
            self._emit(
                "PX222", ERROR,
                f"VALUE clause on {oid!r}, which has no value distribution",
                oid=oid, path=node.path,
                hint="assign a VPF or a default value first",
            )
            return
        leaf_type = pi.weak.tau(oid)
        if leaf_type is not None and node.value not in leaf_type:
            self._emit(
                "PX222", ERROR,
                f"VALUE = {node.value!r} lies outside dom({leaf_type.name}) "
                f"of {oid!r}",
                oid=oid, path=node.path,
                hint=f"the domain is {sorted(map(repr, leaf_type.domain))}",
            )
            return
        if vpf.prob(node.value) == 0.0:
            self._emit(
                "PX222", ERROR,
                f"VALUE = {node.value!r} has zero probability in the VPF of "
                f"{oid!r}",
                oid=oid, path=node.path,
                hint="executing this raises EmptyResultError",
            )

    def _check_card_clause(self, node: SelectNode, pi: ProbabilisticInstance) -> None:
        low, high = node.card_bounds
        label = node.card_label
        if low > high:
            self._emit(
                "PX223", ERROR,
                f"CARD({label}) IN [{low}, {high}] is an empty interval",
                oid=node.oid, path=node.path,
                hint="swap the bounds",
            )
            return
        pool = pi.weak.lch(node.oid, label)
        card = pi.weak.card(node.oid, label)
        feasible_low = card.min
        feasible_high = min(card.max, len(pool))
        if feasible_low > feasible_high:
            return    # the model itself is broken; the model pass reports it
        if high < feasible_low or low > feasible_high:
            self._emit(
                "PX223", ERROR,
                f"CARD({label}) IN [{low}, {high}] contradicts the feasible "
                f"child counts [{feasible_low}, {feasible_high}] of "
                f"{node.oid!r}",
                oid=node.oid, path=node.path,
                hint="executing this raises EmptyResultError",
            )
            return
        if low <= feasible_low and high >= feasible_high:
            self._emit(
                "PX224", WARNING,
                f"CARD({label}) IN [{low}, {high}] covers every feasible child "
                f"count [{feasible_low}, {feasible_high}] of {node.oid!r}: the "
                f"clause is always true",
                oid=node.oid, path=node.path,
                hint="drop the redundant clause",
            )

    def _check_prob_guard(self, node: SelectNode) -> None:
        if node.prob_op is None or node.prob_bound is None:
            return
        op, bound = node.prob_op, node.prob_bound
        unsatisfiable = (
            (op == ">" and bound >= 1.0)
            or (op == ">=" and bound > 1.0)
            or (op == "<" and bound <= 0.0)
            or (op == "<=" and bound < 0.0)
        )
        trivial = (
            (op == ">" and bound < 0.0)
            or (op == ">=" and bound <= 0.0)
            or (op == "<" and bound > 1.0)
            or (op == "<=" and bound >= 1.0)
        )
        if unsatisfiable:
            self._emit(
                "PX225", ERROR,
                f"probability guard PROB {op} {bound:g} is unsatisfiable: "
                f"condition probabilities lie in [0, 1]",
                oid=node.oid, path=node.path,
                hint="no world satisfies this; executing it raises "
                     "EmptyResultError",
            )
        elif trivial:
            self._emit(
                "PX226", WARNING,
                f"probability guard PROB {op} {bound:g} is always true",
                oid=node.oid, path=node.path,
                hint="drop the redundant guard",
            )

    # ------------------------------------------------------------------
    def _check_product(
        self, node: ProductNode, left: _Shape, right: _Shape
    ) -> _Shape:
        if not (left.known and right.known):
            return _UNKNOWN
        assert left.graph is not None and right.graph is not None
        left_keep = left.graph.vertices - {left.root}
        right_keep = right.graph.vertices - {right.root}
        overlap = left_keep & right_keep
        if overlap:
            self._emit(
                "PX230", ERROR,
                f"product operands share non-root object ids: "
                f"{sorted(overlap)[:5]}{'...' if len(overlap) > 5 else ''}",
                hint="rename one operand's objects first "
                     "(executing this raises AlgebraError)",
            )
            return _UNKNOWN
        new_root = node.new_root
        if new_root is None:
            new_root = f"{left.root}x{right.root}"
        if new_root in left_keep or new_root in right_keep:
            self._emit(
                "PX231", ERROR,
                f"product root id {new_root!r} collides with an existing "
                f"object",
                oid=new_root,
                hint="pick a fresh ROOT id",
            )
            return _UNKNOWN
        graph = EdgeLabeledGraph()
        graph.add_vertex(new_root)
        for side in (left, right):
            assert side.graph is not None
            for src, dst, label in side.graph.edges():
                source = new_root if src == side.root else src
                graph.add_edge(source, dst, label)
        return _Shape(root=new_root, graph=graph)

    # ------------------------------------------------------------------
    def _check_query(self, node: QueryNode, shape: _Shape) -> None:
        if not shape.known:
            return
        if node.kind == "chain":
            self._check_chain(node, shape)
            return
        if node.kind == "prob":
            assert node.oid is not None
            assert shape.graph is not None
            if node.oid not in shape.graph:
                self._emit(
                    "PX244", ERROR,
                    f"PROB of unknown object {node.oid!r}",
                    oid=node.oid,
                    hint="SHOW the instance to list its objects",
                )
            return
        assert node.path is not None
        match = _match(shape, node.path)
        assert match is not None
        guide_targets = _guide_targets(shape, node.path)
        alive = match.matched
        if guide_targets is not None:
            alive = alive & guide_targets
        if not alive:
            constant = "the empty distribution {0: 1}" if node.kind == "dist" else "0"
            self._emit(
                "PX240", WARNING,
                f"{node.kind.upper()} path {node.path} can match no object; "
                f"the result is always {constant}",
                path=node.path, hint=_never_match_hint(shape, node.path),
            )
            return
        if node.kind == "point" and node.oid is not None and node.oid not in alive:
            self._emit(
                "PX241", WARNING,
                f"POINT target {node.oid!r} can never satisfy {node.path}; "
                f"the probability is always 0",
                oid=node.oid, path=node.path,
            )

    def _check_chain(self, node: QueryNode, shape: _Shape) -> None:
        assert node.chain is not None and shape.graph is not None
        chain = node.chain
        if not chain:
            return
        if shape.root is not None and chain[0] != shape.root:
            self._emit(
                "PX242", ERROR,
                f"CHAIN must start at the root {shape.root!r}, got "
                f"{chain[0]!r}",
                oid=chain[0],
                hint="executing this raises QueryError",
            )
            return
        for parent, child in zip(chain, chain[1:]):
            if parent not in shape.graph or child not in shape.graph.children(parent):
                self._emit(
                    "PX243", WARNING,
                    f"chain link {parent!r} -> {child!r} is not potential; "
                    f"the probability is always 0",
                    oid=child,
                )
                return


def check_plan(
    plan: PlanNode,
    database,
    guides: DataGuideCache | None = None,
    subject: str | None = None,
    rewrites: bool = False,
) -> list[Diagnostic]:
    """Run the plan pass over one logical plan.

    With ``rewrites=True`` the optimizer is additionally run with a
    trace, and every applied rewrite is re-verified and annotated
    (``PX250``/``PX251``).
    """
    checker = PlanChecker(database, guides, subject)
    diagnostics = list(checker.check(plan))
    if not any(d.severity == ERROR for d in diagnostics):
        # Interval pass: only meaningful on plans the base checker found
        # executable (an unknown scan or a certain runtime error makes
        # every interval vacuous).  Selections already flagged by a
        # ``PX22x`` finding keep that finding as the single source of
        # truth instead of gaining an interval-flavoured duplicate.
        try:
            from repro.check.absint import absint_diagnostics, certify_plan

            certificate = certify_plan(plan, database, checker.guides)
            flagged: set[tuple[str, str]] = set()
            for d in diagnostics:
                if d.code.startswith("PX22") and d.path is not None \
                        and d.oid is not None:
                    flagged.add((d.path, d.oid))
            diagnostics.extend(
                absint_diagnostics(plan, certificate, subject, flagged)
            )
        except Exception:
            pass    # the interval pass is advisory; never block checking
    if rewrites:
        from repro.engine.cost import CostModel
        from repro.engine.rewrite import INDEX_RULES, optimize

        trace: list[tuple[str, PlanNode, PlanNode]] = []
        try:
            # Mirror the engine's two-stage prepare (algebraic rules to a
            # fixpoint, then index lowering) so every rewrite an
            # execution could apply gets a checked justification.
            cost = CostModel(database)
            optimized, _ = optimize(plan, cost, trace=trace)
            optimize(optimized, cost, INDEX_RULES, trace=trace)
        except Exception:
            trace = []    # unknown scans etc.; the scan check already fired
        diagnostics.extend(rewrite_diagnostics(trace, subject))
    return diagnostics
