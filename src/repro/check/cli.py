"""``python -m repro.check`` — run every static pass over files on disk.

Usage::

    python -m repro.check [PATH ...] [--format text|json]
                          [--fail-on error|warning|never|PX260,PX311,...]

Each ``PATH`` may be:

* a directory — scanned recursively for ``*.pxml.json`` instance files
  (model pass + dataguide construction) and ``*.pxql`` scripts (query
  pass statement by statement, plus the whole-script dataflow pass,
  against a catalog backed by the script's directory);
* a single ``*.pxml.json`` file;
* a single ``*.pxql`` script.

The process exits 0 when the report passes the ``--fail-on`` gate and 1
otherwise, so the command can gate CI on a fixture corpus (see
``.github/workflows/ci.yml``).  The gate is either a severity
(``error`` — the default — fails on error-severity findings,
``warning`` also on warnings, ``never`` never fails) or a
comma-separated list of PX codes (fail when any listed code appears,
whatever its severity) — e.g. ``--fail-on PX260,PX311``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from repro.check.dataguide import DataGuideCache, build_dataguide
from repro.check.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.check.model import check_instance
from repro.check.query import check_text

_INSTANCE_SUFFIX = ".pxml.json"
_SCRIPT_SUFFIX = ".pxql"

#: CLI-level codes (files that cannot even be read).
UNREADABLE_INSTANCE = "PX120"

#: The exact name an unknown-instance finding (PX201/PX301) refers to.
#: Anchored extraction — not substring probing — so suppressing findings
#: about a script's own intermediate results can never swallow a finding
#: of another code (PX26x, PX31x, ...) that merely *mentions* a name.
_UNKNOWN_INSTANCE = re.compile(r"unknown instance '([^']*)'")

#: A PX-code gate item for ``--fail-on``.
_PX_CODE = re.compile(r"^PX\d{3}$")


def _check_instance_file(path: Path) -> list[Diagnostic]:
    """Model pass + dataguide construction for one instance file."""
    from repro.io.json_codec import read_instance

    subject = str(path)
    try:
        instance = read_instance(path)
    except Exception as error:
        return [Diagnostic(
            code=UNREADABLE_INSTANCE, severity=ERROR,
            message=f"cannot read instance file: {error}",
            subject=subject,
            hint="the file must hold one JSON-encoded probabilistic instance",
        )]
    diagnostics = check_instance(instance, name=subject)
    try:
        guide = build_dataguide(instance)
    except Exception:
        return diagnostics
    if guide.truncated:
        diagnostics.append(Diagnostic(
            code="PX191", severity=INFO,
            message="dataguide truncated (too many distinct label paths); "
                    "path-level findings may be incomplete",
            subject=subject,
        ))
    return diagnostics


def _check_script_file(path: Path) -> list[Diagnostic]:
    """Query pass over a ``.pxql`` script, one statement per line.

    Blank lines and ``#`` comments are skipped.  Names a previous
    statement defines (``AS name``, ``LOAD name``) are treated as known,
    so scripts that build on their own intermediate results do not
    produce spurious unknown-instance errors — the suppression is keyed
    on the exact name the PX201/PX301 finding names, so it can never
    hide a finding of any other code.  The whole-script dataflow pass
    (:mod:`repro.check.script`, ``PX31x``) runs after the per-statement
    checks.
    """
    from repro.check.script import script_diagnostics
    from repro.storage.database import Database

    database = Database(path.parent)
    guides = DataGuideCache()
    defined: set[str] = set()
    diagnostics: list[Diagnostic] = []
    try:
        source = path.read_text()
    except OSError as error:
        return [Diagnostic(
            code=UNREADABLE_INSTANCE, severity=ERROR,
            message=f"cannot read script file: {error}", subject=str(path),
        )]
    for number, line in enumerate(source.splitlines(), start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        found = check_text(text, database, guides=guides)
        for diagnostic in found:
            if diagnostic.code in ("PX201", "PX301"):
                matched = _UNKNOWN_INSTANCE.search(diagnostic.message)
                if matched is not None and matched.group(1) in defined:
                    continue    # refers to an earlier statement's result
            diagnostics.append(Diagnostic(
                code=diagnostic.code, severity=diagnostic.severity,
                message=diagnostic.message,
                subject=f"{path}:{number}", oid=diagnostic.oid,
                path=diagnostic.path, span=diagnostic.span,
                hint=diagnostic.hint,
            ))
        defined.update(_defined_names(text))
    try:
        diagnostics.extend(script_diagnostics(source, prefix=str(path)))
    except Exception:
        pass    # the dataflow pass is advisory; statement findings stand
    return diagnostics


def _defined_names(text: str) -> set[str]:
    """The catalog names a statement would create when executed."""
    from repro.pxql import ast
    from repro.pxql.parser import parse

    try:
        statement = parse(text)
    except Exception:
        return set()
    while isinstance(statement, (ast.CheckStatement, ast.ExplainStatement)):
        statement = statement.statement
    names: set[str] = set()
    target = getattr(statement, "target", None)
    if target is not None:
        names.add(target)
    if isinstance(statement, ast.LoadStatement):
        names.add(statement.name)
    return names


def collect_diagnostics(paths: list[str]) -> DiagnosticReport:
    """Run the passes over every path and aggregate the findings."""
    report = DiagnosticReport()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for instance_file in sorted(path.rglob(f"*{_INSTANCE_SUFFIX}")):
                report.extend(_check_instance_file(instance_file))
            for script_file in sorted(path.rglob(f"*{_SCRIPT_SUFFIX}")):
                report.extend(_check_script_file(script_file))
        elif path.name.endswith(_INSTANCE_SUFFIX):
            report.extend(_check_instance_file(path))
        elif path.name.endswith(_SCRIPT_SUFFIX):
            report.extend(_check_script_file(path))
        else:
            report.add(Diagnostic(
                code=UNREADABLE_INSTANCE, severity=ERROR,
                message=f"not a directory, {_INSTANCE_SUFFIX} or "
                        f"{_SCRIPT_SUFFIX} path: {path}",
                subject=str(path),
            ))
    return report


def _fail_on_gate(value: str) -> str:
    """Validate a ``--fail-on`` argument: a severity or PX-code list."""
    if value in ("error", "warning", "never"):
        return value
    codes = [code.strip() for code in value.split(",") if code.strip()]
    if codes and all(_PX_CODE.match(code) for code in codes):
        return ",".join(codes)
    raise argparse.ArgumentTypeError(
        f"expected 'error', 'warning', 'never' or comma-separated PX codes "
        f"(like 'PX260,PX311'), got {value!r}"
    )


def report_fails(report: DiagnosticReport, gate: str) -> bool:
    """Apply a validated ``--fail-on`` gate to a report."""
    if gate in ("error", "warning", "never"):
        return report.fails(gate)
    codes = set(gate.split(","))
    return any(d.code in codes for d in report.diagnostics)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static diagnostics over PXML instance files and "
                    "PXQL scripts.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["examples"],
        help="directories, *.pxml.json files, or *.pxql scripts "
             "(default: examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fail-on", type=_fail_on_gate, default="error",
        help="exit non-zero on findings at (or above) this severity — "
             "'error' (default), 'warning', 'never' — or on any of a "
             "comma-separated list of PX codes (e.g. 'PX260,PX311')",
    )
    arguments = parser.parse_args(argv)
    report = collect_diagnostics(arguments.paths or ["examples"])
    output = report.to_json() if arguments.format == "json" else report.to_text()
    print(output)
    return 1 if report_fails(report, arguments.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
