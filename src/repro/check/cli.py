"""``python -m repro.check`` — run every static pass over files on disk.

Usage::

    python -m repro.check [PATH ...] [--format text|json]
                          [--fail-on error|warning|never]

Each ``PATH`` may be:

* a directory — scanned recursively for ``*.pxml.json`` instance files
  (model pass + dataguide construction) and ``*.pxql`` scripts (query
  pass, statement by statement, against a catalog backed by the
  script's directory);
* a single ``*.pxml.json`` file;
* a single ``*.pxql`` script.

The process exits 0 when the report passes the ``--fail-on`` severity
gate (default: fail only on error-severity findings) and 1 otherwise,
so the command can gate CI on a fixture corpus (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.check.dataguide import DataGuideCache, build_dataguide
from repro.check.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.check.model import check_instance
from repro.check.query import check_text

_INSTANCE_SUFFIX = ".pxml.json"
_SCRIPT_SUFFIX = ".pxql"

#: CLI-level codes (files that cannot even be read).
UNREADABLE_INSTANCE = "PX120"


def _check_instance_file(path: Path) -> list[Diagnostic]:
    """Model pass + dataguide construction for one instance file."""
    from repro.io.json_codec import read_instance

    subject = str(path)
    try:
        instance = read_instance(path)
    except Exception as error:
        return [Diagnostic(
            code=UNREADABLE_INSTANCE, severity=ERROR,
            message=f"cannot read instance file: {error}",
            subject=subject,
            hint="the file must hold one JSON-encoded probabilistic instance",
        )]
    diagnostics = check_instance(instance, name=subject)
    try:
        guide = build_dataguide(instance)
    except Exception:
        return diagnostics
    if guide.truncated:
        diagnostics.append(Diagnostic(
            code="PX191", severity=INFO,
            message="dataguide truncated (too many distinct label paths); "
                    "path-level findings may be incomplete",
            subject=subject,
        ))
    return diagnostics


def _check_script_file(path: Path) -> list[Diagnostic]:
    """Query pass over a ``.pxql`` script, one statement per line.

    Blank lines and ``#`` comments are skipped.  Names a previous
    statement defines (``AS name``, ``LOAD name``) are treated as known,
    so scripts that build on their own intermediate results do not
    produce spurious unknown-instance errors.
    """
    from repro.storage.database import Database

    database = Database(path.parent)
    guides = DataGuideCache()
    defined: set[str] = set()
    diagnostics: list[Diagnostic] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [Diagnostic(
            code=UNREADABLE_INSTANCE, severity=ERROR,
            message=f"cannot read script file: {error}", subject=str(path),
        )]
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        found = check_text(text, database, guides=guides)
        for diagnostic in found:
            if diagnostic.code in ("PX201", "PX301") and any(
                repr(name) in diagnostic.message for name in defined
            ):
                continue    # refers to an earlier statement's result
            diagnostics.append(Diagnostic(
                code=diagnostic.code, severity=diagnostic.severity,
                message=diagnostic.message,
                subject=f"{path}:{number}", oid=diagnostic.oid,
                path=diagnostic.path, span=diagnostic.span,
                hint=diagnostic.hint,
            ))
        defined.update(_defined_names(text))
    return diagnostics


def _defined_names(text: str) -> set[str]:
    """The catalog names a statement would create when executed."""
    from repro.pxql import ast
    from repro.pxql.parser import parse

    try:
        statement = parse(text)
    except Exception:
        return set()
    while isinstance(statement, (ast.CheckStatement, ast.ExplainStatement)):
        statement = statement.statement
    names: set[str] = set()
    target = getattr(statement, "target", None)
    if target is not None:
        names.add(target)
    if isinstance(statement, ast.LoadStatement):
        names.add(statement.name)
    return names


def collect_diagnostics(paths: list[str]) -> DiagnosticReport:
    """Run the passes over every path and aggregate the findings."""
    report = DiagnosticReport()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for instance_file in sorted(path.rglob(f"*{_INSTANCE_SUFFIX}")):
                report.extend(_check_instance_file(instance_file))
            for script_file in sorted(path.rglob(f"*{_SCRIPT_SUFFIX}")):
                report.extend(_check_script_file(script_file))
        elif path.name.endswith(_INSTANCE_SUFFIX):
            report.extend(_check_instance_file(path))
        elif path.name.endswith(_SCRIPT_SUFFIX):
            report.extend(_check_script_file(path))
        else:
            report.add(Diagnostic(
                code=UNREADABLE_INSTANCE, severity=ERROR,
                message=f"not a directory, {_INSTANCE_SUFFIX} or "
                        f"{_SCRIPT_SUFFIX} path: {path}",
                subject=str(path),
            ))
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static diagnostics over PXML instance files and "
                    "PXQL scripts.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["examples"],
        help="directories, *.pxml.json files, or *.pxql scripts "
             "(default: examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "never"), default="error",
        help="exit non-zero when findings at (or above) this severity "
             "exist (default: error)",
    )
    arguments = parser.parse_args(argv)
    report = collect_diagnostics(arguments.paths or ["examples"])
    output = report.to_json() if arguments.format == "json" else report.to_text()
    print(output)
    return 1 if report.fails(arguments.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
