"""The shared diagnostics framework of the ``repro.check`` passes.

A :class:`Diagnostic` is one finding: a stable code, a severity, a
human message, the object/path/statement context it is about, an
optional source :class:`Span` (for PXQL input), and an optional fix
hint.  Passes return lists of diagnostics; :class:`DiagnosticReport`
aggregates them across subjects (instances, statements, files) and
renders text or JSON.

Code ranges:

* ``PX1xx`` — model pass (instance legality, Theorem 1 preconditions).
* ``PX2xx`` — plan pass (logical plan IR typechecking).
* ``PX3xx`` — query pass (PXQL front-end).

Severities:

* ``error`` — executing the subject will certainly fail (or the model
  has no coherent semantics).
* ``warning`` — legal but statically degenerate: the construct can
  never produce a useful result (never-matching paths, tautological
  conditions, dead objects).
* ``info`` — advisory annotations (summaries, rewrite justifications).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import PXMLError

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Sort/gate rank per severity (lower = more severe).
SEVERITY_RANK: dict[str, int] = {ERROR: 0, WARNING: 1, INFO: 2}


class CheckError(PXMLError):
    """Raised when check-before-execute finds error-severity diagnostics.

    Carries the full batch so callers see every problem at once instead
    of the first mid-execution failure.
    """

    def __init__(self, diagnostics: list["Diagnostic"]) -> None:
        self.diagnostics = list(diagnostics)
        lines = [str(d) for d in self.diagnostics]
        super().__init__(
            "static checks failed ({} finding{}):\n{}".format(
                len(lines), "s" if len(lines) != 1 else "", "\n".join(lines)
            )
        )


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` in a source string."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"malformed span [{self.start}, {self.end})")

    def __str__(self) -> str:
        return f"{self.start}..{self.end}"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str                      # "PX101", "PX220", ...
    severity: str                  # ERROR | WARNING | INFO
    message: str
    subject: str | None = None     # instance name / statement text / file
    oid: str | None = None         # the object the finding is about
    path: str | None = None        # the path expression involved
    span: Span | None = None       # source span in PXQL input
    hint: str | None = None        # how to fix it

    def __str__(self) -> str:
        where = ""
        if self.subject is not None:
            where += f" [{self.subject}]"
        if self.oid is not None:
            where += f" [{self.oid}]"
        if self.span is not None:
            where += f" @{self.span}"
        text = f"{self.severity}{where} {self.code}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering."""
        record: dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.subject is not None:
            record["subject"] = self.subject
        if self.oid is not None:
            record["oid"] = self.oid
        if self.path is not None:
            record["path"] = self.path
        if self.span is not None:
            record["span"] = [self.span.start, self.span.end]
        if self.hint is not None:
            record["hint"] = self.hint
        return record


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Deterministic order: severity, then subject, then oid, then code."""
    return sorted(diagnostics, key=lambda d: (
        SEVERITY_RANK.get(d.severity, 99),
        d.subject or "",
        d.oid or "",
        d.code,
        d.message,
    ))


def worst_severity(diagnostics: list[Diagnostic]) -> str | None:
    """The most severe level present, or ``None`` when empty."""
    worst: str | None = None
    for diagnostic in diagnostics:
        if worst is None or (
            SEVERITY_RANK.get(diagnostic.severity, 99) < SEVERITY_RANK.get(worst, 99)
        ):
            worst = diagnostic.severity
    return worst


def errors_of(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset."""
    return [d for d in diagnostics if d.severity == ERROR]


@dataclass
class DiagnosticReport:
    """Aggregated findings across many subjects (instances, statements)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        """Append a pass's findings."""
        self.diagnostics.extend(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def sorted(self) -> list[Diagnostic]:
        """All findings in deterministic order."""
        return sort_diagnostics(self.diagnostics)

    def count(self, severity: str) -> int:
        """The number of findings at the given severity."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def fails(self, gate: str) -> bool:
        """Whether the report violates a severity gate.

        ``gate`` is ``"error"`` (fail only on errors), ``"warning"``
        (fail on warnings or errors), or ``"never"``.
        """
        if gate == "never":
            return False
        if gate == "warning":
            return any(d.severity in (ERROR, WARNING) for d in self.diagnostics)
        if gate == "error":
            return any(d.severity == ERROR for d in self.diagnostics)
        raise ValueError(f"unknown severity gate {gate!r}")

    def to_text(self) -> str:
        """One finding per line, plus a totals footer."""
        lines = [str(d) for d in self.sorted()]
        lines.append(
            f"{self.count(ERROR)} error(s), {self.count(WARNING)} warning(s), "
            f"{self.count(INFO)} info"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """A JSON document: findings plus severity totals."""
        return json.dumps({
            "diagnostics": [d.as_dict() for d in self.sorted()],
            "totals": {
                "error": self.count(ERROR),
                "warning": self.count(WARNING),
                "info": self.count(INFO),
            },
        }, indent=2)
