"""The script pass: whole-script PXQL dataflow diagnostics (``PX31x``).

The statement-level passes (:mod:`repro.check.query`,
:mod:`repro.check.plans`) see one statement at a time; a script has
dataflow *between* statements: results registered under ``AS`` names,
read by later statements, shadowed by re-registration, or never read at
all.  This pass runs over a whole script (one statement per line, the
``*.pxql`` convention) and reports:

* ``PX311`` (error) — a statement reads a name that is only registered
  by a *later* statement: the script is mis-ordered and would fail at
  that line when executed top to bottom.
* ``PX312`` (warning) — an explicitly named result (``AS name`` /
  ``LOAD name``) is never read by any later statement (dead result).
* ``PX313`` (warning) — a name is re-registered while the previous
  result under it was never read (the earlier statement's work is
  silently discarded).
* ``PX314`` (warning) — a ``SET TIMEOUT`` session deadline is shadowed
  by a statement-level ``WITH TIMEOUT``, which silently overrides it.

Statements that only *inspect* (``CHECK``, non-``ANALYZE`` ``EXPLAIN``)
neither read nor register names: they never execute their inner
statement.  ``SAVE`` and ``DROP`` count as reads (the result is
consumed), so saving a result is enough to keep it "live".

:class:`ScriptTracker` adapts the same analysis to an interactive
session: the interpreter feeds it every executed statement, and
``CHECK`` / ``EXPLAIN LINT`` preview the statement against the session
history — surfacing the findings that do not need future knowledge
(``PX313`` / ``PX314``) before the statement runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.check.diagnostics import ERROR, WARNING, Diagnostic
from repro.pxql import ast
from repro.pxql.parser import parse

#: Stable diagnostic codes of this pass (``PX310`` is the syntax error
#: of :func:`repro.check.query.check_text`; the dataflow codes follow).
USE_BEFORE_REGISTER = "PX311"
DEAD_RESULT = "PX312"
SHADOWED_RESULT = "PX313"
SHADOWED_TIMEOUT = "PX314"

#: Statement kinds whose ``source``-style fields are *reads*.
_SINGLE_SOURCE = (
    ast.ProjectStatement, ast.SelectStatement, ast.PointStatement,
    ast.ExistsStatement, ast.ChainStatement, ast.ProbStatement,
    ast.CountStatement, ast.DistStatement, ast.UnrollStatement,
    ast.EstimateStatement, ast.WorldsStatement, ast.ShowStatement,
)


@dataclass(frozen=True)
class ScriptStatement:
    """One statement of a script, anchored to its line number."""

    line: int
    text: str
    statement: ast.Statement | None     # None: did not parse (PX310 land)


@dataclass(frozen=True)
class StatementFlow:
    """The dataflow facts of one statement.

    ``reads``/``defines`` are catalog names; ``defines`` holds only
    *explicit* names (``AS name`` / ``LOAD name``) — auto-generated
    ``_resultN`` names cannot be referenced, so they carry no dataflow.
    """

    reads: tuple[str, ...] = ()
    defines: tuple[str, ...] = ()
    sets_timeout: bool = False      # SET TIMEOUT with a positive value
    clears_timeout: bool = False    # SET TIMEOUT 0
    with_timeout: bool = False      # wrapped in ... WITH TIMEOUT n


def flow_of(statement: ast.Statement) -> StatementFlow:
    """The dataflow facts of one parsed statement.

    Wrappers are unwrapped by execution semantics: ``PROFILE`` and
    ``EXPLAIN ANALYZE`` execute their inner statement (its reads and
    registrations happen); ``CHECK`` and plain ``EXPLAIN`` do not.
    """
    with_timeout = False
    while True:
        if isinstance(statement, ast.TimeoutStatement):
            with_timeout = True
            statement = statement.statement
        elif isinstance(statement, ast.ProfileStatement):
            statement = statement.statement
        elif isinstance(statement, ast.ExplainStatement):
            if not statement.analyze:
                return StatementFlow(with_timeout=with_timeout)
            statement = statement.statement
        elif isinstance(statement, ast.CheckStatement):
            return StatementFlow(with_timeout=with_timeout)
        else:
            break

    reads: tuple[str, ...] = ()
    defines: tuple[str, ...] = ()
    if isinstance(statement, _SINGLE_SOURCE):
        reads = (statement.source,)
        target = getattr(statement, "target", None)
        if target is not None:
            defines = (target,)
    elif isinstance(statement, ast.ProductStatement):
        reads = (statement.left, statement.right)
        if statement.target is not None:
            defines = (statement.target,)
    elif isinstance(statement, ast.LoadStatement):
        defines = (statement.name,)
    elif isinstance(statement, (ast.SaveStatement, ast.DropStatement)):
        reads = (statement.name,)
    elif isinstance(statement, ast.SetStatement):
        if statement.option == "timeout":
            if statement.value > 0:
                return StatementFlow(sets_timeout=True,
                                     with_timeout=with_timeout)
            return StatementFlow(clears_timeout=True,
                                 with_timeout=with_timeout)
    return StatementFlow(reads=reads, defines=defines,
                         with_timeout=with_timeout)


def parse_script(text: str) -> list[ScriptStatement]:
    """Split a ``*.pxql`` script into statements (one per line).

    Blank lines and ``#`` comments are skipped — the same convention
    ``python -m repro.check`` applies.  A line that does not parse still
    appears (with ``statement=None``) so line numbers stay aligned; the
    statement-level pass owns reporting its syntax error (``PX310``).
    """
    statements: list[ScriptStatement] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            statement: ast.Statement | None = parse(stripped)
        except Exception:
            statement = None
        statements.append(ScriptStatement(number, stripped, statement))
    return statements


def _subject(entry: ScriptStatement, prefix: str | None) -> str:
    if prefix is not None:
        return f"{prefix}:{entry.line}"
    return entry.text


def _findings(
    script: Sequence[ScriptStatement], prefix: str | None
) -> list[tuple[int, Diagnostic]]:
    """All dataflow findings, tagged with the line they anchor to."""
    entries = [e for e in script if e.statement is not None]
    flows = {e.line: flow_of(e.statement) for e in entries
             if e.statement is not None}

    findings: list[tuple[int, Diagnostic]] = []

    # -- per-name event streams ----------------------------------------
    def_lines: dict[str, list[int]] = {}
    use_lines: dict[str, list[int]] = {}
    for entry in entries:
        flow = flows[entry.line]
        for name in flow.reads:
            use_lines.setdefault(name, []).append(entry.line)
        for name in flow.defines:
            def_lines.setdefault(name, []).append(entry.line)

    # -- PX311: read before the registering statement ------------------
    defined: set[str] = set()
    for entry in entries:
        flow = flows[entry.line]
        for name in flow.reads:
            if name in defined:
                continue
            later = [d for d in def_lines.get(name, []) if d > entry.line]
            if later:
                findings.append((entry.line, Diagnostic(
                    code=USE_BEFORE_REGISTER, severity=ERROR,
                    message=f"{name!r} is read here but only registered "
                            f"at line {later[0]}",
                    subject=_subject(entry, prefix),
                    hint="move this statement below the one that "
                         "registers the name",
                )))
        defined.update(flow.defines)

    # -- PX312 / PX313: dead and shadowed results ----------------------
    by_line = {e.line: e for e in entries}
    for name, defs in sorted(def_lines.items()):
        uses = use_lines.get(name, [])
        for position, def_line in enumerate(defs):
            next_def = defs[position + 1] if position + 1 < len(defs) else None
            # A use on the re-registering line itself reads the *old*
            # result (reads happen before the define within a
            # statement, e.g. ``SELECT ... FROM p AS p``), so the
            # window is inclusive on the right.
            read_after = any(
                u > def_line and (next_def is None or u <= next_def)
                for u in uses
            )
            if read_after:
                continue
            if next_def is not None:
                findings.append((next_def, Diagnostic(
                    code=SHADOWED_RESULT, severity=WARNING,
                    message=f"re-registering {name!r} discards the result "
                            f"of line {def_line}, which was never read",
                    subject=_subject(by_line[next_def], prefix),
                    hint="drop the earlier statement or read its result "
                         "before re-registering the name",
                )))
            else:
                findings.append((def_line, Diagnostic(
                    code=DEAD_RESULT, severity=WARNING,
                    message=f"result {name!r} is never read by a later "
                            "statement",
                    subject=_subject(by_line[def_line], prefix),
                    hint="query, SAVE or DROP the result — or drop the "
                         "AS clause",
                )))

    # -- PX314: session timeout shadowed by WITH TIMEOUT ---------------
    timeout_line: int | None = None
    for entry in entries:
        flow = flows[entry.line]
        if flow.sets_timeout:
            timeout_line = entry.line
        elif flow.clears_timeout:
            timeout_line = None
        elif flow.with_timeout and timeout_line is not None:
            findings.append((entry.line, Diagnostic(
                code=SHADOWED_TIMEOUT, severity=WARNING,
                message=f"WITH TIMEOUT overrides the session timeout set "
                        f"at line {timeout_line} for this statement",
                subject=_subject(entry, prefix),
                hint="rely on SET TIMEOUT, or clear it with SET TIMEOUT 0 "
                     "if per-statement deadlines are intended",
            )))

    findings.sort(key=lambda pair: pair[0])
    return findings


def script_diagnostics(
    script: Iterable[ScriptStatement] | str,
    prefix: str | None = None,
) -> list[Diagnostic]:
    """Run the dataflow pass over a whole script.

    ``script`` is either the raw source text or a pre-parsed statement
    list; with ``prefix`` (typically the file path) each finding's
    subject becomes ``prefix:line``, otherwise the statement text.
    """
    if isinstance(script, str):
        script = parse_script(script)
    return [diagnostic for _line, diagnostic in _findings(list(script), prefix)]


@dataclass
class ScriptTracker:
    """Session-level dataflow state for an interactive interpreter.

    The interpreter feeds every *executed* statement through
    :meth:`observe`; ``CHECK`` / ``EXPLAIN LINT`` call :meth:`preview`
    to check a candidate statement against the session history.  Only
    the backward-looking codes (``PX313`` shadowing, ``PX314`` timeout
    shadowing) can fire interactively — dead results and
    use-before-register need the rest of the script.
    """

    _history: list[ScriptStatement] = field(default_factory=list)

    def observe(self, statement: ast.Statement, text: str | None = None) -> None:
        """Record one successfully executed statement."""
        position = len(self._history) + 1
        label = text if text is not None else type(statement).__name__
        self._history.append(ScriptStatement(position, label, statement))

    def preview(
        self, statement: ast.Statement, subject: str | None = None
    ) -> list[Diagnostic]:
        """Findings a candidate statement would add to the session."""
        position = len(self._history) + 1
        label = subject if subject is not None else type(statement).__name__
        candidate = ScriptStatement(position, label, statement)
        return [
            diagnostic
            for line, diagnostic in _findings(self._history + [candidate], None)
            if line == position
            and diagnostic.code in (SHADOWED_RESULT, SHADOWED_TIMEOUT)
        ]
