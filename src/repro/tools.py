"""Command-line maintenance tools for instance files.

Usage::

    python -m repro.tools lint     instance.json
    python -m repro.tools show     instance.json
    python -m repro.tools dot      instance.json   > graph.dot
    python -m repro.tools summary  instance.json
    python -m repro.tools worlds   instance.json  [--limit N]
    python -m repro.tools map      instance.json

All commands read the JSON instance format written by
``repro.io.json_codec`` (and by PXQL's ``SAVE``).  ``lint`` exits with
status 1 when errors (not mere warnings) are present.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import summarize
from repro.core.lint import format_issues, has_errors, lint_instance
from repro.io.json_codec import read_instance
from repro.render import render_distribution, render_instance, render_tree, to_dot
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semantics.map_world import map_world


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Inspect and check PXML instance files.",
    )
    parser.add_argument(
        "command",
        choices=("lint", "show", "dot", "summary", "worlds", "map"),
    )
    parser.add_argument("path", help="a .json instance file")
    parser.add_argument("--limit", type=int, default=20,
                        help="world count for the worlds command")
    args = parser.parse_args(argv)

    instance = read_instance(args.path)

    if args.command == "lint":
        issues = lint_instance(instance)
        print(format_issues(issues))
        return 1 if has_errors(issues) else 0
    if args.command == "show":
        print(render_instance(instance))
        return 0
    if args.command == "dot":
        print(to_dot(instance))
        return 0
    if args.command == "summary":
        print(summarize(instance))
        return 0
    if args.command == "worlds":
        interpretation = GlobalInterpretation.from_local(instance)
        print(render_distribution(interpretation, limit=args.limit))
        return 0
    # map
    world, probability = map_world(instance)
    print(f"P = {probability:.6g}")
    print(render_tree(world))
    return 0


if __name__ == "__main__":
    sys.exit(main())
